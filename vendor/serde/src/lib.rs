//! Offline stand-in for `serde`.
//!
//! The hermetic build environment has no access to crates.io, so this
//! workspace vendors a minimal serde facade. Unlike the real serde (a
//! zero-copy visitor framework), this shim defines a concrete JSON-like
//! [`Value`] tree as its data model:
//!
//! * [`Serialize`] renders a type into a [`Value`],
//! * [`Deserialize`] rebuilds a type from a [`Value`].
//!
//! The `serde_json` shim in this workspace converts between [`Value`] and
//! JSON text. The derive macros (`#[derive(Serialize, Deserialize)]`) are
//! re-exported from the vendored `serde_derive` and generate impls against
//! these traits for named-field structs and unit-variant enums — exactly the
//! shapes this workspace serialises.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The serialisation data model: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integral JSON numbers.
    Int(i64),
    /// Non-integral JSON numbers.
    Float(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

/// Borrowed view over an object's fields.
pub struct ObjectView<'a>(&'a [(String, Value)]);

impl<'a> ObjectView<'a> {
    /// The value of a field, or `Null` when absent.
    pub fn field(&self, name: &str) -> &'a Value {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a String, &'a Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Value {
    /// Borrow the string payload of a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integral numbers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integral payload as `i64` (floats with no fractional part qualify).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the elements of an `Array` value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrowed field view of an `Object` value.
    pub fn as_object_view(&self) -> Option<ObjectView<'_>> {
        match self {
            Value::Object(fields) => Some(ObjectView(fields)),
            _ => None,
        }
    }

    /// True when this value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True when this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value at an object key, or `Null` when absent or not an object
    /// (mirrors `serde_json::Value` indexing semantics).
    pub fn get(&self, key: &str) -> &Value {
        match self.as_object_view() {
            Some(view) => view.field(key),
            None => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Deserialisation error: a message plus a breadcrumb of field contexts.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// A free-form error.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(expected: &str, while_deserializing: &str) -> Self {
        Error {
            message: format!("expected {expected} while deserializing {while_deserializing}"),
        }
    }

    /// Wrap the error with the field it occurred in.
    pub fn in_context(mut self, context: &str) -> Self {
        self.message = format!("{context}: {}", self.message);
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value tree for this object.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree into this type.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, i8, i16, i32, i64, usize);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for u64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let i = value
            .as_i64()
            .ok_or_else(|| Error::expected("integer", "u64"))?;
        u64::try_from(i).map_err(|_| Error::custom(format!("{i} out of range for u64")))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("boolean", "bool"))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.fract() == 0.0 && self.is_finite() && self.abs() < 9e15 {
            Value::Int(*self as i64)
        } else {
            Value::Float(*self)
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

/// Serialize a map key. Keys must render as strings in the data model; unit
/// enum variants and strings qualify.
fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.serialize() {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(Error::custom(format!(
            "map key must serialize to a string, got {other:?}"
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(k).expect("unsupported map key"),
                        v.serialize(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let view = value
            .as_object_view()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?;
        let mut map = BTreeMap::new();
        for (k, v) in view.iter() {
            let key =
                K::deserialize(&Value::Str(k.clone())).map_err(|e| e.in_context("map key"))?;
            map.insert(key, V::deserialize(v)?);
        }
        Ok(map)
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(k).expect("unsupported map key"),
                    v.serialize(),
                )
            })
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert!(bool::deserialize(&true.serialize()).unwrap());
    }

    #[test]
    fn integral_floats_become_ints() {
        assert_eq!(2.0f64.serialize(), Value::Int(2));
        assert_eq!(f64::deserialize(&Value::Int(2)).unwrap(), 2.0);
    }

    #[test]
    fn vec_and_map_round_trip() {
        let v = vec![1.0f64, 2.5];
        assert_eq!(Vec::<f64>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            BTreeMap::<String, u32>::deserialize(&m.serialize()).unwrap(),
            m
        );
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![("x".into(), Value::Int(1))]);
        assert_eq!(v["x"], Value::Int(1));
        assert!(v["missing"].is_null());
        assert!(v.is_object());
    }
}
