//! Offline stand-in for `rand`.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — not the
//! same stream as upstream's ChaCha12 `StdRng`, but deterministic, seedable
//! and statistically solid for simulation), plus the [`Rng`] / [`SeedableRng`]
//! trait surface this workspace calls: `gen`, `gen_bool`, `gen_range`.

/// Types that can be sampled uniformly from an RNG (stand-in for rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// The subset of rand's `Rng` trait the workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x: f64 = self.gen();
        x < p
    }

    /// Uniform draw from `[low, high)` (panics when the range is empty).
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

/// Seedable RNGs (stand-in for rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! RNG implementations.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = rng.gen_range(5..9);
            assert!((5..9).contains(&v));
        }
    }
}
