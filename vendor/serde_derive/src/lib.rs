//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! this hermetic build environment. This crate hand-parses the token stream of
//! the deriving item instead. It supports exactly the shapes this workspace
//! uses:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are all unit variants (no generics).
//!
//! The generated impls target the workspace's vendored `serde` facade, whose
//! data model is a JSON-like `Value` tree rather than the real serde
//! visitor architecture. Anything outside the supported shapes fails with a
//! compile error naming this crate, so drift is loud rather than silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!(\"vendored serde_derive: {msg}\");")
                .parse()
                .unwrap()
        }
    };
    let code = match (&item, direction) {
        (Item::Struct { name, fields }, Direction::Serialize) => struct_serialize(name, fields),
        (Item::Struct { name, fields }, Direction::Deserialize) => struct_deserialize(name, fields),
        (Item::Enum { name, variants }, Direction::Serialize) => enum_serialize(name, variants),
        (Item::Enum { name, variants }, Direction::Deserialize) => enum_deserialize(name, variants),
    };
    code.parse().unwrap()
}

/// Parse the deriving item far enough to know its name and field/variant
/// names. Attributes (including doc comments) are skipped; generics are
/// rejected.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility to find `struct` / `enum`.
    let mut kind: Option<&'static str> = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let text = id.to_string();
                match text.as_str() {
                    "pub" => {
                        // Consume optional `(crate)` and similar.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" => {
                        kind = Some("struct");
                        break;
                    }
                    "enum" => {
                        kind = Some("enum");
                        break;
                    }
                    _ => return Err(format!("unexpected token `{text}` before struct/enum")),
                }
            }
            other => return Err(format!("unexpected token `{other}` before struct/enum")),
        }
    }
    let kind = kind.ok_or_else(|| "no struct or enum found".to_string())?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    // The next token must be the brace-delimited body; generics are not
    // supported by this shim.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("generic type `{name}` is not supported"))
            }
            Some(_) => continue,
            None => return Err(format!("type `{name}` has no brace-delimited body")),
        }
    };
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        })
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes / doc comments and visibility.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                let variant = id.to_string();
                match tokens.next() {
                    None => variants.push(variant),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
                    Some(other) => {
                        return Err(format!(
                            "enum variant `{variant}` is not a unit variant (found `{other}`)"
                        ))
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let mut inserts = String::new();
    for f in fields {
        inserts.push_str(&format!(
            "__fields.push((\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
         {inserts}\
         ::serde::Value::Object(__fields)\n\
         }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut builds = String::new();
    for f in fields {
        builds.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize(__obj.field(\"{f}\"))\
             .map_err(|e| e.in_context(\"{name}.{f}\"))?,\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let __obj = __value.as_object_view().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
         ::std::result::Result::Ok({name} {{\n\
         {builds}\
         }})\n\
         }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for v in variants {
        arms.push_str(&format!("{name}::{v} => \"{v}\",\n"));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n\
         ::serde::Value::Str((match self {{ {arms} }}).to_string())\n\
         }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for v in variants {
        arms.push_str(&format!(
            "::std::option::Option::Some(\"{v}\") => ::std::result::Result::Ok({name}::{v}),\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match __value.as_str() {{\n\
         {arms}\
         _ => ::std::result::Result::Err(::serde::Error::expected(\"one of the `{name}` variant names\", \"{name}\")),\n\
         }}\n\
         }}\n\
         }}"
    )
}
