//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! calibrated wall-clock timer instead of criterion's statistical engine.
//! Each benchmark warms up briefly, then runs a calibrated batch and reports
//! the mean time per iteration (plus derived throughput when configured).

use std::time::{Duration, Instant};

/// How long the measurement batch aims to run per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// How long the calibration phase aims to run per benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(50);

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Work-size annotation used to derive throughput from the measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by [`Bencher::iter`].
    mean: Duration,
}

impl Bencher {
    /// Measure `routine`: warm up, calibrate an iteration count, then time a
    /// measurement batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup & calibration: find how many iterations fit the target.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < TARGET_WARMUP {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((TARGET_MEASURE.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.mean = start.elapsed() / batch as u32;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn report(group: Option<&str>, id: &str, mean: Duration, throughput: Option<Throughput>) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    let mut line = format!("{full_id:<48} time: [{}]", format_duration(mean));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(bytes) => {
                let rate = bytes as f64 / mean.as_secs_f64();
                format!("{:.2} MiB/s", rate / (1024.0 * 1024.0))
            }
            Throughput::Elements(n) => {
                let rate = n as f64 / mean.as_secs_f64();
                format!("{rate:.0} elem/s")
            }
        };
        line.push_str(&format!("  thrpt: [{per_sec}]"));
    }
    println!("{line}");
}

/// Top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(None, &id.into(), bencher.mean, None);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the work size used to derive throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the shim chooses batch sizes automatically.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(Some(&self.name), &id.into(), bencher.mean, self.throughput);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(Some(&self.name), &id.id, bencher.mean, self.throughput);
        self
    }

    /// Finish the group (flushes nothing in the shim; parity only).
    pub fn finish(self) {}
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
