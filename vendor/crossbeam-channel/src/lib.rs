//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the bounded-channel surface this workspace uses — cloneable
//! senders, blocking `send`, `send_timeout`, `recv`, `recv_timeout` and
//! `try_recv` — over a `Mutex<VecDeque>` plus two condvars.  Every blocking
//! operation *parks* on a condvar rather than polling: with hundreds of
//! senders blocked on full channels (the 1000-task scaling topologies at
//! small capacities), a polled send starves the draining receiver of CPU
//! and the whole workflow livelocks into timeouts.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded channel with the given capacity (clamped to at least 1;
/// rendezvous channels are not supported).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(shared.clone()), Receiver(shared))
}

/// Sending half of a bounded channel.
pub struct Sender<T>(Arc<Shared<T>>);

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender(..)")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().unwrap().senders += 1;
        Sender(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake a receiver blocked on an empty queue so it observes the
            // disconnect.
            drop(inner);
            self.0.not_empty.notify_all();
        }
    }
}

/// Receiving half of a bounded channel.
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver(..)")
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.receiver_alive = false;
        drop(inner);
        // Wake every sender blocked on a full queue so they observe the
        // disconnect.
        self.0.not_full.notify_all();
    }
}

/// The channel is disconnected (all receivers dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl std::error::Error for SendError {}

/// Why a timed send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError {
    /// The channel stayed full for the whole timeout.
    Timeout,
    /// All receivers dropped.
    Disconnected,
}

impl std::fmt::Display for SendTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendTimeoutError::Timeout => f.write_str("timed out waiting on send operation"),
            SendTimeoutError::Disconnected => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl std::error::Error for SendTimeoutError {}

/// Why a non-blocking send failed; carries the unsent message back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel buffer is full.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
        }
    }

    /// Whether the failure was a full buffer (as opposed to disconnection).
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// Why a receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders dropped and the buffer is drained.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => f.write_str("timed out waiting on receive operation"),
            RecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvError {}

impl<T> Sender<T> {
    /// Blocking send; parks while the channel is full.
    pub fn send(&self, message: T) -> Result<(), SendError> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if !inner.receiver_alive {
                return Err(SendError);
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(message);
                drop(inner);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            inner = self.0.not_full.wait(inner).unwrap();
        }
    }

    /// Non-blocking send; fails immediately when the buffer is full.
    pub fn try_send(&self, message: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.0.inner.lock().unwrap();
        if !inner.receiver_alive {
            return Err(TrySendError::Disconnected(message));
        }
        if inner.queue.len() >= inner.capacity {
            return Err(TrySendError::Full(message));
        }
        inner.queue.push_back(message);
        drop(inner);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Send, parked for at most `timeout` waiting for buffer space.
    pub fn send_timeout(&self, message: T, timeout: Duration) -> Result<(), SendTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if !inner.receiver_alive {
                return Err(SendTimeoutError::Disconnected);
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(message);
                drop(inner);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(SendTimeoutError::Timeout);
            };
            let (guard, result) = self.0.not_full.wait_timeout(inner, remaining).unwrap();
            inner = guard;
            if result.timed_out()
                && inner.queue.len() >= inner.capacity
                && Instant::now() >= deadline
            {
                return Err(SendTimeoutError::Timeout);
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; parks while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if let Some(message) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(message);
            }
            if inner.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            inner = self.0.not_empty.wait(inner).unwrap();
        }
    }

    /// Receive, parked for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if let Some(message) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(message);
            }
            if inner.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvError::Timeout);
            };
            let (guard, result) = self.0.not_empty.wait_timeout(inner, remaining).unwrap();
            inner = guard;
            if result.timed_out() && inner.queue.is_empty() && Instant::now() >= deadline {
                return Err(RecvError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        if let Some(message) = inner.queue.pop_front() {
            drop(inner);
            self.0.not_full.notify_one();
            return Ok(message);
        }
        if inner.senders == 0 {
            return Err(RecvError::Disconnected);
        }
        Err(RecvError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(RecvError::Timeout));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn send_timeout_on_full_channel() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, SendTimeoutError::Timeout);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert!(tx.try_send(2).unwrap_err().is_full());
        drop(rx);
        let err = tx.try_send(3).unwrap_err();
        assert_eq!(err, TrySendError::Disconnected(3));
        assert_eq!(err.into_inner(), 3);
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError));
        let (tx2, rx2) = bounded::<u8>(1);
        drop(tx2);
        assert_eq!(rx2.recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn buffered_messages_survive_sender_drop() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn parked_send_completes_when_receiver_drains() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send_timeout(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(sender.join().unwrap(), Ok(()));
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn parked_recv_wakes_on_send() {
        let (tx, rx) = bounded(1);
        let receiver = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(receiver.join().unwrap(), Ok(7));
    }

    #[test]
    fn dropping_the_receiver_wakes_blocked_senders() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send_timeout(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(SendTimeoutError::Disconnected));
    }

    #[test]
    fn many_parked_senders_all_drain() {
        // The scaling topologies block hundreds of senders on one consumer;
        // every parked sender must eventually get buffer space.
        let (tx, rx) = bounded(1);
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send_timeout(i, Duration::from_secs(30)))
            })
            .collect();
        drop(tx);
        let mut received = Vec::new();
        while let Ok(v) = rx.recv() {
            received.push(v);
        }
        for handle in handles {
            assert_eq!(handle.join().unwrap(), Ok(()));
        }
        received.sort_unstable();
        assert_eq!(received, (0..64).collect::<Vec<_>>());
    }
}
