//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the bounded-channel surface this workspace uses over
//! `std::sync::mpsc::sync_channel`: cloneable senders, blocking `send`,
//! `send_timeout` (polled), `recv`, `recv_timeout` and `try_recv`.

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Create a bounded channel with the given capacity.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(capacity);
    (Sender(tx), Receiver(rx))
}

/// Sending half of a bounded channel.
#[derive(Debug)]
pub struct Sender<T>(mpsc::SyncSender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

/// Receiving half of a bounded channel.
#[derive(Debug)]
pub struct Receiver<T>(mpsc::Receiver<T>);

/// The channel is disconnected (all receivers dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl std::error::Error for SendError {}

/// Why a timed send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError {
    /// The channel stayed full for the whole timeout.
    Timeout,
    /// All receivers dropped.
    Disconnected,
}

impl std::fmt::Display for SendTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendTimeoutError::Timeout => f.write_str("timed out waiting on send operation"),
            SendTimeoutError::Disconnected => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl std::error::Error for SendTimeoutError {}

/// Why a non-blocking send failed; carries the unsent message back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel buffer is full.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
        }
    }

    /// Whether the failure was a full buffer (as opposed to disconnection).
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// Why a receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders dropped and the buffer is drained.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => f.write_str("timed out waiting on receive operation"),
            RecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvError {}

impl<T> Sender<T> {
    /// Blocking send; waits while the channel is full.
    pub fn send(&self, message: T) -> Result<(), SendError> {
        self.0.send(message).map_err(|_| SendError)
    }

    /// Non-blocking send; fails immediately when the buffer is full.
    pub fn try_send(&self, message: T) -> Result<(), TrySendError<T>> {
        self.0.try_send(message).map_err(|e| match e {
            mpsc::TrySendError::Full(m) => TrySendError::Full(m),
            mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
        })
    }

    /// Send, waiting at most `timeout` for buffer space.
    pub fn send_timeout(&self, message: T, timeout: Duration) -> Result<(), SendTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut message = message;
        loop {
            match self.0.try_send(message) {
                Ok(()) => return Ok(()),
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    return Err(SendTimeoutError::Disconnected)
                }
                Err(mpsc::TrySendError::Full(m)) => {
                    if Instant::now() >= deadline {
                        return Err(SendTimeoutError::Timeout);
                    }
                    message = m;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Receive, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => RecvError::Timeout,
            mpsc::TryRecvError::Disconnected => RecvError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(RecvError::Timeout));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn send_timeout_on_full_channel() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, SendTimeoutError::Timeout);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert!(tx.try_send(2).unwrap_err().is_full());
        drop(rx);
        let err = tx.try_send(3).unwrap_err();
        assert_eq!(err, TrySendError::Disconnected(3));
        assert_eq!(err.into_inner(), 3);
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError));
        let (tx2, rx2) = bounded::<u8>(1);
        drop(tx2);
        assert_eq!(rx2.recv(), Err(RecvError::Disconnected));
    }
}
