//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde` crate's [`Value`]
//! data model. Supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null); serialisation offers the same compact
//! and pretty printers the workspace uses from the real crate.

pub use serde::Value;

/// Error produced by JSON parsing or serialisation.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialise to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialise to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            // parse_hex4 leaves pos after the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"a": [1, 2.5, "x\ny", true, null], "b": {"c": -3}}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["a"][0], Value::Int(1));
        assert_eq!(value["a"][1], Value::Float(2.5));
        assert_eq!(value["a"][2], Value::Str("x\ny".into()));
        assert_eq!(value["b"]["c"], Value::Int(-3));
        let rendered = to_string(&value).unwrap();
        let reparsed: Value = from_str(&rendered).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn pretty_output_reparses() {
        let value: Value = from_str(r#"{"k": [1, {"n": 2}]}"#).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn unicode_escapes() {
        let value: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(value, Value::Str("é😀".into()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
