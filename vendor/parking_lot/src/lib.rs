//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API surface:
//! `lock()` returns the guard directly and a poisoned mutex is recovered
//! instead of propagated.

use std::sync::MutexGuard;

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
