//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer backed by an
//! `Arc<[u8]>`; cloning shares the allocation like the real crate.
//! [`BytesMut`] is the growable companion used for incremental frame
//! assembly: bytes append at the tail, consumed bytes advance a start
//! cursor instead of memmoving the remainder, and the buffer compacts
//! lazily so sustained streaming costs amortised O(1) per byte.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::from(data.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable byte buffer with an amortised-O(1) consume cursor.
///
/// Appending writes at the tail of the backing `Vec`; [`advance`] and
/// [`split_to`] move a start cursor forward without shifting the unread
/// remainder. The backing storage compacts (one `memmove`) only when the
/// dead prefix outgrows the live bytes, so a long-lived network buffer
/// neither leaks the dead prefix nor pays per-frame shifts.
///
/// [`advance`]: BytesMut::advance
/// [`split_to`]: BytesMut::split_to
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Unconsumed bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when every appended byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `data` at the tail, compacting first if the dead prefix has
    /// outgrown the live remainder.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        if self.start > 0 && self.start >= self.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Discard the first `count` unconsumed bytes.
    ///
    /// # Panics
    /// Panics when `count` exceeds [`len`](BytesMut::len).
    pub fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past the end of the buffer");
        self.start += count;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }

    /// Split off and return the first `at` unconsumed bytes as an immutable
    /// [`Bytes`], leaving the remainder in place (no shifting).
    ///
    /// # Panics
    /// Panics when `at` exceeds [`len`](BytesMut::len).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split past the end of the buffer");
        let front = Bytes::copy_from_slice(&self.buf[self.start..self.start + at]);
        self.advance(at);
        front
    }

    /// Consume the buffer into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.buf.drain(..self.start);
        }
        Bytes::from(self.buf)
    }

    /// Drop every unconsumed byte.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            buf: data.to_vec(),
            start: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Bytes, BytesMut};

    #[test]
    fn construction_and_slicing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.chunks_exact(2).count(), 2);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn bytes_mut_appends_and_consumes() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(b"hello ");
        buf.extend_from_slice(b"world");
        assert_eq!(&*buf, b"hello world");
        let front = buf.split_to(6);
        assert_eq!(&*front, b"hello ");
        assert_eq!(&*buf, b"world");
        buf.advance(5);
        assert!(buf.is_empty());
    }

    #[test]
    fn advance_resets_when_everything_is_consumed() {
        let mut buf = BytesMut::from(&b"abc"[..]);
        buf.advance(3);
        assert!(buf.is_empty());
        buf.extend_from_slice(b"xyz");
        assert_eq!(&*buf, b"xyz");
    }

    #[test]
    fn compaction_keeps_the_live_suffix_intact() {
        let mut buf = BytesMut::new();
        // Interleave appends and consumes so the start cursor crosses the
        // compaction threshold repeatedly.
        let mut expected = Vec::new();
        let mut consumed = 0usize;
        for round in 0..64u8 {
            let chunk = [round; 7];
            buf.extend_from_slice(&chunk);
            expected.extend_from_slice(&chunk);
            let take = (round as usize) % 5;
            let take = take.min(buf.len());
            let front = buf.split_to(take);
            assert_eq!(&*front, &expected[consumed..consumed + take]);
            consumed += take;
        }
        assert_eq!(&*buf, &expected[consumed..]);
    }

    #[test]
    fn freeze_returns_only_unconsumed_bytes() {
        let mut buf = BytesMut::from(&b"prefix|payload"[..]);
        buf.advance(7);
        let frozen = buf.freeze();
        assert_eq!(&*frozen, b"payload");
    }

    #[test]
    #[should_panic(expected = "advance past the end")]
    fn advance_past_the_end_panics() {
        let mut buf = BytesMut::from(&b"ab"[..]);
        buf.advance(3);
    }
}
