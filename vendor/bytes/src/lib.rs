//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer backed by an
//! `Arc<[u8]>`; cloning shares the allocation like the real crate.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::from(data.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_slicing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.chunks_exact(2).count(), 2);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
    }
}
