//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, `any`, ranges, tuples, `collection::vec`,
//! `char::range`, regex-subset string strategies, `prop_map`,
//! `prop_flat_map` and `prop_recursive`.
//!
//! Differences from the real crate: generation is seeded deterministically
//! per test (derived from the test name), and failing cases are reported but
//! not shrunk.

pub mod strategy;

pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec`s whose length is drawn from `size` (a range,
    /// or a bare `usize` for an exact length) and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod char {
    //! Character strategies.

    use crate::strategy::CharRange;

    /// Strategy producing chars in the inclusive range `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> CharRange {
        CharRange { lo, hi }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run property tests: `proptest! { #[test] fn name(x in strategy) { body } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config ($cfg) $($rest)* }
    };
    (@config ($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __case: u32 = 0;
            let mut __rejects: u32 = 0;
            while __case < __config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __case += 1;
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __config.cases.saturating_mul(16).max(1024),
                            "proptest `{}`: too many rejected cases ({})",
                            stringify!($name),
                            __rejects
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Property-test assertion; fails the current case without aborting the
/// process stack unwind semantics of `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(__left == __right, $($fmt)+);
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
