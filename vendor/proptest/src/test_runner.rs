//! Test-runner configuration, case errors and the deterministic RNG behind
//! strategy generation.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable with the `PROPTEST_CASES` environment
    /// variable (matching the real crate, so CI can raise coverage
    /// without touching test sources).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// An assumption failed; the case is skipped.
    Reject(String),
}

/// Deterministic generator used by strategies (xoshiro256++ over a
/// SplitMix64-expanded seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG seeded from a raw 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// RNG deterministically derived from a test name, so each property test
    /// explores its own (stable) sequence of cases.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(hash)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_rngs_are_stable_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("beta");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
