//! The [`Strategy`] trait and the combinators the workspace's tests use.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Build recursive values: `self` generates leaves, `branch` wraps an
    /// inner strategy into a deeper layer, nesting at most `depth` levels.
    /// (`_desired_size` and `_expected_branch` exist for signature parity
    /// with the real crate and are ignored.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy (stand-in for proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniformly random booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Length specification for [`crate::collection::vec`]: a half-open range or
/// an exact length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max.saturating_sub(self.size.min).max(1);
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::char::range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    pub(crate) lo: char,
    pub(crate) hi: char,
}

impl Strategy for CharRange {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.lo as u32, self.hi as u32);
        debug_assert!(lo <= hi);
        loop {
            let v = lo + rng.below((hi - lo + 1) as usize) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty range strategy");
        CharRange {
            lo: self.start,
            hi: char::from_u32(self.end as u32 - 1).unwrap_or(self.start),
        }
        .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

// ---------------------------------------------------------------------------
// Regex-subset string strategy: `"[a-z]{1,8}|\\(|,"` etc.
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    /// A literal character.
    Literal(char),
    /// A character class, expanded to its members.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate a string matching a small regex subset: top-level alternation,
/// literals with `\` escapes, `[...]` classes with ranges, and the
/// quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8
/// repetitions).
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let branches = split_alternatives(pattern);
    let branch = branches[rng.below(branches.len())].as_str();
    let pieces = parse_branch(branch);
    let mut out = String::new();
    for piece in pieces {
        let count = piece.min + rng.below(piece.max - piece.min + 1);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(chars) => out.push(chars[rng.below(chars.len())]),
            }
        }
    }
    out
}

fn split_alternatives(pattern: &str) -> Vec<String> {
    let mut branches = vec![String::new()];
    let mut chars = pattern.chars();
    let mut depth = 0usize;
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let last = branches.last_mut().unwrap();
                last.push('\\');
                if let Some(next) = chars.next() {
                    last.push(next);
                }
            }
            '[' => {
                depth += 1;
                branches.last_mut().unwrap().push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                branches.last_mut().unwrap().push(c);
            }
            '|' if depth == 0 => branches.push(String::new()),
            _ => branches.last_mut().unwrap().push(c),
        }
    }
    branches
}

fn parse_branch(branch: &str) -> Vec<Piece> {
    let mut pieces: Vec<Piece> = Vec::new();
    let mut chars = branch.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => Atom::Literal(unescape(chars.next().unwrap_or('\\'))),
            '[' => {
                let mut members = Vec::new();
                let mut class_chars: Vec<char> = Vec::new();
                for cc in chars.by_ref() {
                    if cc == ']' {
                        break;
                    }
                    class_chars.push(cc);
                }
                let mut i = 0;
                while i < class_chars.len() {
                    let cur = class_chars[i];
                    if cur == '\\' && i + 1 < class_chars.len() {
                        members.push(unescape(class_chars[i + 1]));
                        i += 2;
                    } else if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
                        let (lo, hi) = (cur as u32, class_chars[i + 2] as u32);
                        for v in lo..=hi {
                            if let Some(ch) = char::from_u32(v) {
                                members.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        members.push(cur);
                        i += 1;
                    }
                }
                assert!(!members.is_empty(), "empty character class in pattern");
                Atom::Class(members)
            }
            '.' => Atom::Class((' '..='~').collect()),
            other => Atom::Literal(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for cc in chars.by_ref() {
                    if cc == '}' {
                        break;
                    }
                    spec.push(cc);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u8..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let s = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&s));
            let f = (0.0f64..1.0).generate(&mut r);
            assert!((0.0..1.0).contains(&f));
            let (a, b) = ((0usize..3), (0usize..3)).generate(&mut r);
            assert!(a < 3 && b < 3);
        }
    }

    #[test]
    fn regex_subset_identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn regex_subset_alternation_and_escapes() {
        let mut r = rng();
        let mut seen_paren = false;
        for _ in 0..300 {
            let s = "[a-z_]{1,8}|\\(|\\)|:|,|\n| ".generate(&mut r);
            if s == "(" || s == ")" {
                seen_paren = true;
            }
            assert!(!s.contains('\\'), "{s:?}");
        }
        assert!(seen_paren);
    }

    #[test]
    fn regex_subset_space_to_tilde_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[ -~\n]{0,200}".generate(&mut r);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn union_and_just_and_map() {
        let mut r = rng();
        let strat = crate::prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            let v = strat.generate(&mut r);
            assert!(v == 1 || v == 2);
        }
        let mapped = Just(3u8).prop_map(|v| v * 2);
        assert_eq!(mapped.generate(&mut r), 6);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut r)) <= 3);
        }
    }
}
