//! Offline stand-in for `polling`.
//!
//! A minimal, level-triggered readiness API over the operating system's
//! multiplexer: `epoll(7)` on Linux, `poll(2)` on other Unix systems. The
//! surface mirrors the real `polling` crate loosely — register file
//! descriptors with a `usize` key and an [`Interest`], park in
//! [`Poller::wait`], and wake the parked thread from anywhere with
//! [`Poller::notify`] — which is exactly what an I/O loop multiplexing many
//! connections behind a worker pool needs.
//!
//! No `libc` crate is linked: the handful of syscall wrappers are declared
//! directly as `extern "C"` prototypes, which resolve against the libc the
//! Rust standard library already links on every Unix target.
//!
//! ```
//! use polling::{Event, Interest, Poller};
//! use std::io::Write;
//! use std::net::{TcpListener, TcpStream};
//! use std::os::unix::io::AsRawFd;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
//! let (server, _) = listener.accept().unwrap();
//! server.set_nonblocking(true).unwrap();
//!
//! let poller = Poller::new().unwrap();
//! poller
//!     .add(server.as_raw_fd(), 7, Interest::readable())
//!     .unwrap();
//! client.write_all(b"ping").unwrap();
//!
//! let mut events = Vec::new();
//! poller.wait(&mut events, None).unwrap();
//! assert!(events.iter().any(|e: &Event| e.key == 7 && e.readable));
//! # poller.delete(server.as_raw_fd()).unwrap();
//! ```

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness directions a registration listens for.
///
/// A registration with neither direction set stays valid — the descriptor
/// still reports errors and hangups — which lets an I/O loop mute a
/// connection (e.g. while it is parked on a full queue) without
/// deregistering it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (or reaches EOF).
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub fn readable() -> Self {
        Interest {
            readable: true,
            writable: false,
        }
    }

    /// Writable only.
    pub fn writable() -> Self {
        Interest {
            readable: false,
            writable: true,
        }
    }

    /// Both directions.
    pub fn both() -> Self {
        Interest {
            readable: true,
            writable: true,
        }
    }

    /// Neither direction (errors and hangups still wake).
    pub fn none() -> Self {
        Interest::default()
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the descriptor was registered with.
    pub key: usize,
    /// The descriptor is readable (data, EOF, or a pending error).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor is in an error state; reads and
    /// writes will surface the detail.
    pub hangup: bool,
}

/// Convert a wait timeout to milliseconds for the kernel: `None` parks
/// indefinitely (-1); sub-millisecond timeouts round up so a short deadline
/// never busy-spins at zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) if t.is_zero() => 0,
        Some(t) => {
            let ms = t.as_millis().max(1);
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

fn last_os_error_or_retry(result: isize) -> Option<io::Error> {
    if result >= 0 {
        return None;
    }
    let error = io::Error::last_os_error();
    if error.kind() == io::ErrorKind::Interrupted {
        return None; // caller retries
    }
    Some(error)
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll backend: O(1) readiness with an `eventfd` notifier.

    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// The key value reserved for the internal notifier; user registrations
    /// with this key are rejected.
    const NOTIFY_KEY: u64 = u64::MAX;

    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// Level-triggered epoll instance plus an `eventfd` wakeup channel.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        wake_fd: RawFd,
        /// Collapses bursts of [`notify`](Poller::notify) calls into one
        /// eventfd write while no wait is in progress.
        notified: AtomicBool,
    }

    // The poller is registration- and notification-safe from any thread:
    // epoll_ctl/epoll_wait/eventfd writes are all kernel-synchronised.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Poller {
        /// Create a poller with its notifier registered.
        pub fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let wake_fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if wake_fd < 0 {
                let error = io::Error::last_os_error();
                unsafe { close(epfd) };
                return Err(error);
            }
            let poller = Poller {
                epfd,
                wake_fd,
                notified: AtomicBool::new(false),
            };
            poller.ctl(EPOLL_CTL_ADD, wake_fd, EPOLLIN, NOTIFY_KEY)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut event = EpollEvent { events, data };
            let result = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            if result < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Register `fd` under `key` with the given interest.
        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            if key as u64 == NOTIFY_KEY {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key usize::MAX is reserved for the notifier",
                ));
            }
            self.ctl(EPOLL_CTL_ADD, fd, interest_bits(interest), key as u64)
        }

        /// Change the interest set of an existing registration.
        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_bits(interest), key as u64)
        }

        /// Remove a registration.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Park until an event arrives, the timeout elapses, or another
        /// thread calls [`notify`](Poller::notify). Events are appended to
        /// `events` (cleared first); returns how many were delivered.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let count = loop {
                let result = unsafe {
                    epoll_wait(
                        self.epfd,
                        raw.as_mut_ptr(),
                        raw.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                match last_os_error_or_retry(result as isize) {
                    None if result >= 0 => break result as usize,
                    None => continue, // EINTR: retry
                    Some(error) => return Err(error),
                }
            };
            for entry in &raw[..count] {
                // Field reads copy out of the (possibly packed) struct.
                let data = entry.data;
                let bits = entry.events;
                if data == NOTIFY_KEY {
                    self.drain_notifications();
                    continue;
                }
                events.push(Event {
                    key: data as usize,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(events.len())
        }

        fn drain_notifications(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.wake_fd, buf.as_mut_ptr(), buf.len()) };
            self.notified.store(false, Ordering::Release);
        }

        /// Wake the thread parked in [`wait`](Poller::wait) (or make the
        /// next wait return immediately). Callable from any thread; bursts
        /// coalesce.
        pub fn notify(&self) -> io::Result<()> {
            if self.notified.swap(true, Ordering::AcqRel) {
                return Ok(()); // a wakeup is already pending
            }
            let one = 1u64.to_ne_bytes();
            let result = unsafe { write(self.wake_fd, one.as_ptr(), one.len()) };
            if result < 0 {
                let error = io::Error::last_os_error();
                // A full eventfd counter still wakes the waiter.
                if error.kind() != io::ErrorKind::WouldBlock {
                    return Err(error);
                }
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! `poll(2)` backend for non-Linux Unix: the registration table lives in
    //! userspace and the pollfd array is rebuilt per wait. O(n) per wake,
    //! which is fine at the connection counts this workspace drives on
    //! non-Linux development machines.

    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0x0004;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// Userspace registration table driven through `poll(2)`, with a
    /// self-pipe as the wakeup channel.
    #[derive(Debug)]
    pub struct Poller {
        registry: Mutex<HashMap<RawFd, (usize, Interest)>>,
        wake_read: RawFd,
        wake_write: RawFd,
        notified: AtomicBool,
    }

    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// Create a poller with its self-pipe notifier.
        pub fn new() -> io::Result<Self> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                    let error = io::Error::last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(error);
                }
            }
            Ok(Poller {
                registry: Mutex::new(HashMap::new()),
                wake_read: fds[0],
                wake_write: fds[1],
                notified: AtomicBool::new(false),
            })
        }

        /// Register `fd` under `key` with the given interest.
        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut registry = self.registry.lock().unwrap();
            if registry.insert(fd, (key, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        /// Change the interest set of an existing registration.
        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut registry = self.registry.lock().unwrap();
            match registry.get_mut(&fd) {
                Some(entry) => {
                    *entry = (key, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Remove a registration.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registry.lock().unwrap().remove(&fd);
            Ok(())
        }

        /// Park until an event arrives, the timeout elapses, or another
        /// thread calls [`notify`](Poller::notify).
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let (mut fds, keys): (Vec<PollFd>, Vec<usize>) = {
                let registry = self.registry.lock().unwrap();
                let mut fds = Vec::with_capacity(registry.len() + 1);
                let mut keys = Vec::with_capacity(registry.len() + 1);
                fds.push(PollFd {
                    fd: self.wake_read,
                    events: POLLIN,
                    revents: 0,
                });
                keys.push(usize::MAX);
                for (&fd, &(key, interest)) in registry.iter() {
                    let mut bits = 0;
                    if interest.readable {
                        bits |= POLLIN;
                    }
                    if interest.writable {
                        bits |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events: bits,
                        revents: 0,
                    });
                    keys.push(key);
                }
                (fds, keys)
            };
            loop {
                let result =
                    unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms(timeout)) };
                match last_os_error_or_retry(result as isize) {
                    None if result >= 0 => break,
                    None => continue,
                    Some(error) => return Err(error),
                }
            }
            for (entry, &key) in fds.iter().zip(&keys) {
                if entry.revents == 0 {
                    continue;
                }
                if key == usize::MAX {
                    let mut buf = [0u8; 64];
                    while unsafe { read(self.wake_read, buf.as_mut_ptr(), buf.len()) } > 0 {}
                    self.notified.store(false, Ordering::Release);
                    continue;
                }
                events.push(Event {
                    key,
                    readable: entry.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: entry.revents & POLLOUT != 0,
                    hangup: entry.revents & (POLLHUP | POLLERR) != 0,
                });
            }
            Ok(events.len())
        }

        /// Wake the thread parked in [`wait`](Poller::wait).
        pub fn notify(&self) -> io::Result<()> {
            if self.notified.swap(true, Ordering::AcqRel) {
                return Ok(());
            }
            let one = [1u8];
            unsafe { write(self.wake_write, one.as_ptr(), one.len()) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_read);
                close(self.wake_write);
            }
        }
    }
}

pub use sys::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn readable_events_fire_for_registered_keys() {
        let (mut client, server) = pair();
        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 42, Interest::readable())
            .unwrap();

        let mut events = Vec::new();
        let count = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(count, 0, "idle socket reports nothing");

        client.write_all(b"hello\n").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 42 && e.readable));
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn interest_can_be_muted_and_restored() {
        let (mut client, mut server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::none()).unwrap();
        client.write_all(b"pending").unwrap();

        // Muted: data is waiting but no event is reported.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| e.key != 1 || !e.readable));

        poller
            .modify(server.as_raw_fd(), 1, Interest::both())
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events
            .iter()
            .find(|e| e.key == 1)
            .expect("event after unmute");
        assert!(event.readable && event.writable);

        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).unwrap(), 7);
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn notify_wakes_a_parked_wait_from_another_thread() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "notify must cut the wait short"
        );
        assert!(events.is_empty(), "notification is not a user event");
        handle.join().unwrap();
    }

    #[test]
    fn notifications_coalesce_and_do_not_leak_into_later_waits() {
        let poller = Poller::new().unwrap();
        for _ in 0..64 {
            poller.notify().unwrap();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        // Drained: the next wait parks for its full (short) timeout.
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn writable_interest_reports_immediately_on_an_open_socket() {
        let (_client, server) = pair();
        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 9, Interest::writable())
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 9 && e.writable));
        poller.delete(server.as_raw_fd()).unwrap();
    }
}
