//! Golden-snapshot pin for the `repro execute --trials 1` summary and
//! diagnostic breakdown.
//!
//! The snapshot guards the dynamic-execution chain: simulated model
//! outputs, code extraction, parse → validate → normalize → run on the
//! engine, the five-rung runnability ladder and the per-cell failure-kind
//! rollup.  If a refactor shifts a score, a ladder rung or a diagnostic
//! code, this test shows the exact diff.  Regenerate deliberately with:
//!
//! ```text
//! cargo run --release -p wfspeak-bench --bin repro -- execute --trials 1 \
//!     > tests/golden/execute_trials1.txt
//! ```

use wfspeak::core::{Benchmark, BenchmarkConfig, PromptVariant};

#[test]
fn execute_trials1_summary_matches_the_golden_snapshot() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 1,
        ..BenchmarkConfig::default()
    });
    // Reconstruct exactly what `repro execute --trials 1` prints: the
    // execution summary and the diagnostics rollup, each via println!.
    let grid = benchmark.run_execution(PromptVariant::Original);
    let mut rendered = String::new();
    rendered.push_str(&grid.render_summary(
        "Execution: generated artifacts on the runtime engine (1 trials per cell)",
    ));
    rendered.push('\n');
    rendered
        .push_str(&grid.render_diagnostics("Diagnostics: top failure kinds per model × system"));
    rendered.push('\n');

    let golden = include_str!("golden/execute_trials1.txt");
    if rendered != golden {
        let diff: Vec<String> = golden
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .filter(|(_, (g, r))| g != r)
            .map(|(i, (g, r))| format!("line {}:\n  golden: {g}\n  actual: {r}", i + 1))
            .collect();
        panic!(
            "execute --trials 1 output drifted from the golden snapshot \
             ({} golden lines, {} actual):\n{}",
            golden.lines().count(),
            rendered.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn execute_snapshot_has_the_expected_shape() {
    // Belt and braces on the snapshot file itself, so an accidental
    // truncation of the golden file cannot silently weaken the pin.
    let golden = include_str!("golden/execute_trials1.txt");
    assert!(
        golden.contains("Execution: generated artifacts on the runtime engine"),
        "snapshot is missing the execution summary header"
    );
    assert!(
        golden.contains("Diagnostics: top failure kinds per model × system"),
        "snapshot is missing the diagnostics rollup"
    );
    assert!(
        golden.contains("overall:"),
        "snapshot is missing the grid footer"
    );
    // The diagnostics rollup must prove the execute path surfaces at
    // least three distinct machine-readable failure kinds.
    for kind in ["bad-indentation", "unknown-field", "unknown-directive"] {
        assert!(
            golden.contains(&format!("{kind}×")),
            "snapshot is missing the {kind} diagnostic kind"
        );
    }
    // The summary table replaces the flat unparsed count with typed
    // parse-failure categories carrying the offending line:column.
    assert!(
        golden.contains("parse failure"),
        "snapshot is missing the parse-failure column"
    );
    assert!(
        golden.contains("bad-indentation@5:7"),
        "snapshot is missing a positioned parse-failure category"
    );
    // Paper row order within each table.
    let rows: Vec<usize> = ["ADIOS2", "Henson", "Parsl", "PyCOMPSs", "Wilkins"]
        .iter()
        .map(|row| golden.find(&format!("\n{row} ")).expect("row present"))
        .collect();
    assert!(rows.windows(2).all(|w| w[0] < w[1]));
}
