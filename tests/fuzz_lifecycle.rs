//! Panic-safety fuzz harness for the spec lifecycle: random byte soup,
//! mutated reference configs and arbitrary [`WorkflowSpec`]s are pushed
//! through parse → validate → normalize → execute, asserting the pipeline
//! never panics, never hangs, and keeps its structural promises
//! (idempotent normalization, deterministic validation, a monotone
//! runnability ladder).
//!
//! Case count defaults to the vendored proptest's 256 and scales with
//! `PROPTEST_CASES` (CI's `fuzz-smoke` job runs 512).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use wfspeak_core::exec::{execute_artifact, SandboxConfig};
use wfspeak_corpus::references::execution_reference;
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_runtime::{Engine, TraceSummary};
use wfspeak_systems::{
    workflow_spec_from_config, DataRequirement, DataRole, TaskSpec, WorkflowSpec,
};

/// A single bounded-time budget for one fuzz case end to end.  The engine
/// bounds every run internally (publish/receive timeouts); this asserts
/// that no lifecycle stage can stall a case past a coarse wall-clock cap.
const CASE_BUDGET: Duration = Duration::from_secs(30);

fn reference_summary() -> &'static TraceSummary {
    static SUMMARY: OnceLock<TraceSummary> = OnceLock::new();
    SUMMARY.get_or_init(|| {
        let sandbox = SandboxConfig::default();
        Engine::new(sandbox.engine_config())
            .run(&WorkflowSpec::paper_3node().normalized())
            .expect("reference workflow runs")
            .summary()
    })
}

fn systems() -> [WorkflowSystemId; 5] {
    [
        WorkflowSystemId::Wilkins,
        WorkflowSystemId::Adios2,
        WorkflowSystemId::Henson,
        WorkflowSystemId::Parsl,
        WorkflowSystemId::PyCompss,
    ]
}

/// Push one artifact through the full lifecycle for every execution
/// system and check the invariants that must hold for *any* input.
fn check_artifact(artifact: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    let start = Instant::now();
    for system in systems() {
        // Parse + schema validation must be total functions of the input.
        let (spec, report) = workflow_spec_from_config(system, artifact);
        if let Some(spec) = spec {
            check_spec(&spec)?;
        } else {
            // Unparseable artifacts must say why.
            prop_assert!(
                !report.diagnostics.is_empty(),
                "{system}: no spec and no diagnostics for {artifact:?}"
            );
        }
        // Span invariant: any positioned diagnostic must index a real
        // character of the artifact it was parsed from — a line within the
        // document and a column within that line.
        let lines: Vec<&str> = artifact.lines().collect();
        for d in &report.diagnostics {
            let Some(line) = d.line else { continue };
            prop_assert!(
                line >= 1 && line <= lines.len(),
                "{system}: diagnostic line {line} out of range 1..={} for {artifact:?} ({d})",
                lines.len()
            );
            if let Some(column) = d.column {
                let text = lines[line - 1];
                prop_assert!(
                    column >= 1 && column <= text.len(),
                    "{system}: diagnostic column {column} out of range 1..={} on line {text:?} \
                     for {artifact:?} ({d})",
                    text.len()
                );
            }
        }

        // The composed pipeline scores the same artifact without panicking
        // and keeps the runnability ladder monotone.
        let score = execute_artifact(
            &SandboxConfig::default(),
            system,
            artifact,
            reference_summary(),
        );
        prop_assert!(!score.valid || score.parsed, "valid ⇒ parsed");
        prop_assert!(!score.validated || score.valid, "validated ⇒ valid");
        prop_assert!(!score.ran || score.validated, "ran ⇒ validated");
        prop_assert!(!score.completed || score.ran, "completed ⇒ ran");
        prop_assert!(
            (0.0..=100.0).contains(&score.runnability),
            "runnability {} out of range",
            score.runnability
        );
        prop_assert_eq!(
            score.failure_kind().is_none(),
            score.completed,
            "failure kind must name every non-completed outcome"
        );
        if !score.completed {
            prop_assert!(
                !score.diagnostics.is_empty(),
                "{system}: failed with no diagnostics for {artifact:?}"
            );
        }
    }
    prop_assert!(
        start.elapsed() < CASE_BUDGET,
        "lifecycle case exceeded {CASE_BUDGET:?} ({:?})",
        start.elapsed()
    );
    Ok(())
}

/// Structural invariants of validate/normalize for any spec, however built.
fn check_spec(spec: &WorkflowSpec) -> Result<(), proptest::test_runner::TestCaseError> {
    // Validation is deterministic.
    prop_assert_eq!(spec.validate(), spec.validate());

    // Normalization is idempotent and does not change structural validity.
    let normalized = spec.normalized();
    prop_assert_eq!(
        &normalized.normalized(),
        &normalized,
        "normalize∘normalize ≠ normalize"
    );
    let errors_before = spec.validate().iter().filter(|d| d.is_error()).count();
    let errors_after = normalized
        .validate()
        .iter()
        .filter(|d| d.is_error())
        .count();
    prop_assert_eq!(
        errors_before == 0,
        errors_after == 0,
        "normalization flipped structural validity"
    );

    // Every diagnostic round-trips over the wire vocabulary.
    for diagnostic in spec.validate() {
        prop_assert!(
            wfspeak_systems::DiagnosticKind::from_code(diagnostic.code()).is_some(),
            "unknown diagnostic code {}",
            diagnostic.code()
        );
    }
    Ok(())
}

fn mutate(source: &str, ops: &[(usize, u8, char)]) -> String {
    let mut text: Vec<char> = source.chars().collect();
    for &(at, op, with) in ops {
        if text.is_empty() {
            text.push(with);
            continue;
        }
        let at = at % text.len();
        match op % 4 {
            0 => text.remove(at),
            1 => {
                text.insert(at, with);
                with
            }
            2 => std::mem::replace(&mut text[at], with),
            _ => {
                text.truncate(at.max(1));
                with
            }
        };
    }
    text.into_iter().collect()
}

proptest! {
    // Random printable byte soup (with YAML-significant characters well
    // represented) through the full lifecycle for every system.
    #[test]
    fn byte_soup_never_panics(artifact in "[ -~\n\t]{0,200}") {
        check_artifact(&artifact)?;
    }

    // Soup biased towards config-shaped lines: keys, colons, dashes and
    // indentation, so parses get much deeper than uniform noise.
    #[test]
    fn config_shaped_soup_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                "tasks:|functions:|nprocs:|command:|inports:|outports:",
                "  - [a-z_]{1,10}: ?[a-z0-9./ ]{0,12}",
                "    [a-z_]{1,10}: ?-?[0-9]{0,6}",
                "[a-z_]{1,10}:",
                "  [ -~]{0,20}",
            ],
            0..12,
        ),
    ) {
        check_artifact(&lines.join("\n"))?;
    }

    // Reference artifacts (configuration files and annotated Python
    // scripts) with random mutations applied (deletions, insertions,
    // replacements, truncations): mostly-valid inputs probe far deeper
    // parser and validator paths than noise.
    #[test]
    fn mutated_references_never_panic(
        system_pick in 0usize..5,
        ops in proptest::collection::vec(
            ((0usize..4096), (0u8..8), proptest::char::range(' ', '~')),
            0..8,
        ),
    ) {
        let reference = execution_reference(systems()[system_pick]);
        check_artifact(&mutate(reference, &ops))?;
    }

    // Arbitrary in-memory specs — tiny name pools force duplicate tasks,
    // self-loops, cycles and dangling edges; the nprocs range crosses the
    // absurd-bounds threshold — through validate/normalize/execute.
    #[test]
    fn arbitrary_specs_survive_the_lifecycle(
        name in "[a-z]{0,6}",
        tasks in proptest::collection::vec(
            (
                "[ab]{1,2}|[a-z]{1,8}",
                prop_oneof![Just(0usize), 1usize..8, 60_000usize..80_000],
                proptest::collection::vec(("[xy]|[a-z]{1,4}", any::<bool>()), 0..4),
            ),
            0..6,
        ),
    ) {
        let start = Instant::now();
        let spec = WorkflowSpec {
            name,
            tasks: tasks
                .into_iter()
                .map(|(name, nprocs, data)| TaskSpec {
                    name,
                    nprocs,
                    data: data
                        .into_iter()
                        .map(|(dataset, produces)| {
                            DataRequirement::new(
                                &dataset,
                                if produces { DataRole::Produces } else { DataRole::Consumes },
                            )
                        })
                        .collect(),
                })
                .collect(),
        };
        check_spec(&spec)?;

        // Structurally clean specs within the sandbox caps must run on the
        // engine without panicking (completion is not guaranteed).
        let sandbox = SandboxConfig::default();
        let clean = !spec.validate().iter().any(|d| d.is_error());
        let spec = spec.normalized();
        if clean
            && spec.tasks.len() <= sandbox.max_tasks
            && spec.total_procs() <= sandbox.max_total_procs
        {
            let _ = Engine::new(sandbox.engine_config()).run(&spec);
        }
        prop_assert!(
            start.elapsed() < CASE_BUDGET,
            "spec case exceeded {CASE_BUDGET:?} ({:?})",
            start.elapsed()
        );
    }
}
