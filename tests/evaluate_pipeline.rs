//! Workspace-level pin: `Benchmark::run_evaluation` (the parallel grid) is
//! bit-identical to reconstructing every cell by hand — prompt assembly,
//! simulated model query, then the three pipeline stages composed directly
//! from their home crates (`extract_code` → `compare_calls` →
//! `Scorer::score_prepared`).

use wfspeak::codemodel::{compare_calls, extract_code, Language};
use wfspeak::core::{Benchmark, BenchmarkConfig, ExperimentKind, PromptVariant};
use wfspeak::corpus::prompts::annotation_prompt;
use wfspeak::corpus::references::annotation_reference;
use wfspeak::corpus::WorkflowSystemId;
use wfspeak::llm::{CompletionRequest, LlmClient, SamplingParams, SimulatedLlm};
use wfspeak::metrics::{BleuScorer, ChrfScorer, Scorer};
use wfspeak::systems::api::catalog_for;

#[test]
fn grid_evaluation_matches_direct_stage_composition() {
    let config = BenchmarkConfig {
        trials: 2,
        ..BenchmarkConfig::default()
    };
    let benchmark = Benchmark::with_simulated_models(config.clone());
    let grid = benchmark.run_evaluation(ExperimentKind::Annotation, PromptVariant::Original);

    let bleu = BleuScorer::default();
    let chrf = ChrfScorer::default();
    for system in WorkflowSystemId::annotation_systems() {
        let reference = annotation_reference(system).unwrap();
        let prepared_bleu = bleu.prepare(reference);
        let prepared_chrf = chrf.prepare(reference);
        let catalog = catalog_for(system);
        let language = if system.uses_python_tasks() {
            Language::Python
        } else {
            Language::C
        };
        let prompt = annotation_prompt(system, PromptVariant::Original);
        for client in SimulatedLlm::all() {
            let cell = grid
                .cell(system.name(), client.model().name())
                .unwrap_or_else(|| panic!("cell {system}/{}", client.model().name()));
            assert_eq!(cell.trials.len(), config.trials);
            for (trial, seed) in cell.trials.iter().zip(config.trial_seeds()) {
                let params = SamplingParams {
                    temperature: config.temperature,
                    top_p: config.top_p,
                    seed,
                };
                let response = client.complete(&CompletionRequest::new(prompt.clone(), params));
                let code = extract_code(&response.text);
                assert_eq!(trial.code, code, "{system}/{}", client.model().name());
                assert_eq!(
                    trial.bleu.to_bits(),
                    bleu.score_prepared(&code, &prepared_bleu).to_bits()
                );
                assert_eq!(
                    trial.chrf.to_bits(),
                    chrf.score_prepared(&code, &prepared_chrf).to_bits()
                );
                assert_eq!(
                    trial.calls,
                    compare_calls(
                        &code,
                        reference,
                        language,
                        &catalog.prefixes,
                        &catalog.function_names(),
                    )
                );
            }
        }
    }
}
