//! Cross-crate consistency checks: the corpus references, the system
//! models, the rule-based translator and the runtime must agree with each
//! other (the references validate, generate back to themselves, and
//! execute).

use wfspeak_corpus::references::{annotation_reference, configuration_reference};
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};
use wfspeak_runtime::{Engine, EngineConfig};
use wfspeak_systems::translate::{strip_annotations, translate};
use wfspeak_systems::wilkins::WilkinsConfig;
use wfspeak_systems::{system_for, WorkflowSpec};

#[test]
fn references_validate_against_their_own_system_models() {
    for system in WorkflowSystemId::configuration_systems() {
        let reference = configuration_reference(system).unwrap();
        let report = system_for(system).validate_config(reference);
        assert!(report.is_valid(), "{system} config reference: {report}");
    }
    for system in WorkflowSystemId::annotation_systems() {
        let reference = annotation_reference(system).unwrap();
        let report = system_for(system).validate_task_code(reference);
        assert!(report.is_valid(), "{system} annotation reference: {report}");
    }
}

#[test]
fn generated_configs_score_perfectly_against_corpus_references() {
    // The system models' generators and the corpus ground truth are the same
    // artifact: BLEU/ChrF of 100 by construction.
    let spec = WorkflowSpec::paper_3node();
    let bleu = BleuScorer::default();
    let chrf = ChrfScorer::default();
    for system in WorkflowSystemId::configuration_systems() {
        let generated = system_for(system).generate_config(&spec).unwrap();
        let reference = configuration_reference(system).unwrap();
        assert!(
            (bleu.score(&generated, reference) - 100.0).abs() < 1e-6,
            "{system}"
        );
        assert!(
            (chrf.score(&generated, reference) - 100.0).abs() < 1e-6,
            "{system}"
        );
    }
}

#[test]
fn rule_based_translation_validates_for_every_paper_pair() {
    for (source, target) in wfspeak_corpus::translation_pairs() {
        let source_code = annotation_reference(source).unwrap();
        let translated = translate(source_code, source, target).unwrap();
        let report = system_for(target).validate_task_code(&translated);
        assert!(report.is_valid(), "{source} -> {target}: {report}");
    }
}

#[test]
fn rule_based_translation_scores_above_the_simulated_llm_average() {
    // Ablation: the deterministic strip-and-reannotate baseline should score
    // at least as well as a mid-tier LLM on the same pair, because it never
    // hallucinates.
    let bleu = BleuScorer::default();
    for (source, target) in wfspeak_corpus::translation_pairs() {
        let source_code = annotation_reference(source).unwrap();
        let reference = annotation_reference(target).unwrap();
        let translated = translate(source_code, source, target).unwrap();
        let score = bleu.score(&translated, reference);
        assert!(
            score > 40.0,
            "{source} -> {target}: rule-based baseline scored {score:.1}"
        );
    }
}

#[test]
fn stripping_annotations_recovers_code_close_to_the_bare_producer() {
    let bleu = BleuScorer::default();
    let bare_c = wfspeak_corpus::task_codes::C_PRODUCER;
    for system in [WorkflowSystemId::Adios2, WorkflowSystemId::Henson] {
        let annotated = annotation_reference(system).unwrap();
        let stripped = strip_annotations(annotated, system);
        let score = bleu.score(&stripped, bare_c);
        assert!(
            score > 55.0,
            "{system}: stripped code should resemble the bare producer, got {score:.1}"
        );
    }
}

#[test]
fn reference_wilkins_config_parses_converts_and_executes() {
    let reference = configuration_reference(WorkflowSystemId::Wilkins).unwrap();
    let (config, report) = WilkinsConfig::parse(reference);
    assert!(report.is_valid());
    let spec = config.unwrap().to_spec("integration");
    assert!(!spec.validate().iter().any(|d| d.is_error()));
    assert_eq!(spec.total_procs(), 5);

    let outcome = Engine::new(EngineConfig {
        timesteps: 2,
        elements: 16,
        ..EngineConfig::default()
    })
    .run(&spec)
    .unwrap();
    assert!(outcome.completed, "{}", outcome.trace.render());
    assert_eq!(outcome.total_received(), 4);
}

#[test]
fn generated_wilkins_config_for_arbitrary_specs_round_trips_and_runs() {
    use wfspeak_systems::TaskSpec;
    let spec = WorkflowSpec::new("custom")
        .with_task(TaskSpec::new("sim", 4).produces("field").produces("mesh"))
        .with_task(TaskSpec::new("viz", 2).consumes("field"))
        .with_task(TaskSpec::new("stats", 1).consumes("mesh").consumes("field"));
    let config_text = system_for(WorkflowSystemId::Wilkins)
        .generate_config(&spec)
        .unwrap();
    let (parsed, report) = WilkinsConfig::parse(&config_text);
    assert!(report.is_valid(), "{report}");
    let round_tripped = parsed.unwrap().to_spec("custom");
    assert_eq!(round_tripped.edges().len(), spec.edges().len());

    let outcome = Engine::new(EngineConfig {
        timesteps: 2,
        elements: 8,
        ..EngineConfig::default()
    })
    .run(&round_tripped)
    .unwrap();
    assert!(outcome.completed, "{}", outcome.trace.render());
}
