//! End-to-end integration test: the full benchmark pipeline from prompt
//! construction through simulated models, response extraction, scoring and
//! table rendering.

use wfspeak_core::report::{qualitative_configurations, qualitative_translations, FullReport};
use wfspeak_core::{Benchmark, BenchmarkConfig, ExperimentKind, PromptVariant};
use wfspeak_metrics::Metric;

fn quick() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 2,
        ..BenchmarkConfig::default()
    })
}

#[test]
fn every_experiment_produces_fully_populated_tables() {
    let benchmark = quick();
    for kind in ExperimentKind::ALL {
        let result = benchmark.run_experiment(kind, PromptVariant::Original);
        assert_eq!(result.bleu.rows(), kind.row_labels().as_slice(), "{kind}");
        assert_eq!(result.bleu.cols().len(), 4, "{kind}");
        for row in result.bleu.rows() {
            for col in result.bleu.cols() {
                let bleu = result.cell(Metric::Bleu, row, col);
                let chrf = result.cell(Metric::Chrf, row, col);
                assert_eq!(bleu.n, 2, "{kind} {row}/{col}");
                assert_eq!(chrf.n, 2, "{kind} {row}/{col}");
                assert!(bleu.mean >= 0.0 && bleu.mean <= 100.0);
                assert!(chrf.mean >= 0.0 && chrf.mean <= 100.0);
            }
        }
        let table = result.render_table(kind.paper_table());
        assert!(table.contains("Overall"));
        let csv = result.render_csv();
        // header + (rows x cols x 2 metrics) lines
        assert_eq!(
            csv.lines().count(),
            1 + result.bleu.rows().len() * result.bleu.cols().len() * 2,
            "{kind}"
        );
    }
}

#[test]
fn scores_are_deterministic_across_identical_runs() {
    let a = quick().run_translation(PromptVariant::Original);
    let b = quick().run_translation(PromptVariant::Original);
    for row in a.bleu.rows() {
        for col in a.bleu.cols() {
            assert_eq!(
                a.cell(Metric::Bleu, row, col),
                b.cell(Metric::Bleu, row, col),
                "{row}/{col}"
            );
        }
    }
}

#[test]
fn trial_variance_is_reflected_in_standard_errors() {
    // With several trials at temperature 0.2 at least some cells should show
    // nonzero standard error (the paper reports ± values throughout), and
    // deterministic-leaning models (Claude) should show many zero-variance
    // cells.
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 4,
        ..BenchmarkConfig::default()
    });
    let result = benchmark.run_annotation(PromptVariant::Original);
    let mut nonzero = 0;
    for row in result.bleu.rows() {
        for col in result.bleu.cols() {
            if result.cell(Metric::Bleu, row, col).std_err > 0.0 {
                nonzero += 1;
            }
        }
    }
    assert!(
        nonzero >= 3,
        "expected some trial variance, found {nonzero} cells"
    );
}

#[test]
fn prompt_sensitivity_covers_all_variants_and_experiments() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 1,
        ..BenchmarkConfig::default()
    });
    let sensitivity = benchmark.run_prompt_sensitivity();
    assert_eq!(sensitivity.results.len(), 3);
    for kind in ExperimentKind::ALL {
        let by_variant = &sensitivity.results[&kind];
        assert_eq!(by_variant.len(), 5, "{kind}");
        for row in kind.row_labels() {
            let heatmap = sensitivity.render_heatmap(kind, &row);
            assert!(heatmap.contains("original"));
            assert!(heatmap.contains("reordered"));
        }
    }
}

#[test]
fn qualitative_reports_validate_against_system_models() {
    let translations = qualitative_translations(2025);
    assert_eq!(translations.len(), 2);
    for sample in &translations {
        assert!(!sample.artifact.is_empty());
    }
    let configurations = qualitative_configurations(2025);
    assert_eq!(configurations.len(), 2);
    assert!(configurations[0].errors.len() < configurations[1].errors.len());
}

#[test]
fn full_report_round_trips_through_json() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 1,
        ..BenchmarkConfig::default()
    });
    let report = FullReport {
        config: benchmark.config().clone(),
        configuration: benchmark.run_configuration(PromptVariant::Original, false),
        annotation: benchmark.run_annotation(PromptVariant::Original),
        translation: benchmark.run_translation(PromptVariant::Original),
        few_shot: benchmark.run_few_shot_comparison(),
        prompt_sensitivity: Default::default(),
    };
    let json = report.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(value["configuration"]["bleu"].is_object());
    assert!(value["few_shot"]["few_shot"].is_object());
}
