//! Property tests for the synthetic workflow-topology generator
//! (`wfspeak_systems::topo`): every acyclic generator spec yields a
//! structurally clean, deterministically regenerable workflow; the cyclic
//! negatives always trip the validator's cycle detector; and normalization
//! stays idempotent all the way up to the 1000-task benchmark tier.
//!
//! Case count defaults to the vendored proptest's 256 and scales with
//! `PROPTEST_CASES` (CI's `fuzz-smoke` job runs 512).

use proptest::prelude::*;
use wfspeak_systems::topo::{bench_suite, TopoShape, TopoSpec, BENCH_SIZES};
use wfspeak_systems::DiagnosticKind;

/// Strategy over acyclic generator specs at property-test-friendly sizes.
fn acyclic_spec() -> impl Strategy<Value = TopoSpec> {
    (
        0usize..TopoShape::ACYCLIC.len(),
        0usize..120,
        0u64..u64::MAX,
    )
        .prop_map(|(shape, tasks, seed)| TopoSpec::new(TopoShape::ACYCLIC[shape], tasks, seed))
}

proptest! {
    // Any acyclic generator spec produces a workflow the validator accepts
    // outright: no error diagnostics, structural validity, and the task
    // count the (clamped) spec promised.
    #[test]
    fn acyclic_specs_validate_clean(topo in acyclic_spec()) {
        let spec = topo.generate();
        let errors: Vec<_> = spec.validate().into_iter().filter(|d| d.is_error()).collect();
        prop_assert!(errors.is_empty(), "{}: {errors:?}", topo.name());
        prop_assert!(spec.is_structurally_valid(), "{}", topo.name());
        prop_assert_eq!(spec.tasks.len(), topo.tasks);
        prop_assert!(topo.tasks >= topo.shape.min_tasks());
        prop_assert!(!spec.edges().is_empty(), "{}: no dataflow edges", topo.name());
    }

    // Generation is a pure function of the spec: the same (shape, tasks,
    // seed) always regenerates the identical workflow, and the stable name
    // embeds the clamped task count.
    #[test]
    fn generation_is_deterministic(topo in acyclic_spec()) {
        prop_assert_eq!(topo.generate(), topo.generate());
        prop_assert_eq!(
            topo.name(),
            format!("topo-{}-{}", topo.shape.label(), topo.tasks)
        );
    }

    // Every cyclic negative trips the validator's cycle detector with the
    // machine-readable `cycle` code, and never passes structural validation.
    #[test]
    fn cyclic_negatives_emit_the_cycle_diagnostic(
        tasks in 0usize..120,
        seed in 0u64..u64::MAX,
    ) {
        let topo = TopoSpec::new(TopoShape::Cyclic, tasks, seed);
        let spec = topo.generate();
        prop_assert!(!spec.is_structurally_valid(), "{}", topo.name());
        prop_assert!(
            spec.validate()
                .iter()
                .any(|d| d.is_error() && d.code() == DiagnosticKind::Cycle.code()),
            "{}: no cycle diagnostic in {:?}",
            topo.name(),
            spec.validate()
        );
    }

    // Normalization is idempotent on generated topologies and preserves the
    // task set.
    #[test]
    fn normalization_is_idempotent_on_generated_topologies(topo in acyclic_spec()) {
        let spec = topo.generate();
        let normalized = spec.normalized();
        prop_assert_eq!(&normalized.normalized(), &normalized, "{}", topo.name());
        prop_assert_eq!(normalized.tasks.len(), spec.tasks.len());
    }
}

#[test]
fn the_full_bench_suite_is_clean_up_to_a_thousand_tasks() {
    // The exact tiers the scaling benchmark sweeps — including the
    // 1000-task tier the proptest strategies keep small — validate clean
    // and normalize idempotently.
    let suite = bench_suite(42);
    assert_eq!(suite.len(), BENCH_SIZES.len() * TopoShape::ACYCLIC.len());
    for topo in suite {
        let spec = topo.generate();
        assert!(spec.is_structurally_valid(), "{}", topo.name());
        let normalized = spec.normalized();
        assert_eq!(
            normalized.normalized(),
            normalized,
            "{}: normalize not idempotent",
            topo.name()
        );
        assert_eq!(normalized.tasks.len(), topo.tasks, "{}", topo.name());
    }
}

#[test]
fn cyclic_negatives_scale_to_a_thousand_tasks() {
    for tasks in BENCH_SIZES {
        let spec = TopoSpec::new(TopoShape::Cyclic, tasks, 42).generate();
        assert!(
            spec.validate()
                .iter()
                .any(|d| d.code() == DiagnosticKind::Cycle.code()),
            "cyclic-{tasks}: cycle diagnostic missing"
        );
    }
}
