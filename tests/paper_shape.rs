//! Shape tests: the benchmark run over the simulated models must reproduce
//! the qualitative findings of the paper's evaluation (who wins, by roughly
//! what factor, where the weak spots are).  Absolute numbers are not pinned.

use wfspeak_core::{Benchmark, BenchmarkConfig, PromptVariant};
use wfspeak_metrics::Metric;

fn benchmark() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig::default())
}

#[test]
fn table1_adios2_is_the_best_configured_system_and_henson_the_worst() {
    let result = benchmark().run_configuration(PromptVariant::Original, false);
    let adios2 = result.bleu.row_overall("ADIOS2").mean;
    let henson = result.bleu.row_overall("Henson").mean;
    let wilkins = result.bleu.row_overall("Wilkins").mean;
    assert!(
        adios2 > wilkins,
        "ADIOS2 {adios2:.1} should beat Wilkins {wilkins:.1}"
    );
    assert!(
        wilkins > henson,
        "Wilkins {wilkins:.1} should beat Henson {henson:.1}"
    );
    assert!(
        adios2 > 1.5 * henson,
        "the ADIOS2/Henson gap should be large (paper: ~60 vs ~25), got {adios2:.1} vs {henson:.1}"
    );
    assert_eq!(result.best_row().as_deref(), Some("ADIOS2"));
}

#[test]
fn table1_gemini_and_claude_lead_the_configuration_experiment() {
    let result = benchmark().run_configuration(PromptVariant::Original, false);
    let overall = |model: &str| result.bleu.col_overall(model).mean;
    let o3 = overall("o3");
    let gemini = overall("Gemini-2.5-Pro");
    let claude = overall("Claude-Sonnet-4");
    let llama = overall("LLaMA-3.3-70B");
    assert!(gemini > o3, "Gemini {gemini:.1} should beat o3 {o3:.1}");
    assert!(claude > o3, "Claude {claude:.1} should beat o3 {o3:.1}");
    assert!(
        gemini > llama,
        "Gemini {gemini:.1} should beat LLaMA {llama:.1}"
    );
    assert!(
        claude > llama,
        "Claude {claude:.1} should beat LLaMA {llama:.1}"
    );
}

#[test]
fn table2_annotation_beats_configuration_overall() {
    // "In overall, we see that LLMs perform better compared with the
    // workflow configuration experiment."
    let config = benchmark().run_configuration(PromptVariant::Original, false);
    let annotation = benchmark().run_annotation(PromptVariant::Original);
    assert!(
        annotation.bleu.grand_overall().mean > config.bleu.grand_overall().mean,
        "annotation {:.1} should beat configuration {:.1}",
        annotation.bleu.grand_overall().mean,
        config.bleu.grand_overall().mean
    );
}

#[test]
fn table2_pycompss_is_the_best_annotated_system_but_llama_fails_it() {
    let result = benchmark().run_annotation(PromptVariant::Original);
    // PyCOMPSs annotations are the strongest overall among the harder
    // systems (paper: 55.5, vs Henson 34.2 and Parsl 38.0), and the leading
    // models (Gemini, Claude) do their best work on PyCOMPSs.
    let pycompss = result.bleu.row_overall("PyCOMPSs").mean;
    let henson = result.bleu.row_overall("Henson").mean;
    let parsl = result.bleu.row_overall("Parsl").mean;
    assert!(
        pycompss > henson,
        "PyCOMPSs {pycompss:.1} should beat Henson {henson:.1}"
    );
    assert!(
        pycompss > parsl,
        "PyCOMPSs {pycompss:.1} should beat Parsl {parsl:.1}"
    );
    for model in ["Gemini-2.5-Pro", "Claude-Sonnet-4"] {
        let own_pycompss = result.cell(Metric::Bleu, "PyCOMPSs", model).mean;
        for row in ["ADIOS2", "Henson", "Parsl"] {
            let other = result.cell(Metric::Bleu, row, model).mean;
            assert!(
                own_pycompss >= other,
                "{model}: PyCOMPSs {own_pycompss:.1} should be its best system (vs {row} {other:.1})"
            );
        }
    }
    // The paper's striking outlier: LLaMA-3.3-70B collapses on PyCOMPSs
    // (9.9 BLEU) while Gemini-2.5-Pro excels (89.3).
    let llama_pycompss = result.cell(Metric::Bleu, "PyCOMPSs", "LLaMA-3.3-70B").mean;
    let gemini_pycompss = result.cell(Metric::Bleu, "PyCOMPSs", "Gemini-2.5-Pro").mean;
    assert!(
        llama_pycompss < 40.0,
        "LLaMA on PyCOMPSs should collapse (paper: 9.9), got {llama_pycompss:.1}"
    );
    assert!(
        gemini_pycompss > 70.0,
        "Gemini on PyCOMPSs should excel (paper: 89.3), got {gemini_pycompss:.1}"
    );
    assert!(gemini_pycompss > llama_pycompss + 30.0);
}

#[test]
fn table2_chrf_is_more_forgiving_than_bleu_for_parsl_redundancy() {
    // The paper: redundant executor boilerplate hurts BLEU more than ChrF.
    let result = benchmark().run_annotation(PromptVariant::Original);
    let bleu = result.bleu.row_overall("Parsl").mean;
    let chrf = result.chrf.row_overall("Parsl").mean;
    assert!(
        chrf > bleu,
        "Parsl ChrF {chrf:.1} should exceed BLEU {bleu:.1} (redundancy tolerance)"
    );
}

#[test]
fn table3_translating_into_adios2_beats_translating_into_henson() {
    let result = benchmark().run_translation(PromptVariant::Original);
    let to_adios2 = result.bleu.row_overall("Henson to ADIOS2").mean;
    let to_henson = result.bleu.row_overall("ADIOS2 to Henson").mean;
    let to_pycompss = result.bleu.row_overall("Parsl to PyCOMPSs").mean;
    let to_parsl = result.bleu.row_overall("PyCOMPSs to Parsl").mean;
    assert!(to_adios2 > to_henson, "{to_adios2:.1} vs {to_henson:.1}");
    assert!(to_pycompss > to_parsl, "{to_pycompss:.1} vs {to_parsl:.1}");
}

#[test]
fn table3_translation_is_harder_than_annotation_overall() {
    // "LLMs perform slightly worse than the task code annotation experiment"
    // — true per model for o3, Gemini and Claude in Table 2 vs Table 3
    // (LLaMA's two experiments are within noise of each other, 30.2 vs 28.7,
    // and its failure modes differ, so it is excluded here).
    let annotation = benchmark().run_annotation(PromptVariant::Original);
    let translation = benchmark().run_translation(PromptVariant::Original);
    for model in ["o3", "Gemini-2.5-Pro", "Claude-Sonnet-4"] {
        let ann = annotation.bleu.col_overall(model).mean;
        let tr = translation.bleu.col_overall(model).mean;
        assert!(
            tr < ann,
            "{model}: translation {tr:.1} should trail annotation {ann:.1}"
        );
    }
}

#[test]
fn table5_few_shot_prompting_lifts_every_model_above_70_bleu() {
    let comparison = benchmark().run_few_shot_comparison();
    assert!(comparison.few_shot_improves_all_models());
    for (model, zero, few, _, _) in comparison.per_model_rows() {
        assert!(
            few.mean > 70.0,
            "{model}: few-shot configuration should be strong (paper: 84-92), got {:.1}",
            few.mean
        );
        assert!(
            few.mean - zero.mean > 20.0,
            "{model}: few-shot uplift should be large, got {:.1} -> {:.1}",
            zero.mean,
            few.mean
        );
    }
}

#[test]
fn figure1_no_single_prompt_variant_wins_for_every_model() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 2,
        ..BenchmarkConfig::default()
    });
    let sensitivity = benchmark.run_prompt_sensitivity();
    // Collect, per model, which prompt variant is best for ADIOS2
    // configuration; the paper observes these differ across models for at
    // least some cells.  Check across all rows of the configuration
    // experiment that not every model agrees on one best variant everywhere.
    let mut all_agree_everywhere = true;
    for row in wfspeak_core::ExperimentKind::Configuration.row_labels() {
        let best =
            sensitivity.best_variant_per_model(wfspeak_core::ExperimentKind::Configuration, &row);
        let variants: std::collections::HashSet<&String> = best.values().collect();
        if variants.len() > 1 {
            all_agree_everywhere = false;
        }
    }
    assert!(
        !all_agree_everywhere,
        "some disagreement between models on the best prompt variant is expected"
    );
}
