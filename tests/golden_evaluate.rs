//! Golden-snapshot pin for the `repro evaluate --trials 1` aggregate
//! tables.
//!
//! The snapshot guards the full chain behind Table 1's ordering: simulated
//! model outputs (vendored RNG stream), code extraction, API-call
//! comparison and the BLEU/ChrF metrics.  If any refactor shifts a score,
//! a row ordering or the summary layout, this test shows the exact diff.
//! Regenerate deliberately with:
//!
//! ```text
//! cargo run --release -p wfspeak-bench --bin repro -- evaluate --trials 1 \
//!     | sed '$d' > tests/golden/evaluate_trials1.txt
//! ```

use wfspeak::core::{Benchmark, BenchmarkConfig, ExperimentKind, PromptVariant};

#[test]
fn evaluate_trials1_tables_match_the_golden_snapshot() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 1,
        ..BenchmarkConfig::default()
    });
    // Reconstruct exactly what `repro evaluate --trials 1` prints per grid
    // (a println! after each render_summary adds the blank separator line).
    let mut rendered = String::new();
    for kind in ExperimentKind::ALL {
        let grid = benchmark.run_evaluation(kind, PromptVariant::Original);
        rendered.push_str(
            &grid.render_summary(&format!("Evaluation: {} (1 trials per cell)", kind.name())),
        );
        rendered.push('\n');
    }

    let golden = include_str!("golden/evaluate_trials1.txt");
    if rendered != golden {
        let diff: Vec<String> = golden
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .filter(|(_, (g, r))| g != r)
            .map(|(i, (g, r))| format!("line {}:\n  golden: {g}\n  actual: {r}", i + 1))
            .collect();
        panic!(
            "evaluate --trials 1 output drifted from the golden snapshot \
             ({} golden lines, {} actual):\n{}",
            golden.lines().count(),
            rendered.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn golden_snapshot_has_the_expected_shape() {
    // Belt and braces on the snapshot file itself, so an accidental
    // truncation of the golden file cannot silently weaken the pin.
    let golden = include_str!("golden/evaluate_trials1.txt");
    for kind in [
        "Workflow configuration",
        "Task code annotation",
        "Task code translation",
    ] {
        assert!(
            golden.contains(&format!("Evaluation: {kind} (1 trials per cell)")),
            "snapshot is missing the {kind} table"
        );
    }
    assert_eq!(
        golden.matches("overall:").count(),
        3,
        "snapshot must contain all three grid footers"
    );
    // Table-1 row order (the ordering the paper reports).
    let config_rows: Vec<usize> = ["ADIOS2", "Henson", "Wilkins"]
        .iter()
        .map(|row| golden.find(&format!("\n{row} ")).expect("row present"))
        .collect();
    assert!(config_rows.windows(2).all(|w| w[0] < w[1]));
}
