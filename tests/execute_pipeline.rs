//! Workspace-level pin: `Benchmark::run_execution` (the parallel grid) is
//! bit-identical to reconstructing every cell by hand — prompt assembly,
//! simulated model query, then the five execution stages composed directly
//! from their home crates (`extract_code` → `workflow_spec_from_config` →
//! `WorkflowSpec::validate`/`normalized` → `Engine::run` →
//! `TraceSummary::fidelity`).

use wfspeak::codemodel::extract_code;
use wfspeak::core::{Benchmark, BenchmarkConfig, PromptVariant, SandboxConfig};
use wfspeak::corpus::prompts::execution_prompt;
use wfspeak::corpus::references::execution_reference;
use wfspeak::corpus::WorkflowSystemId;
use wfspeak::llm::{CompletionRequest, LlmClient, SamplingParams, SimulatedLlm};
use wfspeak::runtime::{Engine, TraceSummary};
use wfspeak::systems::workflow_spec_from_config;

/// Hand-composed execution of one response, mirroring
/// `wfspeak_core::exec::execute_artifact` stage by stage from the stages'
/// home crates.
fn direct_execute(
    sandbox: &SandboxConfig,
    system: WorkflowSystemId,
    reference: &TraceSummary,
    response: &str,
) -> (bool, bool, bool, bool, bool, f64, f64, usize, usize) {
    let code = extract_code(response);
    let (spec, report) = workflow_spec_from_config(system, &code);
    let Some(spec) = spec else {
        return (false, false, false, false, false, 0.0, 0.0, 0, 0);
    };
    let tasks = spec.tasks.len();
    let valid = report.is_valid();
    let structurally_valid = !spec.validate().iter().any(|d| d.is_error());
    if !(valid && structurally_valid) {
        let runnability = if valid { 40.0 } else { 20.0 };
        return (true, valid, false, false, false, runnability, 0.0, tasks, 0);
    }
    let spec = spec.normalized();
    if tasks > sandbox.max_tasks || spec.total_procs() > sandbox.max_total_procs {
        return (true, true, true, false, false, 60.0, 0.0, tasks, 0);
    }
    match Engine::new(sandbox.engine_config()).run(&spec) {
        Ok(outcome) => {
            let summary = outcome.summary();
            (
                true,
                true,
                true,
                true,
                outcome.completed,
                if outcome.completed { 100.0 } else { 80.0 },
                100.0 * summary.fidelity(reference),
                tasks,
                summary.total_published() + summary.total_received(),
            )
        }
        Err(_) => (true, true, true, false, false, 60.0, 0.0, tasks, 0),
    }
}

#[test]
fn grid_execution_matches_direct_stage_composition() {
    let config = BenchmarkConfig {
        trials: 2,
        ..BenchmarkConfig::default()
    };
    let benchmark = Benchmark::with_simulated_models(config.clone());
    let grid = benchmark.run_execution(PromptVariant::Original);
    let sandbox = SandboxConfig::default();

    for system in WorkflowSystemId::execution_systems() {
        let reference_text = execution_reference(system);
        let (reference_spec, report) = workflow_spec_from_config(system, reference_text);
        assert!(report.is_valid(), "{system} reference must be executable");
        let reference = Engine::new(sandbox.engine_config())
            .run(&reference_spec.unwrap().normalized())
            .unwrap()
            .summary();
        let prompt = execution_prompt(system, PromptVariant::Original);
        for client in SimulatedLlm::all() {
            let cell = grid
                .cell(system.name(), client.model().name())
                .unwrap_or_else(|| panic!("cell {system}/{}", client.model().name()));
            assert_eq!(cell.trials.len(), config.trials);
            for (score, seed) in cell.trials.iter().zip(config.trial_seeds()) {
                let params = SamplingParams {
                    temperature: config.temperature,
                    top_p: config.top_p,
                    seed,
                };
                let response = client.complete(&CompletionRequest::new(prompt.clone(), params));
                let (
                    parsed,
                    valid,
                    validated,
                    ran,
                    completed,
                    runnability,
                    fidelity,
                    tasks,
                    messages,
                ) = direct_execute(&sandbox, system, &reference, &response.text);
                let context = format!("{system}/{}", client.model().name());
                assert_eq!(
                    (
                        score.parsed,
                        score.valid,
                        score.validated,
                        score.ran,
                        score.completed
                    ),
                    (parsed, valid, validated, ran, completed),
                    "{context} stages"
                );
                assert_eq!(
                    score.runnability.to_bits(),
                    runnability.to_bits(),
                    "{context} runnability"
                );
                assert_eq!(
                    score.trace_fidelity.to_bits(),
                    fidelity.to_bits(),
                    "{context} fidelity"
                );
                assert_eq!(score.tasks, tasks, "{context} tasks");
                assert_eq!(
                    score.published + score.received,
                    messages,
                    "{context} messages"
                );
            }
        }
    }
}

#[test]
fn reference_artifacts_top_the_execution_scale_end_to_end() {
    // The scale is anchored: feeding the ground-truth artifact through the
    // whole umbrella-crate surface scores a perfect run for every system.
    let pipeline = wfspeak::core::ExecutionPipeline::new();
    for system in WorkflowSystemId::execution_systems() {
        let reference = execution_reference(system);
        let score = pipeline.execute(system, reference, reference).unwrap();
        assert_eq!(score.runnability, 100.0, "{system}");
        assert_eq!(score.trace_fidelity, 100.0, "{system}");
    }
}
