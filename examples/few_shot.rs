//! Few-shot prompting study (Table 5): compare zero-shot and few-shot
//! workflow-configuration quality for every model.
//!
//! Run with: `cargo run --example few_shot`

use wfspeak_core::{Benchmark, BenchmarkConfig};

fn main() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig::default());
    println!("Running zero-shot vs few-shot workflow configuration (Table 5)...\n");

    let comparison = benchmark.run_few_shot_comparison();
    println!("{}", comparison.render_table());

    if comparison.few_shot_improves_all_models() {
        println!("Few-shot prompting improves configuration quality for every evaluated model.");
    } else {
        println!("Warning: few-shot prompting did not improve every model in this run.");
    }
}
