//! Quickstart: ask every model for a Wilkins workflow configuration, score
//! the answers against the reference, and print the resulting table row.
//!
//! Run with: `cargo run --example quickstart`

use wfspeak_core::{Benchmark, BenchmarkConfig, PromptVariant};
use wfspeak_metrics::Metric;

fn main() {
    // Two trials keep the example fast; the paper uses five.
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 2,
        ..BenchmarkConfig::default()
    });

    println!("Running the workflow-configuration experiment (zero-shot, original prompt)...\n");
    let result = benchmark.run_configuration(PromptVariant::Original, false);

    println!(
        "{}",
        result.render_table("Workflow configuration (Table 1 layout)")
    );

    println!(
        "Best model overall: {}",
        result.best_model().unwrap_or_else(|| "n/a".into())
    );
    println!(
        "Best-handled workflow system: {}",
        result.best_row().unwrap_or_else(|| "n/a".into())
    );
    println!(
        "\nWilkins BLEU for o3: {}",
        result.cell(Metric::Bleu, "Wilkins", "o3").paper_format()
    );
}
