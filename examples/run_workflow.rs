//! Behavioural check beyond the paper: actually execute the 3-node workflow
//! described by the reference Wilkins configuration on the in situ runtime,
//! then show that a hallucinated (zero-shot style) configuration refuses to
//! run.
//!
//! Run with: `cargo run --example run_workflow`

use wfspeak_corpus::references::configs::WILKINS_3NODE;
use wfspeak_runtime::{Engine, EngineConfig};

fn main() {
    let engine = Engine::new(EngineConfig::default());

    println!("Executing the reference 3-node Wilkins workflow on the in situ runtime...\n");
    let outcome = engine
        .run_wilkins_config(WILKINS_3NODE)
        .expect("reference configuration must be valid");

    println!("completed: {}", outcome.completed);
    println!("timesteps: {}", outcome.timesteps);
    println!(
        "messages received by consumers: {}",
        outcome.total_received()
    );
    for (task, sums) in &outcome.consumer_sums {
        println!("  {task}: per-step dataset sums {sums:?}");
    }
    println!("\nexecution trace:\n{}", outcome.trace.render());

    // A configuration with hallucinated fields (the zero-shot o3 style of
    // Table 6, right) is rejected before execution.
    let hallucinated = "workflow:\n  tasks:\n    - func: producer\n      command: ./producer\n      processes: 3\n";
    match engine.run_wilkins_config(hallucinated) {
        Ok(_) => println!("unexpected: hallucinated configuration ran"),
        Err(err) => println!("hallucinated configuration rejected as expected:\n{err}"),
    }
}
