//! Prompt-sensitivity study (Figure 1): run every experiment under the five
//! prompt variants and print the BLEU heatmaps.
//!
//! Run with: `cargo run --example prompt_sensitivity` (this is the largest
//! example; it runs 3 experiments x 5 variants x 4 models x 5 trials).

use wfspeak_core::{Benchmark, BenchmarkConfig, ExperimentKind};

fn main() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig::default());
    println!("Running the prompt-sensitivity sweep (Figure 1)...\n");
    let sensitivity = benchmark.run_prompt_sensitivity();

    for kind in ExperimentKind::ALL {
        for row in kind.row_labels() {
            println!("{}", sensitivity.render_heatmap(kind, &row));
        }
    }

    // The paper's observation: no prompt variant wins for every model.
    for kind in ExperimentKind::ALL {
        for row in kind.row_labels() {
            let best = sensitivity.best_variant_per_model(kind, &row);
            println!(
                "Best prompt per model for {} / {row}: {best:?}",
                kind.name()
            );
        }
    }
}
