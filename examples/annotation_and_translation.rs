//! Task-code annotation (Table 2) and translation (Table 3) experiments,
//! plus the qualitative Table 4 translation comparison.
//!
//! Run with: `cargo run --example annotation_and_translation`

use wfspeak_core::report::{qualitative_translations, render_samples};
use wfspeak_core::{Benchmark, BenchmarkConfig, PromptVariant};

fn main() {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig::default());

    let annotation = benchmark.run_annotation(PromptVariant::Original);
    println!(
        "{}",
        annotation.render_table("Table 2: task code annotation, code-similarity scores")
    );
    println!(
        "Best model for annotation: {}\n",
        annotation.best_model().unwrap_or_default()
    );

    let translation = benchmark.run_translation(PromptVariant::Original);
    println!(
        "{}",
        translation.render_table("Table 3: task code translation, code-similarity scores")
    );

    println!();
    let samples = qualitative_translations(benchmark.config().base_seed);
    println!(
        "{}",
        render_samples(
            "Table 4: ADIOS2 -> Henson translations (LLaMA-3.3-70B vs Gemini-2.5-Pro)",
            &samples
        )
    );
}
