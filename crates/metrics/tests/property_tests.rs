//! Property-based tests over the metric implementations.

use proptest::prelude::*;
use wfspeak_metrics::bleu::{BleuScorer, Smoothing};
use wfspeak_metrics::chrf::ChrfScorer;
use wfspeak_metrics::ngram::NgramCounts;
use wfspeak_metrics::stats::Summary;
use wfspeak_metrics::Scorer;

/// Strategy producing code-like text (identifiers, punctuation, newlines).
fn code_text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z_]{1,8}|\\(|\\)|:|,|\n| ", 1..60).prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn bleu_in_range(hyp in code_text(), rf in code_text()) {
        let s = BleuScorer::default().score(&hyp, &rf);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&s));
    }

    #[test]
    fn chrf_in_range(hyp in code_text(), rf in code_text()) {
        let s = ChrfScorer::default().score(&hyp, &rf);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&s));
    }

    #[test]
    fn identity_is_perfect(text in code_text()) {
        prop_assume!(!text.trim().is_empty());
        let bleu = BleuScorer::default().score(&text, &text);
        let chrf = ChrfScorer::default().score(&text, &text);
        prop_assert!((bleu - 100.0).abs() < 1e-6, "bleu {bleu}");
        prop_assert!((chrf - 100.0).abs() < 1e-6, "chrf {chrf}");
    }

    #[test]
    fn bleu_smoothing_never_decreases_below_unsmoothed(hyp in code_text(), rf in code_text()) {
        let plain = BleuScorer { smoothing: Smoothing::None, ..BleuScorer::default() }.score(&hyp, &rf);
        let smoothed = BleuScorer::default().score(&hyp, &rf);
        prop_assert!(smoothed + 1e-9 >= plain);
    }

    #[test]
    fn chrf_symmetric_in_f1_when_beta_one_and_equal_lengths(
        (a, b) in (6usize..20).prop_flat_map(|n| (
            proptest::collection::vec(proptest::char::range('a', 'z'), n).prop_map(|v| v.into_iter().collect::<String>()),
            proptest::collection::vec(proptest::char::range('a', 'z'), n).prop_map(|v| v.into_iter().collect::<String>()),
        ))
    ) {
        let s = ChrfScorer::with_beta(1.0);
        let ab = s.score(&a, &b);
        let ba = s.score(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn ngram_total_matches_window_count(items in proptest::collection::vec(0u8..5, 0..30), n in 1usize..5) {
        let counts = NgramCounts::from_items(&items, n);
        let expected = if items.len() >= n { items.len() - n + 1 } else { 0 };
        prop_assert_eq!(counts.total(), expected);
    }

    #[test]
    fn clipped_overlap_bounded_by_both_totals(
        a in proptest::collection::vec(0u8..4, 0..25),
        b in proptest::collection::vec(0u8..4, 0..25),
        n in 1usize..4,
    ) {
        let ca = NgramCounts::from_items(&a, n);
        let cb = NgramCounts::from_items(&b, n);
        let overlap = ca.clipped_overlap(&cb);
        prop_assert!(overlap <= ca.total());
        prop_assert!(overlap <= cb.total());
    }

    #[test]
    fn summary_mean_within_min_max(samples in proptest::collection::vec(0.0f64..100.0, 1..20)) {
        let s = Summary::from_samples(&samples);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_err >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }

    #[test]
    fn appending_reference_tail_does_not_hurt_chrf_recall(
        reference in "[a-z]{10,30}",
        extra in "[a-z]{1,10}",
    ) {
        // A hypothesis equal to the reference always beats (or ties) a
        // hypothesis that is a strict prefix of it.
        let s = ChrfScorer::default();
        let full = s.score(&reference, &reference);
        let prefix = &reference[..reference.len() / 2];
        let partial = s.score(prefix, &reference);
        prop_assert!(full + 1e-9 >= partial);
        // And unrelated extra content never raises the score above identity.
        let noisy = format!("{reference}{extra}");
        prop_assert!(s.score(&noisy, &reference) <= full + 1e-9);
    }
}
