//! Property-based tests over the metric implementations.

use proptest::prelude::*;
use wfspeak_metrics::bleu::{BleuScorer, Smoothing};
use wfspeak_metrics::chrf::ChrfScorer;
use wfspeak_metrics::ngram::NgramCounts;
use wfspeak_metrics::stats::Summary;
use wfspeak_metrics::Scorer;

/// Strategy producing code-like text (identifiers, punctuation, newlines).
fn code_text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z_]{1,8}|\\(|\\)|:|,|\n| ", 1..60)
        .prop_map(|parts| parts.concat())
}

/// Strategy producing text over a *large* alphabet — hundreds of distinct
/// single-char tokens (well beyond a 6-bit alphabet) plus multi-byte and
/// non-BMP Unicode — to stress the interner and the packed key layout.
fn wide_alphabet_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            // ASCII letters/digits/punctuation.
            "[ -~]{1,6}",
            // Latin-1 and Greek (2-byte UTF-8).
            proptest::collection::vec(proptest::char::range('À', 'ω'), 1..5)
                .prop_map(|v| v.into_iter().collect::<String>()),
            // CJK (3-byte UTF-8).
            proptest::collection::vec(proptest::char::range('一', '龥'), 1..4)
                .prop_map(|v| v.into_iter().collect::<String>()),
            // Emoji / non-BMP (4-byte UTF-8, exercises the 21-bit char pack).
            proptest::collection::vec(proptest::char::range('😀', '😏'), 1..3)
                .prop_map(|v| v.into_iter().collect::<String>()),
            Just(" ".to_string()),
            Just("\n".to_string()),
        ],
        0..40,
    )
    .prop_map(|parts| parts.concat())
}

/// The packed fast path (the default `score`) must be bit-identical to the
/// naive seed implementation on the same inputs.
fn assert_paths_identical(hyp: &str, rf: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    let bleu = BleuScorer::default();
    let chrf = ChrfScorer::default();
    let bleu_fast = bleu.score(hyp, rf);
    let bleu_naive = bleu.breakdown_naive(hyp, rf).score;
    prop_assert_eq!(
        bleu_fast.to_bits(),
        bleu_naive.to_bits(),
        "BLEU fast {} != naive {} on {:?} vs {:?}",
        bleu_fast,
        bleu_naive,
        hyp,
        rf
    );
    let chrf_fast = chrf.score(hyp, rf);
    let chrf_naive = chrf.breakdown_naive(hyp, rf).score;
    prop_assert_eq!(
        chrf_fast.to_bits(),
        chrf_naive.to_bits(),
        "ChrF fast {} != naive {} on {:?} vs {:?}",
        chrf_fast,
        chrf_naive,
        hyp,
        rf
    );
    // A reference prepared once must reproduce the string-pair API bit for
    // bit as well.
    let prepared_bleu = Scorer::prepare(&bleu, rf);
    let prepared_chrf = Scorer::prepare(&chrf, rf);
    prop_assert_eq!(
        bleu.score_prepared(hyp, &prepared_bleu).to_bits(),
        bleu_fast.to_bits()
    );
    prop_assert_eq!(
        chrf.score_prepared(hyp, &prepared_chrf).to_bits(),
        chrf_fast.to_bits()
    );
    Ok(())
}

proptest! {
    #[test]
    fn packed_fast_path_is_bit_identical_on_code_text(hyp in code_text(), rf in code_text()) {
        assert_paths_identical(&hyp, &rf)?;
    }

    #[test]
    fn packed_fast_path_is_bit_identical_on_wide_alphabets(
        hyp in wide_alphabet_text(),
        rf in wide_alphabet_text(),
    ) {
        assert_paths_identical(&hyp, &rf)?;
    }

    #[test]
    fn packed_fast_path_is_bit_identical_with_custom_orders(
        hyp in code_text(),
        rf in code_text(),
        max_order in 1usize..5,
    ) {
        let bleu = BleuScorer::with_max_order(max_order);
        prop_assert_eq!(
            bleu.score(&hyp, &rf).to_bits(),
            bleu.breakdown_naive(&hyp, &rf).score.to_bits()
        );
        let whitespace = BleuScorer { tokenize: false, ..BleuScorer::default() };
        prop_assert_eq!(
            whitespace.score(&hyp, &rf).to_bits(),
            whitespace.breakdown_naive(&hyp, &rf).score.to_bits()
        );
        let chrf = ChrfScorer { max_order, ..ChrfScorer::default() };
        prop_assert_eq!(
            chrf.score(&hyp, &rf).to_bits(),
            chrf.breakdown_naive(&hyp, &rf).score.to_bits()
        );
    }

    #[test]
    fn prepared_reference_is_reusable_across_hypotheses(
        hyps in proptest::collection::vec(code_text(), 1..6),
        rf in code_text(),
    ) {
        let bleu = BleuScorer::default();
        let prepared = Scorer::prepare(&bleu, &rf);
        for hyp in &hyps {
            prop_assert_eq!(
                bleu.score_prepared(hyp, &prepared).to_bits(),
                bleu.score(hyp, &rf).to_bits()
            );
        }
    }

    #[test]
    fn bleu_in_range(hyp in code_text(), rf in code_text()) {
        let s = BleuScorer::default().score(&hyp, &rf);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&s));
    }

    #[test]
    fn chrf_in_range(hyp in code_text(), rf in code_text()) {
        let s = ChrfScorer::default().score(&hyp, &rf);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&s));
    }

    #[test]
    fn identity_is_perfect(text in code_text()) {
        prop_assume!(!text.trim().is_empty());
        let bleu = BleuScorer::default().score(&text, &text);
        let chrf = ChrfScorer::default().score(&text, &text);
        prop_assert!((bleu - 100.0).abs() < 1e-6, "bleu {bleu}");
        prop_assert!((chrf - 100.0).abs() < 1e-6, "chrf {chrf}");
    }

    #[test]
    fn bleu_smoothing_never_decreases_below_unsmoothed(hyp in code_text(), rf in code_text()) {
        let plain = BleuScorer { smoothing: Smoothing::None, ..BleuScorer::default() }.score(&hyp, &rf);
        let smoothed = BleuScorer::default().score(&hyp, &rf);
        prop_assert!(smoothed + 1e-9 >= plain);
    }

    #[test]
    fn chrf_symmetric_in_f1_when_beta_one_and_equal_lengths(
        (a, b) in (6usize..20).prop_flat_map(|n| (
            proptest::collection::vec(proptest::char::range('a', 'z'), n).prop_map(|v| v.into_iter().collect::<String>()),
            proptest::collection::vec(proptest::char::range('a', 'z'), n).prop_map(|v| v.into_iter().collect::<String>()),
        ))
    ) {
        let s = ChrfScorer::with_beta(1.0);
        let ab = s.score(&a, &b);
        let ba = s.score(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn ngram_total_matches_window_count(items in proptest::collection::vec(0u8..5, 0..30), n in 1usize..5) {
        let counts = NgramCounts::from_items(&items, n);
        let expected = if items.len() >= n { items.len() - n + 1 } else { 0 };
        prop_assert_eq!(counts.total(), expected);
    }

    #[test]
    fn clipped_overlap_bounded_by_both_totals(
        a in proptest::collection::vec(0u8..4, 0..25),
        b in proptest::collection::vec(0u8..4, 0..25),
        n in 1usize..4,
    ) {
        let ca = NgramCounts::from_items(&a, n);
        let cb = NgramCounts::from_items(&b, n);
        let overlap = ca.clipped_overlap(&cb);
        prop_assert!(overlap <= ca.total());
        prop_assert!(overlap <= cb.total());
    }

    #[test]
    fn summary_mean_within_min_max(samples in proptest::collection::vec(0.0f64..100.0, 1..20)) {
        let s = Summary::from_samples(&samples);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_err >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }

    #[test]
    fn appending_reference_tail_does_not_hurt_chrf_recall(
        reference in "[a-z]{10,30}",
        extra in "[a-z]{1,10}",
    ) {
        // A hypothesis equal to the reference always beats (or ties) a
        // hypothesis that is a strict prefix of it.
        let s = ChrfScorer::default();
        let full = s.score(&reference, &reference);
        let prefix = &reference[..reference.len() / 2];
        let partial = s.score(prefix, &reference);
        prop_assert!(full + 1e-9 >= partial);
        // And unrelated extra content never raises the score above identity.
        let noisy = format!("{reference}{extra}");
        prop_assert!(s.score(&noisy, &reference) <= full + 1e-9);
    }
}
