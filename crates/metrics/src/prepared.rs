//! Prepared references: tokenize and count a reference once, score many
//! hypotheses against it.
//!
//! The benchmark grid scores every `(model, trial)` hypothesis against a
//! small, fixed set of ground-truth references, so re-tokenising and
//! re-counting the reference for every cell is pure waste. A
//! [`PreparedReference`] front-loads that work:
//!
//! * **BLEU** — the reference is normalised, tokenised into zero-copy spans,
//!   every token is interned to a dense `u32` id, and word n-grams
//!   (n ≤ 4) are packed 16 bits/token into `u64` keys counted in FxHash
//!   maps ([`PackedCounts`]).
//! * **ChrF** — whitespace-stripped chars are packed 21 bits/char into
//!   `u128` keys (n ≤ 6) and counted the same way.
//!
//! Hypotheses are tokenised against the reference's interner with a local
//! overlay for out-of-vocabulary tokens, so scoring allocates no per-window
//! keys and hashes only integers. Inputs the packed representation cannot
//! hold (≥ 2¹⁶ distinct tokens, or orders beyond the packed width) fall back
//! to the naive [`NgramCounts`](crate::ngram::NgramCounts) path, which is
//! bit-identical by construction and property-tested to stay that way.

use crate::ngram::{FxHashMap, OverlapStats, PackedCounts};
use crate::tokenize::{chrf_chars, normalize, tokenize_13a_spans};

/// Bits per interned word id in packed BLEU keys (4 × 16 = 64).
pub(crate) const WORD_BITS: u32 = 16;
/// Bits per char in packed ChrF keys (6 × 21 = 126 ≤ 128; 21 bits cover all
/// of Unicode's 0x10FFFF scalar values).
pub(crate) const CHAR_BITS: u32 = 21;
/// Maximum BLEU order the packed `u64` representation can hold.
pub(crate) const MAX_PACKED_WORD_ORDER: usize = (u64::BITS / WORD_BITS) as usize;
/// Maximum ChrF order the packed `u128` representation can hold.
pub(crate) const MAX_PACKED_CHAR_ORDER: usize = (u128::BITS / CHAR_BITS) as usize;

/// Interns token strings to dense `u32` ids.
///
/// The id space doubles as the packed-key unit: ids stay below 2¹⁶ or the
/// caller falls back to the naive path, so four ids always fit a `u64`.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    ids: FxHashMap<String, u32>,
}

impl Interner {
    /// Intern `token`, returning its id (allocating the owned key only for
    /// tokens seen for the first time).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(token.to_owned(), id);
        id
    }

    /// Look up a token without interning it.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// Number of interned tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Resolve hypothesis tokens against a reference interner, assigning fresh
/// ids from an overlay for out-of-vocabulary tokens. OOV tokens can never
/// match a reference n-gram, but they must still count towards hypothesis
/// totals and match *each other*, so they need consistent ids. Returns
/// `None` when the combined id space no longer fits the packed width.
pub(crate) fn resolve_hypothesis_ids<'a>(
    spans: impl Iterator<Item = &'a str>,
    reference: &Interner,
) -> Option<Vec<u32>> {
    let mut overlay: FxHashMap<&'a str, u32> = FxHashMap::default();
    let mut ids = Vec::new();
    for span in spans {
        let id = match reference.get(span) {
            Some(id) => id,
            None => {
                let next = reference.len() as u32 + overlay.len() as u32;
                *overlay.entry(span).or_insert(next)
            }
        };
        ids.push(id);
    }
    let vocab = reference.len() + overlay.len();
    if vocab >= (1usize << WORD_BITS) {
        return None;
    }
    Some(ids)
}

/// A reference prepared for repeated BLEU scoring.
#[derive(Debug, Clone)]
pub struct PreparedBleu {
    /// Whether the 13a tokenizer was applied (must match the scorer).
    pub(crate) tokenize: bool,
    /// Highest n-gram order counted (must cover the scorer's).
    pub(crate) max_order: usize,
    /// Token → id for the reference vocabulary.
    pub(crate) interner: Interner,
    /// Packed per-order n-gram counts; `None` when the reference alone
    /// overflows the packed id space (then scoring falls back to naive).
    pub(crate) counts: Option<PackedCounts<u64>>,
    /// Reference length in tokens.
    pub(crate) len: usize,
}

impl PreparedBleu {
    /// Tokenize, intern and count `reference` once.
    pub(crate) fn new(reference: &str, tokenize: bool, max_order: usize) -> Self {
        let normalized = normalize(reference);
        let mut interner = Interner::default();
        let ids: Vec<u32> = if tokenize {
            tokenize_13a_spans(&normalized)
                .into_iter()
                .map(|span| interner.intern(span))
                .collect()
        } else {
            // Whitespace tokens borrow from the normalized text just the same.
            normalized
                .split_whitespace()
                .map(|span| interner.intern(span))
                .collect()
        };
        let packable = interner.len() < (1usize << WORD_BITS) && max_order <= MAX_PACKED_WORD_ORDER;
        let counts = packable.then(|| {
            PackedCounts::from_units(ids.iter().map(|&id| id as u64), WORD_BITS, max_order)
        });
        PreparedBleu {
            tokenize,
            max_order,
            interner,
            counts,
            len: ids.len(),
        }
    }

    /// Per-order overlap statistics of a hypothesis against this reference,
    /// or `None` when the pair needs the naive fallback.
    pub(crate) fn overlap_stats(&self, hypothesis: &str) -> Option<(Vec<OverlapStats>, usize)> {
        let ref_counts = self.counts.as_ref()?;
        let normalized = normalize(hypothesis);
        let ids = if self.tokenize {
            resolve_hypothesis_ids(tokenize_13a_spans(&normalized).into_iter(), &self.interner)?
        } else {
            resolve_hypothesis_ids(normalized.split_whitespace(), &self.interner)?
        };
        let hyp_counts = PackedCounts::<u64>::from_units(
            ids.iter().map(|&id| id as u64),
            WORD_BITS,
            self.max_order,
        );
        let stats = (1..=self.max_order)
            .map(|n| hyp_counts.overlap_stats(ref_counts, n))
            .collect();
        Some((stats, ids.len()))
    }
}

/// A reference prepared for repeated ChrF scoring.
#[derive(Debug, Clone)]
pub struct PreparedChrf {
    /// Highest char n-gram order counted.
    pub(crate) max_order: usize,
    /// Packed per-order char n-gram counts; `None` when `max_order` exceeds
    /// the packed width.
    pub(crate) counts: Option<PackedCounts<u128>>,
}

impl PreparedChrf {
    /// Strip whitespace and count char n-grams of `reference` once.
    pub(crate) fn new(reference: &str, max_order: usize) -> Self {
        let chars = chrf_chars(&normalize(reference));
        let counts = (max_order <= MAX_PACKED_CHAR_ORDER).then(|| {
            PackedCounts::from_units(chars.iter().map(|&c| c as u64), CHAR_BITS, max_order)
        });
        PreparedChrf { max_order, counts }
    }

    /// Per-order overlap statistics of a hypothesis against this reference,
    /// or `None` when the pair needs the naive fallback. Also reports the
    /// hypothesis/reference char counts for the empty-input special cases.
    pub(crate) fn overlap_stats(
        &self,
        hypothesis: &str,
    ) -> Option<(Vec<OverlapStats>, usize, usize)> {
        let ref_counts = self.counts.as_ref()?;
        let chars = chrf_chars(&normalize(hypothesis));
        let hyp_counts = PackedCounts::<u128>::from_units(
            chars.iter().map(|&c| c as u64),
            CHAR_BITS,
            self.max_order,
        );
        let stats = (1..=self.max_order)
            .map(|n| hyp_counts.overlap_stats(ref_counts, n))
            .collect();
        Some((stats, chars.len(), ref_counts.len()))
    }
}

/// The scorer-specific payload of a [`PreparedReference`].
#[derive(Debug, Clone)]
pub(crate) enum PreparedPayload {
    /// No precomputation: the default for scorers without a fast path.
    Raw,
    /// BLEU interning + packed counts.
    Bleu(PreparedBleu),
    /// ChrF packed counts.
    Chrf(PreparedChrf),
}

/// A reference processed once for repeated scoring against many hypotheses.
///
/// Build one with [`Scorer::prepare`](crate::Scorer::prepare) and score with
/// [`Scorer::score_prepared`](crate::Scorer::score_prepared). The original
/// reference text is retained, so a prepared reference built by one scorer
/// configuration can always be scored — at worst at string-pair speed — by
/// another.
#[derive(Debug, Clone)]
pub struct PreparedReference {
    pub(crate) source: String,
    pub(crate) payload: PreparedPayload,
}

impl PreparedReference {
    /// Wrap a reference with no scorer-specific precomputation.
    pub fn raw(reference: &str) -> Self {
        PreparedReference {
            source: reference.to_owned(),
            payload: PreparedPayload::Raw,
        }
    }

    /// The original reference text.
    pub fn source(&self) -> &str {
        &self.source
    }
}

/// Hit/miss counters for a cache of [`PreparedReference`]s.
///
/// Preparing a reference (normalising, tokenising, interning and counting
/// its n-grams) is the expensive half of a scoring call, so every component
/// that reuses prepared references — the benchmark runner's reference cache,
/// the scoring service's shared cache — reports its effectiveness with this
/// type. A *hit* means a scoring call reused an already-prepared reference;
/// a *miss* means the reference had to be prepared first.
///
/// ```
/// use wfspeak_metrics::CacheStats;
///
/// let stats = CacheStats { hits: 9, misses: 1 };
/// assert_eq!(stats.lookups(), 10);
/// assert!((stats.hit_rate() - 0.9).abs() < 1e-12);
/// assert_eq!(CacheStats::default().hit_rate(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that reused an already-prepared reference.
    pub hits: u64,
    /// Lookups that had to prepare the reference first.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups observed (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache, in `0.0..=1.0`.
    /// Returns `0.0` when no lookups have happened yet.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_dense_ids() {
        let mut interner = Interner::default();
        let a = interner.intern("alpha");
        let b = interner.intern("beta");
        let a2 = interner.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get("beta"), Some(b));
        assert_eq!(interner.get("gamma"), None);
    }

    #[test]
    fn hypothesis_overlay_ids_are_consistent_and_disjoint() {
        let mut interner = Interner::default();
        interner.intern("known");
        let ids = resolve_hypothesis_ids(["known", "new", "new", "other"].into_iter(), &interner)
            .unwrap();
        assert_eq!(ids[0], 0);
        assert_eq!(ids[1], ids[2]);
        assert!(ids[1] >= 1);
        assert_ne!(ids[1], ids[3]);
    }

    #[test]
    fn prepared_bleu_counts_reference_once() {
        let prepared = PreparedBleu::new("the cat sat on the mat", true, 4);
        assert_eq!(prepared.len, 6);
        assert_eq!(prepared.interner.len(), 5); // "the" repeats
        let counts = prepared.counts.as_ref().unwrap();
        assert_eq!(counts.total(1), 6);
        assert_eq!(counts.total(4), 3);
    }

    #[test]
    fn prepared_chrf_handles_unicode() {
        let prepared = PreparedChrf::new("añ😀b", 6);
        let counts = prepared.counts.as_ref().unwrap();
        assert_eq!(counts.total(1), 4);
        assert_eq!(counts.total(4), 1);
    }

    #[test]
    fn prepared_reference_keeps_source() {
        let p = PreparedReference::raw("reference text");
        assert_eq!(p.source(), "reference text");
    }
}
