//! ChrF: character n-gram F-score (Popović 2015), as implemented by
//! sacrebleu and used by the paper.
//!
//! For every n-gram order n = 1..=6 a precision and recall over character
//! n-grams (whitespace removed) is computed; the per-order F-β scores
//! (β = 2, weighting recall twice as much as precision) are averaged
//! uniformly and reported on the 0–100 scale.

use crate::ngram::OverlapStats;
use crate::prepared::{PreparedChrf, PreparedPayload, PreparedReference};
use crate::tokenize::{chrf_chars, normalize};
use crate::Scorer;

/// Configurable ChrF scorer.
#[derive(Debug, Clone)]
pub struct ChrfScorer {
    /// Maximum character n-gram order (sacrebleu default: 6).
    pub max_order: usize,
    /// β of the F-β score (sacrebleu default: 2 — recall-weighted).
    pub beta: f64,
    /// If true, orders with an empty reference and hypothesis n-gram set are
    /// excluded from the average instead of contributing 0 (sacrebleu
    /// behaviour for short segments).
    pub skip_empty_orders: bool,
}

impl Default for ChrfScorer {
    fn default() -> Self {
        ChrfScorer {
            max_order: 6,
            beta: 2.0,
            skip_empty_orders: true,
        }
    }
}

/// Detailed result of a ChrF computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChrfBreakdown {
    /// Final score on the 0–100 scale.
    pub score: f64,
    /// Per-order F-β scores (index 0 = unigrams).
    pub f_scores: Vec<f64>,
    /// Overall character precision averaged across orders.
    pub precision: f64,
    /// Overall character recall averaged across orders.
    pub recall: f64,
}

impl ChrfScorer {
    /// Create a scorer with a custom β.
    pub fn with_beta(beta: f64) -> Self {
        ChrfScorer {
            beta,
            ..ChrfScorer::default()
        }
    }

    /// Compute ChrF with per-order detail.
    ///
    /// Thin wrapper over the prepared-reference fast path (see
    /// [`Scorer::prepare`]); [`ChrfScorer::breakdown_naive`] is the
    /// bit-identical reference implementation.
    pub fn breakdown(&self, hypothesis: &str, reference: &str) -> ChrfBreakdown {
        self.breakdown_prepared(hypothesis, &Scorer::prepare(self, reference))
    }

    /// Compute ChrF against an already-prepared reference, falling back to
    /// re-preparing from the retained source text when the payload was built
    /// by an incompatible configuration.
    pub fn breakdown_prepared(
        &self,
        hypothesis: &str,
        reference: &PreparedReference,
    ) -> ChrfBreakdown {
        if let PreparedPayload::Chrf(prepared) = &reference.payload {
            if prepared.max_order == self.max_order {
                if let Some((stats, hyp_chars, ref_chars)) = prepared.overlap_stats(hypothesis) {
                    return self.breakdown_from_stats(&stats, hyp_chars, ref_chars);
                }
                return self.breakdown_naive(hypothesis, reference.source());
            }
        }
        self.breakdown(hypothesis, reference.source())
    }

    /// The seed implementation: collect chars and count n-grams with
    /// `Vec<char>`-keyed maps per order. Kept as the differential-testing
    /// baseline for the packed fast path.
    pub fn breakdown_naive(&self, hypothesis: &str, reference: &str) -> ChrfBreakdown {
        let hyp = chrf_chars(&normalize(hypothesis));
        let rf = chrf_chars(&normalize(reference));
        let stats: Vec<OverlapStats> = (1..=self.max_order)
            .map(|n| OverlapStats::compute(&hyp, &rf, n))
            .collect();
        self.breakdown_from_stats(&stats, hyp.len(), rf.len())
    }

    /// Shared scoring tail over per-order overlap statistics; both paths
    /// arrive here with identical integers, making them bit-identical.
    fn breakdown_from_stats(
        &self,
        stats: &[OverlapStats],
        hyp_chars: usize,
        ref_chars: usize,
    ) -> ChrfBreakdown {
        if hyp_chars == 0 || ref_chars == 0 {
            let score = if hyp_chars == 0 && ref_chars == 0 {
                100.0
            } else {
                0.0
            };
            return ChrfBreakdown {
                score,
                f_scores: vec![score / 100.0; self.max_order],
                precision: score / 100.0,
                recall: score / 100.0,
            };
        }

        let mut f_scores = Vec::with_capacity(self.max_order);
        let mut precisions = Vec::with_capacity(self.max_order);
        let mut recalls = Vec::with_capacity(self.max_order);
        for stats in stats.iter().take(self.max_order) {
            if self.skip_empty_orders && stats.hyp_total == 0 && stats.ref_total == 0 {
                continue;
            }
            precisions.push(stats.precision());
            recalls.push(stats.recall());
            f_scores.push(stats.f_beta(self.beta));
        }

        if f_scores.is_empty() {
            return ChrfBreakdown {
                score: 0.0,
                f_scores,
                precision: 0.0,
                recall: 0.0,
            };
        }

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        ChrfBreakdown {
            score: mean(&f_scores) * 100.0,
            precision: mean(&precisions),
            recall: mean(&recalls),
            f_scores,
        }
    }
}

impl Scorer for ChrfScorer {
    fn name(&self) -> &'static str {
        "ChrF"
    }

    fn score(&self, hypothesis: &str, reference: &str) -> f64 {
        self.breakdown(hypothesis, reference).score
    }

    fn prepare(&self, reference: &str) -> PreparedReference {
        PreparedReference {
            source: reference.to_owned(),
            payload: PreparedPayload::Chrf(PreparedChrf::new(reference, self.max_order)),
        }
    }

    fn score_prepared(&self, hypothesis: &str, reference: &PreparedReference) -> f64 {
        self.breakdown_prepared(hypothesis, reference).score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_gives_100() {
        let s = ChrfScorer::default();
        let text = "tasks:\n  - func: producer\n    nprocs: 3";
        assert!((s.score(text, text) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn both_empty_gives_100_one_empty_gives_0() {
        let s = ChrfScorer::default();
        assert_eq!(s.score("", ""), 100.0);
        assert_eq!(s.score("abc", ""), 0.0);
        assert_eq!(s.score("", "abc"), 0.0);
    }

    #[test]
    fn disjoint_alphabets_give_0() {
        let s = ChrfScorer::default();
        assert_eq!(s.score("aaaa", "bbbb"), 0.0);
    }

    #[test]
    fn partial_overlap_between_0_and_100() {
        let s = ChrfScorer::default();
        let score = s.score("henson_save_int", "henson_load_int");
        assert!(score > 0.0 && score < 100.0, "got {score}");
    }

    #[test]
    fn whitespace_differences_ignored() {
        let s = ChrfScorer::default();
        let a = "func:  producer\n  nprocs: 3";
        let b = "func: producer nprocs: 3";
        assert!((s.score(a, b) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn recall_weighted_more_than_precision_with_beta_2() {
        let s = ChrfScorer::default();
        let reference = "abcdefghij";
        // Hypothesis covering all of reference plus noise (high recall, lower
        // precision) should beat a hypothesis covering only half of it
        // exactly (high precision, low recall).
        let noisy_superset = "abcdefghijXYZ";
        let exact_subset = "abcde";
        assert!(s.score(noisy_superset, reference) > s.score(exact_subset, reference));
    }

    #[test]
    fn known_value_single_char_overlap() {
        // hyp "ab", ref "ac": unigrams p=1/2, r=1/2, F2=0.5; bigrams p=0,r=0,F=0
        let s = ChrfScorer::default();
        let b = s.breakdown("ab", "ac");
        assert_eq!(b.f_scores.len(), 2); // orders 3..6 skipped (no n-grams on either side)
        assert!((b.f_scores[0] - 0.5).abs() < 1e-12);
        assert_eq!(b.f_scores[1], 0.0);
        assert!((b.score - 25.0).abs() < 1e-9);
    }

    #[test]
    fn chrf_more_tolerant_of_redundancy_than_bleu() {
        // The paper notes ChrF is more tolerant of redundant additions than
        // BLEU because of its character-level recall focus.
        use crate::bleu::BleuScorer;
        let reference = "@python_app\ndef producer(n):\n    return generate(n)";
        let redundant = "@python_app\ndef producer(n):\n    return generate(n)\n\nconfig = Config(executors=[HighThroughputExecutor()])\nparsl.load(config)";
        let chrf_drop = 100.0 - ChrfScorer::default().score(redundant, reference);
        let bleu_drop = 100.0 - BleuScorer::default().score(redundant, reference);
        assert!(
            chrf_drop < bleu_drop,
            "chrf drop {chrf_drop} should be smaller than bleu drop {bleu_drop}"
        );
    }

    #[test]
    fn breakdown_precision_recall_bounds() {
        let s = ChrfScorer::default();
        let b = s.breakdown("abcdef", "abcxyz");
        assert!(b.precision >= 0.0 && b.precision <= 1.0);
        assert!(b.recall >= 0.0 && b.recall <= 1.0);
    }

    #[test]
    fn custom_beta_one_balances_precision_and_recall() {
        let s = ChrfScorer::with_beta(1.0);
        assert!((s.beta - 1.0).abs() < f64::EPSILON);
        let score = s.score("abcd", "abcd");
        assert!((score - 100.0).abs() < 1e-9);
    }
}
