//! Score matrices backing the paper's tables and heatmaps.
//!
//! Each table in the paper is a grid of `(row = workflow system or system
//! pair, column = LLM)` cells holding a [`Summary`] per metric, plus an
//! "Overall" row and column. [`ScoreMatrix`] stores the per-trial samples so
//! the aggregation (and the pooled overall cells) can be recomputed exactly
//! as the paper reports them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::stats::{pool_summaries, Summary};

/// Separator used to build the internal `row<sep>col` cell key; unit
/// separator so it cannot collide with real labels.
const KEY_SEP: char = '\u{1f}';

fn cell_key(row: &str, col: &str) -> String {
    format!("{row}{KEY_SEP}{col}")
}

/// A labelled grid of repeated-trial score samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScoreMatrix {
    /// Row labels in insertion order (workflow systems / translation pairs).
    rows: Vec<String>,
    /// Column labels in insertion order (LLM names).
    cols: Vec<String>,
    /// Per-cell raw samples keyed by `row\u{1f}col`.
    cells: BTreeMap<String, Vec<f64>>,
}

impl ScoreMatrix {
    /// Create an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a matrix with pre-declared row and column order (ensures table
    /// rendering matches the paper even if some cells stay empty).
    pub fn with_labels<R, C>(rows: &[R], cols: &[C]) -> Self
    where
        R: AsRef<str>,
        C: AsRef<str>,
    {
        ScoreMatrix {
            rows: rows.iter().map(|r| r.as_ref().to_owned()).collect(),
            cols: cols.iter().map(|c| c.as_ref().to_owned()).collect(),
            cells: BTreeMap::new(),
        }
    }

    /// Record one trial's score for a `(row, col)` cell.
    pub fn push(&mut self, row: &str, col: &str, score: f64) {
        if !self.rows.iter().any(|r| r == row) {
            self.rows.push(row.to_owned());
        }
        if !self.cols.iter().any(|c| c == col) {
            self.cols.push(col.to_owned());
        }
        self.cells
            .entry(cell_key(row, col))
            .or_default()
            .push(score);
    }

    /// Row labels in display order.
    pub fn rows(&self) -> &[String] {
        &self.rows
    }

    /// Column labels in display order.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// Raw samples for a cell (empty slice if the cell has no data).
    pub fn samples(&self, row: &str, col: &str) -> &[f64] {
        self.cells
            .get(&cell_key(row, col))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Summary (mean ± std-err) of a cell.
    pub fn cell(&self, row: &str, col: &str) -> Summary {
        Summary::from_samples(self.samples(row, col))
    }

    /// "Overall" column value for a row: the paper pools each row over the
    /// model columns by averaging the per-model means.
    pub fn row_overall(&self, row: &str) -> Summary {
        let cells: Vec<Summary> = self
            .cols
            .iter()
            .map(|c| self.cell(row, c))
            .filter(|s| s.n > 0)
            .collect();
        pool_summaries(&cells)
    }

    /// "Overall" row value for a column: pooled over the system rows.
    pub fn col_overall(&self, col: &str) -> Summary {
        let cells: Vec<Summary> = self
            .rows
            .iter()
            .map(|r| self.cell(r, col))
            .filter(|s| s.n > 0)
            .collect();
        pool_summaries(&cells)
    }

    /// Grand overall: pooled over every populated cell.
    pub fn grand_overall(&self) -> Summary {
        let cells: Vec<Summary> = self
            .rows
            .iter()
            .flat_map(|r| self.cols.iter().map(move |c| self.cell(r, c)))
            .filter(|s| s.n > 0)
            .collect();
        pool_summaries(&cells)
    }

    /// The column label with the highest overall mean (the paper bolds this
    /// as the best-performing LLM); `None` when the matrix is empty.
    pub fn best_column(&self) -> Option<&str> {
        self.cols
            .iter()
            .filter(|c| self.col_overall(c).n > 0)
            .max_by(|a, b| {
                self.col_overall(a)
                    .mean
                    .partial_cmp(&self.col_overall(b).mean)
                    .unwrap()
            })
            .map(String::as_str)
    }

    /// The row label with the highest overall mean (the paper bolds this as
    /// the workflow system where LLMs perform best).
    pub fn best_row(&self) -> Option<&str> {
        self.rows
            .iter()
            .filter(|r| self.row_overall(r).n > 0)
            .max_by(|a, b| {
                self.row_overall(a)
                    .mean
                    .partial_cmp(&self.row_overall(b).mean)
                    .unwrap()
            })
            .map(String::as_str)
    }

    /// Merge another matrix's samples into this one (used to average the
    /// few-shot comparison over systems).
    pub fn merge(&mut self, other: &ScoreMatrix) {
        for row in other.rows() {
            for col in other.cols() {
                for &s in other.samples(row, col) {
                    self.push(row, col, s);
                }
            }
        }
    }

    /// Render as an aligned plain-text table with overall row/column, in the
    /// same layout as the paper's tables.
    pub fn render_text(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        let col_width = 16usize;
        let row_width = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once("Overall".len()))
            .max()
            .unwrap_or(8)
            + 2;
        out.push_str(&format!("{:row_width$}", ""));
        for c in &self.cols {
            out.push_str(&format!("{c:>col_width$}"));
        }
        out.push_str(&format!("{:>col_width$}\n", "Overall"));
        for r in &self.rows {
            out.push_str(&format!("{r:<row_width$}"));
            for c in &self.cols {
                out.push_str(&format!("{:>col_width$}", self.cell(r, c).paper_format()));
            }
            out.push_str(&format!(
                "{:>col_width$}\n",
                self.row_overall(r).paper_format()
            ));
        }
        out.push_str(&format!("{:<row_width$}", "Overall"));
        for c in &self.cols {
            out.push_str(&format!(
                "{:>col_width$}",
                self.col_overall(c).paper_format()
            ));
        }
        out.push_str(&format!(
            "{:>col_width$}\n",
            self.grand_overall().paper_format()
        ));
        out
    }

    /// Render as CSV (`row,col,mean,std_err,n`).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("row,col,mean,std_err,n\n");
        for r in &self.rows {
            for c in &self.cols {
                let s = self.cell(r, c);
                if s.n > 0 {
                    out.push_str(&format!("{r},{c},{:.3},{:.3},{}\n", s.mean, s.std_err, s.n));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ScoreMatrix {
        let mut m = ScoreMatrix::new();
        for &s in &[10.0, 12.0] {
            m.push("ADIOS2", "o3", s);
        }
        for &s in &[20.0, 22.0] {
            m.push("ADIOS2", "Gemini-2.5-Pro", s);
        }
        for &s in &[30.0, 32.0] {
            m.push("Henson", "o3", s);
        }
        for &s in &[40.0, 42.0] {
            m.push("Henson", "Gemini-2.5-Pro", s);
        }
        m
    }

    #[test]
    fn push_preserves_label_order() {
        let m = sample_matrix();
        assert_eq!(m.rows(), &["ADIOS2".to_string(), "Henson".to_string()]);
        assert_eq!(m.cols(), &["o3".to_string(), "Gemini-2.5-Pro".to_string()]);
    }

    #[test]
    fn cell_summary_mean() {
        let m = sample_matrix();
        assert!((m.cell("ADIOS2", "o3").mean - 11.0).abs() < 1e-12);
        assert_eq!(m.cell("ADIOS2", "o3").n, 2);
        assert_eq!(m.cell("missing", "o3").n, 0);
    }

    #[test]
    fn row_and_col_overall_pool_cell_means() {
        let m = sample_matrix();
        assert!((m.row_overall("ADIOS2").mean - 16.0).abs() < 1e-12);
        assert!((m.col_overall("o3").mean - 21.0).abs() < 1e-12);
        assert!((m.grand_overall().mean - 26.0).abs() < 1e-12);
    }

    #[test]
    fn best_row_and_column() {
        let m = sample_matrix();
        assert_eq!(m.best_row(), Some("Henson"));
        assert_eq!(m.best_column(), Some("Gemini-2.5-Pro"));
    }

    #[test]
    fn empty_matrix_best_is_none() {
        let m = ScoreMatrix::new();
        assert!(m.best_row().is_none());
        assert!(m.best_column().is_none());
        assert_eq!(m.grand_overall().n, 0);
    }

    #[test]
    fn with_labels_pre_declares_order() {
        let m = ScoreMatrix::with_labels(&["Henson", "ADIOS2"], &["o3"]);
        assert_eq!(m.rows()[0], "Henson");
        assert_eq!(m.cols()[0], "o3");
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = sample_matrix();
        let b = sample_matrix();
        a.merge(&b);
        assert_eq!(a.samples("ADIOS2", "o3").len(), 4);
    }

    #[test]
    fn render_text_contains_all_labels() {
        let m = sample_matrix();
        let text = m.render_text("Table X");
        assert!(text.contains("Table X"));
        assert!(text.contains("ADIOS2"));
        assert!(text.contains("Henson"));
        assert!(text.contains("Overall"));
        assert!(text.contains("o3"));
    }

    #[test]
    fn render_csv_has_header_and_rows() {
        let m = sample_matrix();
        let csv = m.render_csv();
        assert!(csv.starts_with("row,col,mean,std_err,n\n"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let m = sample_matrix();
        let json = serde_json::to_string(&m).unwrap();
        let back: ScoreMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cell("ADIOS2", "o3").mean, m.cell("ADIOS2", "o3").mean);
    }
}
