//! N-gram extraction and counting shared by BLEU and ChrF.
//!
//! Two families of multisets live here:
//!
//! * [`NgramCounts`] — the straightforward reference implementation keying a
//!   `HashMap` by `Vec<T>` windows. Simple, obviously correct, and the
//!   differential-testing baseline for the fast path.
//! * [`PackedCounts`] — the zero-allocation fast path: n-grams are packed
//!   into a single integer key (`u64` for interned word ids, `u128` for
//!   chars) and counted in an FxHash-style map, so the hot loop performs no
//!   per-window heap allocation and no SipHash rounds.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative hasher in the style of rustc's FxHash: one multiply and a
/// rotate per word, far cheaper than the default SipHash for the small
/// integer keys the packed n-gram maps use. Not DoS-resistant — these maps
/// only ever hold benchmark-internal keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_word(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_word(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.add_word(value as u64);
        self.add_word((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_word(value as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Integer types that can hold a packed n-gram key.
pub trait PackedKey: Copy + Eq + Hash + Default {
    /// `(self << bits) | unit` — slide one more unit into the key.
    fn shift_in(self, unit: u64, bits: u32) -> Self;
    /// Keep only the low `bits` bits (the most recent `bits / unit_bits`
    /// units of the rolling key).
    fn mask_low(self, bits: u32) -> Self;
}

impl PackedKey for u64 {
    #[inline]
    fn shift_in(self, unit: u64, bits: u32) -> Self {
        (self << bits) | unit
    }

    #[inline]
    fn mask_low(self, bits: u32) -> Self {
        if bits >= 64 {
            self
        } else {
            self & ((1u64 << bits) - 1)
        }
    }
}

impl PackedKey for u128 {
    #[inline]
    fn shift_in(self, unit: u64, bits: u32) -> Self {
        (self << bits) | unit as u128
    }

    #[inline]
    fn mask_low(self, bits: u32) -> Self {
        if bits >= 128 {
            self
        } else {
            self & ((1u128 << bits) - 1)
        }
    }
}

/// Per-order n-gram multisets over packed integer keys: the zero-allocation
/// counterpart of [`NgramCounts`] used by the prepared-reference fast path.
///
/// A sequence of units (interned token ids, or chars) is folded into a
/// rolling key; for every order `n` in `1..=max_order` the low `n *
/// unit_bits` bits of the key at each position *are* the n-gram, so counting
/// needs no per-window allocation at all.
#[derive(Debug, Clone)]
pub struct PackedCounts<K: PackedKey> {
    unit_bits: u32,
    len: usize,
    /// `orders[n - 1]` maps packed n-grams of order `n` to their count.
    orders: Vec<FxHashMap<K, u32>>,
}

impl<K: PackedKey> PackedCounts<K> {
    /// Count all n-grams of order `1..=max_order` over `units` in one pass.
    ///
    /// Every unit must fit in `unit_bits` bits and `max_order * unit_bits`
    /// must fit in `K`; both are enforced by the callers (16-bit interned
    /// ids × 4 orders for BLEU's `u64`, 21-bit chars × 6 orders for ChrF's
    /// `u128`).
    pub fn from_units(units: impl Iterator<Item = u64>, unit_bits: u32, max_order: usize) -> Self {
        let mut orders: Vec<FxHashMap<K, u32>> =
            (0..max_order).map(|_| FxHashMap::default()).collect();
        let mut rolling = K::default();
        let mut len = 0usize;
        for unit in units {
            debug_assert!(unit_bits >= 64 || unit < (1u64 << unit_bits));
            rolling = rolling.shift_in(unit, unit_bits);
            len += 1;
            let max_n = max_order.min(len);
            for (idx, order_map) in orders.iter_mut().take(max_n).enumerate() {
                let key = rolling.mask_low((idx as u32 + 1) * unit_bits);
                *order_map.entry(key).or_insert(0) += 1;
            }
        }
        PackedCounts {
            unit_bits,
            len,
            orders,
        }
    }

    /// Number of units counted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no units were counted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per unit in the packed keys.
    pub fn unit_bits(&self) -> u32 {
        self.unit_bits
    }

    /// Highest counted order.
    pub fn max_order(&self) -> usize {
        self.orders.len()
    }

    /// Total number of n-grams of order `n` (with multiplicity).
    pub fn total(&self, n: usize) -> usize {
        if n == 0 || n > self.len {
            0
        } else {
            self.len - n + 1
        }
    }

    /// The count map of order `n` (1-based).
    pub fn order(&self, n: usize) -> &FxHashMap<K, u32> {
        &self.orders[n - 1]
    }

    /// Clipped overlap at order `n`: `sum(min(count_self, count_other))`.
    /// Iterates whichever side has fewer distinct n-grams — the minimum is
    /// symmetric, so entries missing from either side contribute nothing.
    pub fn clipped_overlap(&self, other: &Self, n: usize) -> usize {
        debug_assert_eq!(self.unit_bits, other.unit_bits);
        let (small, large) = if self.order(n).len() <= other.order(n).len() {
            (self.order(n), other.order(n))
        } else {
            (other.order(n), self.order(n))
        };
        small
            .iter()
            .map(|(gram, &count)| count.min(large.get(gram).copied().unwrap_or(0)) as usize)
            .sum()
    }

    /// [`OverlapStats`] of `hyp` (self) against `reference` at order `n`.
    pub fn overlap_stats(&self, reference: &Self, n: usize) -> OverlapStats {
        OverlapStats {
            matches: self.clipped_overlap(reference, n),
            hyp_total: self.total(n),
            ref_total: reference.total(n),
        }
    }
}

/// Multiset of n-grams of a fixed order.
#[derive(Debug, Clone, Default)]
pub struct NgramCounts<T: Eq + Hash + Clone> {
    counts: HashMap<Vec<T>, usize>,
    total: usize,
}

impl<T: Eq + Hash + Clone> NgramCounts<T> {
    /// Count all n-grams of order `n` in `items`.  Returns an empty multiset
    /// when the sequence is shorter than `n` or `n == 0`.
    pub fn from_items(items: &[T], n: usize) -> Self {
        let mut counts: HashMap<Vec<T>, usize> = HashMap::new();
        let mut total = 0;
        if n > 0 && items.len() >= n {
            for window in items.windows(n) {
                *counts.entry(window.to_vec()).or_insert(0) += 1;
                total += 1;
            }
        }
        NgramCounts { counts, total }
    }

    /// Total number of n-grams (with multiplicity).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct n-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of a specific n-gram.
    pub fn get(&self, gram: &[T]) -> usize {
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// Clipped overlap with another multiset: for every n-gram, the minimum of
    /// the two counts, summed.  This is the "modified precision" numerator in
    /// BLEU and the true-positive count in ChrF.
    ///
    /// `min` is symmetric and n-grams absent from either side contribute 0,
    /// so only the side with fewer distinct n-grams needs to be walked.
    pub fn clipped_overlap(&self, other: &Self) -> usize {
        let (small, large) = if self.distinct() <= other.distinct() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .counts
            .iter()
            .map(|(gram, &count)| count.min(large.get(gram)))
            .sum()
    }

    /// Iterate over `(ngram, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<T>, &usize)> {
        self.counts.iter()
    }
}

/// Precision/recall overlap statistics for one n-gram order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlapStats {
    /// Clipped matches between hypothesis and reference n-grams.
    pub matches: usize,
    /// Total hypothesis n-grams (precision denominator).
    pub hyp_total: usize,
    /// Total reference n-grams (recall denominator).
    pub ref_total: usize,
}

impl OverlapStats {
    /// Compute overlap statistics for order `n` over two token sequences.
    pub fn compute<T: Eq + Hash + Clone>(hyp: &[T], reference: &[T], n: usize) -> Self {
        let h = NgramCounts::from_items(hyp, n);
        let r = NgramCounts::from_items(reference, n);
        OverlapStats {
            matches: h.clipped_overlap(&r),
            hyp_total: h.total(),
            ref_total: r.total(),
        }
    }

    /// Precision (matches / hypothesis total); 0 when the denominator is 0.
    pub fn precision(&self) -> f64 {
        if self.hyp_total == 0 {
            0.0
        } else {
            self.matches as f64 / self.hyp_total as f64
        }
    }

    /// Recall (matches / reference total); 0 when the denominator is 0.
    pub fn recall(&self) -> f64 {
        if self.ref_total == 0 {
            0.0
        } else {
            self.matches as f64 / self.ref_total as f64
        }
    }

    /// F-beta score of this order's precision and recall.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        if p + r == 0.0 {
            0.0
        } else {
            (1.0 + b2) * p * r / (b2 * p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unigrams() {
        let items = vec!["a", "b", "a"];
        let c = NgramCounts::from_items(&items, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.get(&["a"]), 2);
        assert_eq!(c.get(&["b"]), 1);
        assert_eq!(c.get(&["c"]), 0);
    }

    #[test]
    fn counts_bigrams() {
        let items = vec![1, 2, 3, 1, 2];
        let c = NgramCounts::from_items(&items, 2);
        assert_eq!(c.total(), 4);
        assert_eq!(c.get(&[1, 2]), 2);
        assert_eq!(c.get(&[2, 3]), 1);
    }

    #[test]
    fn sequence_shorter_than_n_yields_empty() {
        let items = vec!["x"];
        let c = NgramCounts::from_items(&items, 4);
        assert_eq!(c.total(), 0);
        assert_eq!(c.distinct(), 0);
    }

    #[test]
    fn order_zero_yields_empty() {
        let items = vec!["x", "y"];
        let c = NgramCounts::from_items(&items, 0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn clipped_overlap_clips_at_reference_count() {
        let hyp = vec!["the", "the", "the", "the"];
        let rf = vec!["the", "cat", "the"];
        let h = NgramCounts::from_items(&hyp, 1);
        let r = NgramCounts::from_items(&rf, 1);
        assert_eq!(h.clipped_overlap(&r), 2);
    }

    #[test]
    fn clipped_overlap_is_symmetric_regardless_of_which_side_is_smaller() {
        // `hyp` has 1 distinct unigram, `rf` has 3: the implementation walks
        // the smaller multiset, and the result must not depend on which side
        // that is.
        let hyp = vec!["the", "the", "the", "the"];
        let rf = vec!["the", "cat", "sat"];
        let h = NgramCounts::from_items(&hyp, 1);
        let r = NgramCounts::from_items(&rf, 1);
        assert_eq!(h.clipped_overlap(&r), 1);
        assert_eq!(r.clipped_overlap(&h), 1);
        // And with multiplicities on both sides.
        let a = NgramCounts::from_items(&["a", "a", "b", "c", "c", "c"], 1);
        let b = NgramCounts::from_items(&["a", "c", "c", "d"], 1);
        assert_eq!(a.clipped_overlap(&b), b.clipped_overlap(&a));
        assert_eq!(a.clipped_overlap(&b), 3); // min(2,1) + min(3,2)
    }

    #[test]
    fn packed_counts_match_naive_counts() {
        let items: Vec<u64> = vec![1, 2, 3, 1, 2, 1, 4, 2, 3];
        let packed = PackedCounts::<u64>::from_units(items.iter().copied(), 16, 4);
        for n in 1..=4usize {
            let naive = NgramCounts::from_items(&items, n);
            assert_eq!(packed.total(n), naive.total(), "order {n}");
            assert_eq!(packed.order(n).len(), naive.distinct(), "order {n}");
        }
        // Spot-check a few counts via packed keys (16 bits per unit).
        let key = |units: &[u64]| units.iter().fold(0u64, |k, &u| (k << 16) | u);
        assert_eq!(packed.order(1)[&key(&[1])], 3);
        assert_eq!(packed.order(2)[&key(&[1, 2])], 2);
        assert_eq!(packed.order(3)[&key(&[2, 3, 1])], 1);
    }

    #[test]
    fn packed_clipped_overlap_matches_naive() {
        let a: Vec<u64> = vec![1, 2, 1, 2, 3, 4, 1];
        let b: Vec<u64> = vec![2, 1, 2, 3, 3, 1];
        let pa = PackedCounts::<u64>::from_units(a.iter().copied(), 16, 3);
        let pb = PackedCounts::<u64>::from_units(b.iter().copied(), 16, 3);
        for n in 1..=3usize {
            let na = NgramCounts::from_items(&a, n);
            let nb = NgramCounts::from_items(&b, n);
            assert_eq!(
                pa.clipped_overlap(&pb, n),
                na.clipped_overlap(&nb),
                "order {n}"
            );
            assert_eq!(
                pa.clipped_overlap(&pb, n),
                pb.clipped_overlap(&pa, n),
                "order {n}"
            );
            let stats = pa.overlap_stats(&pb, n);
            assert_eq!(stats, OverlapStats::compute(&a, &b, n), "order {n}");
        }
    }

    #[test]
    fn packed_u128_counts_wide_units() {
        // 21-bit units as used for ChrF chars, including beyond the BMP.
        let chars: Vec<u64> = "aé😀aé".chars().map(|c| c as u64).collect();
        let packed = PackedCounts::<u128>::from_units(chars.iter().copied(), 21, 6);
        assert_eq!(packed.total(1), 5);
        assert_eq!(packed.order(1).len(), 3);
        assert_eq!(packed.total(5), 1);
        assert_eq!(packed.total(6), 0);
    }

    #[test]
    fn packed_counts_empty_and_short_sequences() {
        let empty = PackedCounts::<u64>::from_units(std::iter::empty(), 16, 4);
        assert!(empty.is_empty());
        for n in 1..=4 {
            assert_eq!(empty.total(n), 0);
            assert!(empty.order(n).is_empty());
        }
        let one = PackedCounts::<u64>::from_units([7u64].into_iter(), 16, 4);
        assert_eq!(one.total(1), 1);
        assert_eq!(one.total(2), 0);
    }

    #[test]
    fn overlap_stats_precision_recall() {
        let hyp = vec!["a", "b", "c"];
        let rf = vec!["a", "b", "d", "e"];
        let s = OverlapStats::compute(&hyp, &rf, 1);
        assert_eq!(s.matches, 2);
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_stats_identical_sequences_perfect() {
        let toks = vec!["x", "y", "z", "w"];
        for n in 1..=4 {
            let s = OverlapStats::compute(&toks, &toks, n);
            assert_eq!(s.matches, s.hyp_total);
            assert_eq!(s.precision(), 1.0);
            assert_eq!(s.recall(), 1.0);
            assert_eq!(s.f_beta(2.0), 1.0);
        }
    }

    #[test]
    fn f_beta_zero_when_no_overlap() {
        let s = OverlapStats {
            matches: 0,
            hyp_total: 5,
            ref_total: 5,
        };
        assert_eq!(s.f_beta(2.0), 0.0);
    }

    #[test]
    fn f_beta_weights_recall_with_beta_2() {
        // precision 1.0, recall 0.5 -> F2 = 5*1*0.5 / (4*1 + 0.5) = 2.5/4.5
        let s = OverlapStats {
            matches: 2,
            hyp_total: 2,
            ref_total: 4,
        };
        assert!((s.f_beta(2.0) - 2.5 / 4.5).abs() < 1e-12);
    }
}
