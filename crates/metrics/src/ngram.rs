//! N-gram extraction and counting shared by BLEU and ChrF.

use std::collections::HashMap;
use std::hash::Hash;

/// Multiset of n-grams of a fixed order.
#[derive(Debug, Clone, Default)]
pub struct NgramCounts<T: Eq + Hash + Clone> {
    counts: HashMap<Vec<T>, usize>,
    total: usize,
}

impl<T: Eq + Hash + Clone> NgramCounts<T> {
    /// Count all n-grams of order `n` in `items`.  Returns an empty multiset
    /// when the sequence is shorter than `n` or `n == 0`.
    pub fn from_items(items: &[T], n: usize) -> Self {
        let mut counts: HashMap<Vec<T>, usize> = HashMap::new();
        let mut total = 0;
        if n > 0 && items.len() >= n {
            for window in items.windows(n) {
                *counts.entry(window.to_vec()).or_insert(0) += 1;
                total += 1;
            }
        }
        NgramCounts { counts, total }
    }

    /// Total number of n-grams (with multiplicity).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct n-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of a specific n-gram.
    pub fn get(&self, gram: &[T]) -> usize {
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// Clipped overlap with another multiset: for every n-gram, the minimum of
    /// the two counts, summed.  This is the "modified precision" numerator in
    /// BLEU and the true-positive count in ChrF.
    pub fn clipped_overlap(&self, other: &Self) -> usize {
        self.counts
            .iter()
            .map(|(gram, &count)| count.min(other.get(gram)))
            .sum()
    }

    /// Iterate over `(ngram, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<T>, &usize)> {
        self.counts.iter()
    }
}

/// Precision/recall overlap statistics for one n-gram order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlapStats {
    /// Clipped matches between hypothesis and reference n-grams.
    pub matches: usize,
    /// Total hypothesis n-grams (precision denominator).
    pub hyp_total: usize,
    /// Total reference n-grams (recall denominator).
    pub ref_total: usize,
}

impl OverlapStats {
    /// Compute overlap statistics for order `n` over two token sequences.
    pub fn compute<T: Eq + Hash + Clone>(hyp: &[T], reference: &[T], n: usize) -> Self {
        let h = NgramCounts::from_items(hyp, n);
        let r = NgramCounts::from_items(reference, n);
        OverlapStats {
            matches: h.clipped_overlap(&r),
            hyp_total: h.total(),
            ref_total: r.total(),
        }
    }

    /// Precision (matches / hypothesis total); 0 when the denominator is 0.
    pub fn precision(&self) -> f64 {
        if self.hyp_total == 0 {
            0.0
        } else {
            self.matches as f64 / self.hyp_total as f64
        }
    }

    /// Recall (matches / reference total); 0 when the denominator is 0.
    pub fn recall(&self) -> f64 {
        if self.ref_total == 0 {
            0.0
        } else {
            self.matches as f64 / self.ref_total as f64
        }
    }

    /// F-beta score of this order's precision and recall.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        if p + r == 0.0 {
            0.0
        } else {
            (1.0 + b2) * p * r / (b2 * p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unigrams() {
        let items = vec!["a", "b", "a"];
        let c = NgramCounts::from_items(&items, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.get(&["a"]), 2);
        assert_eq!(c.get(&["b"]), 1);
        assert_eq!(c.get(&["c"]), 0);
    }

    #[test]
    fn counts_bigrams() {
        let items = vec![1, 2, 3, 1, 2];
        let c = NgramCounts::from_items(&items, 2);
        assert_eq!(c.total(), 4);
        assert_eq!(c.get(&[1, 2]), 2);
        assert_eq!(c.get(&[2, 3]), 1);
    }

    #[test]
    fn sequence_shorter_than_n_yields_empty() {
        let items = vec!["x"];
        let c = NgramCounts::from_items(&items, 4);
        assert_eq!(c.total(), 0);
        assert_eq!(c.distinct(), 0);
    }

    #[test]
    fn order_zero_yields_empty() {
        let items = vec!["x", "y"];
        let c = NgramCounts::from_items(&items, 0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn clipped_overlap_clips_at_reference_count() {
        let hyp = vec!["the", "the", "the", "the"];
        let rf = vec!["the", "cat", "the"];
        let h = NgramCounts::from_items(&hyp, 1);
        let r = NgramCounts::from_items(&rf, 1);
        assert_eq!(h.clipped_overlap(&r), 2);
    }

    #[test]
    fn overlap_stats_precision_recall() {
        let hyp = vec!["a", "b", "c"];
        let rf = vec!["a", "b", "d", "e"];
        let s = OverlapStats::compute(&hyp, &rf, 1);
        assert_eq!(s.matches, 2);
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_stats_identical_sequences_perfect() {
        let toks = vec!["x", "y", "z", "w"];
        for n in 1..=4 {
            let s = OverlapStats::compute(&toks, &toks, n);
            assert_eq!(s.matches, s.hyp_total);
            assert_eq!(s.precision(), 1.0);
            assert_eq!(s.recall(), 1.0);
            assert_eq!(s.f_beta(2.0), 1.0);
        }
    }

    #[test]
    fn f_beta_zero_when_no_overlap() {
        let s = OverlapStats {
            matches: 0,
            hyp_total: 5,
            ref_total: 5,
        };
        assert_eq!(s.f_beta(2.0), 0.0);
    }

    #[test]
    fn f_beta_weights_recall_with_beta_2() {
        // precision 1.0, recall 0.5 -> F2 = 5*1*0.5 / (4*1 + 0.5) = 2.5/4.5
        let s = OverlapStats {
            matches: 2,
            hyp_total: 2,
            ref_total: 4,
        };
        assert!((s.f_beta(2.0) - 2.5 / 4.5).abs() < 1e-12);
    }
}
