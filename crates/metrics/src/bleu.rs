//! BLEU implementation modelled after sacrebleu's sentence-level BLEU.
//!
//! BLEU-N combines the geometric mean of modified n-gram precisions
//! (n = 1..=N, default N = 4) with a brevity penalty that punishes hypotheses
//! shorter than the reference:
//!
//! ```text
//! BLEU = BP * exp( sum_n w_n * ln p_n )         with w_n = 1/N
//! BP   = 1                     if |hyp| > |ref|
//!      = exp(1 - |ref|/|hyp|)  otherwise
//! ```
//!
//! Zero precisions are handled with sacrebleu's `exp` smoothing (each zero
//! precision at order n is replaced by `1 / (2^k * hyp_ngrams_n)` with an
//! increasing `k`), or alternatively with `floor` or `add-k` smoothing.

use crate::ngram::OverlapStats;
use crate::prepared::{PreparedBleu, PreparedPayload, PreparedReference};
use crate::tokenize::{normalize, tokenize_13a};
use crate::Scorer;

/// Smoothing methods for zero n-gram precisions (sacrebleu names).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoothing {
    /// No smoothing: any zero precision makes the whole score zero.
    None,
    /// sacrebleu's default `exp` smoothing: the k-th encountered zero
    /// precision is replaced by `1 / (2^k * hyp_total)`.
    Exp,
    /// Replace zero precisions with a small floor value.
    Floor(f64),
    /// Add `k` to both numerator and denominator of every precision.
    AddK(f64),
}

/// Configurable BLEU scorer.
#[derive(Debug, Clone)]
pub struct BleuScorer {
    /// Maximum n-gram order (default 4).
    pub max_order: usize,
    /// Smoothing method (default [`Smoothing::Exp`]).
    pub smoothing: Smoothing,
    /// Whether to apply the 13a-like tokenizer (default) or plain whitespace
    /// splitting.
    pub tokenize: bool,
}

impl Default for BleuScorer {
    fn default() -> Self {
        BleuScorer {
            max_order: 4,
            smoothing: Smoothing::Exp,
            tokenize: true,
        }
    }
}

/// Detailed result of a BLEU computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BleuBreakdown {
    /// Final score on the 0–100 scale.
    pub score: f64,
    /// Per-order modified precisions after smoothing.
    pub precisions: Vec<f64>,
    /// Brevity penalty in `[0, 1]`.
    pub brevity_penalty: f64,
    /// Hypothesis length in tokens.
    pub hyp_len: usize,
    /// Reference length in tokens.
    pub ref_len: usize,
}

impl BleuScorer {
    /// Create a scorer with a custom maximum n-gram order.
    pub fn with_max_order(max_order: usize) -> Self {
        BleuScorer {
            max_order: max_order.max(1),
            ..BleuScorer::default()
        }
    }

    fn tokens(&self, text: &str) -> Vec<String> {
        let text = normalize(text);
        if self.tokenize {
            tokenize_13a(&text)
        } else {
            crate::tokenize::tokenize_whitespace(&text)
        }
    }

    /// Compute BLEU with a full breakdown of per-order precisions and the
    /// brevity penalty.
    ///
    /// This is a thin wrapper over the prepared-reference fast path: the
    /// reference is tokenised, interned and counted once via
    /// [`Scorer::prepare`], then scored. Use [`BleuScorer::breakdown_naive`]
    /// for the allocation-heavy reference implementation (they are
    /// bit-identical; the property tests pin that).
    pub fn breakdown(&self, hypothesis: &str, reference: &str) -> BleuBreakdown {
        self.breakdown_prepared(hypothesis, &Scorer::prepare(self, reference))
    }

    /// Compute BLEU against an already-prepared reference.
    ///
    /// Falls back to re-preparing from the retained source text when the
    /// prepared data was built by an incompatible scorer configuration or
    /// when the packed representation could not hold the input.
    pub fn breakdown_prepared(
        &self,
        hypothesis: &str,
        reference: &PreparedReference,
    ) -> BleuBreakdown {
        if let PreparedPayload::Bleu(prepared) = &reference.payload {
            if prepared.tokenize == self.tokenize && prepared.max_order == self.max_order {
                if let Some((stats, hyp_len)) = prepared.overlap_stats(hypothesis) {
                    return self.breakdown_from_stats(&stats, hyp_len, prepared.len);
                }
                // Packed id space overflowed: naive fallback, same math.
                return self.breakdown_naive(hypothesis, reference.source());
            }
        }
        // Raw or mismatched payload: prepare with this scorer's settings.
        self.breakdown(hypothesis, reference.source())
    }

    /// The seed implementation: tokenize both sides and count n-grams with
    /// `Vec<String>`-keyed maps per order. Kept as the differential-testing
    /// baseline for the packed fast path (and as the fallback for inputs the
    /// packed keys cannot represent).
    pub fn breakdown_naive(&self, hypothesis: &str, reference: &str) -> BleuBreakdown {
        let hyp = self.tokens(hypothesis);
        let rf = self.tokens(reference);
        let stats: Vec<OverlapStats> = (1..=self.max_order)
            .map(|n| OverlapStats::compute(&hyp, &rf, n))
            .collect();
        self.breakdown_from_stats(&stats, hyp.len(), rf.len())
    }

    /// Shared scoring tail: smoothing, brevity penalty and the geometric
    /// mean over the effective orders. Both the naive and the packed path
    /// land here with identical integer statistics, which is what makes the
    /// two paths bit-identical.
    fn breakdown_from_stats(
        &self,
        stats: &[OverlapStats],
        hyp_len: usize,
        ref_len: usize,
    ) -> BleuBreakdown {
        if hyp_len == 0 || ref_len == 0 {
            return BleuBreakdown {
                score: 0.0,
                precisions: vec![0.0; self.max_order],
                brevity_penalty: 0.0,
                hyp_len,
                ref_len,
            };
        }

        let mut precisions = Vec::with_capacity(self.max_order);
        let mut smooth_exp_k = 0u32;
        for stats in stats.iter().take(self.max_order) {
            let (num, den) = (stats.matches as f64, stats.hyp_total as f64);
            let p = match self.smoothing {
                Smoothing::None => {
                    if den == 0.0 {
                        0.0
                    } else {
                        num / den
                    }
                }
                Smoothing::Exp => {
                    if den == 0.0 {
                        0.0
                    } else if num == 0.0 {
                        smooth_exp_k += 1;
                        1.0 / (2f64.powi(smooth_exp_k as i32) * den)
                    } else {
                        num / den
                    }
                }
                Smoothing::Floor(floor) => {
                    if den == 0.0 {
                        0.0
                    } else if num == 0.0 {
                        floor / den
                    } else {
                        num / den
                    }
                }
                Smoothing::AddK(k) => {
                    if den == 0.0 {
                        0.0
                    } else {
                        (num + k) / (den + k)
                    }
                }
            };
            precisions.push(p);
        }

        let brevity_penalty = if hyp_len >= ref_len {
            1.0
        } else {
            (1.0 - ref_len as f64 / hyp_len as f64).exp()
        };

        // Orders whose hypothesis n-gram count is zero (hypothesis shorter
        // than n) are excluded from the geometric mean, as sacrebleu does for
        // the effective order.
        let usable: Vec<f64> = precisions
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, _)| hyp_len > i)
            .map(|(_, p)| p)
            .collect();

        let score = if usable.is_empty() || usable.iter().any(|&p| p <= 0.0) {
            0.0
        } else {
            let log_sum: f64 = usable.iter().map(|p| p.ln()).sum();
            brevity_penalty * (log_sum / usable.len() as f64).exp() * 100.0
        };

        BleuBreakdown {
            score,
            precisions,
            brevity_penalty,
            hyp_len,
            ref_len,
        }
    }
}

impl Scorer for BleuScorer {
    fn name(&self) -> &'static str {
        "BLEU"
    }

    fn score(&self, hypothesis: &str, reference: &str) -> f64 {
        self.breakdown(hypothesis, reference).score
    }

    fn prepare(&self, reference: &str) -> PreparedReference {
        PreparedReference {
            source: reference.to_owned(),
            payload: PreparedPayload::Bleu(PreparedBleu::new(
                reference,
                self.tokenize,
                self.max_order,
            )),
        }
    }

    fn score_prepared(&self, hypothesis: &str, reference: &PreparedReference) -> f64 {
        self.breakdown_prepared(hypothesis, reference).score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF: &str = "the cat sat on the mat";

    #[test]
    fn identical_gives_100() {
        let s = BleuScorer::default();
        assert!((s.score(REF, REF) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_hypothesis_gives_0() {
        let s = BleuScorer::default();
        assert_eq!(s.score("", REF), 0.0);
        assert_eq!(s.score(REF, ""), 0.0);
        assert_eq!(s.score("", ""), 0.0);
    }

    #[test]
    fn disjoint_gives_0() {
        let s = BleuScorer::default();
        let score = s.score("alpha beta gamma delta epsilon zeta", REF);
        // With exp smoothing a fully disjoint hypothesis still receives a
        // small smoothed score (as in sacrebleu); it must stay low.
        assert!(
            score < 10.0,
            "disjoint text should score near zero, got {score}"
        );
        let unsmoothed = BleuScorer {
            smoothing: Smoothing::None,
            ..BleuScorer::default()
        };
        assert_eq!(
            unsmoothed.score("alpha beta gamma delta epsilon zeta", REF),
            0.0
        );
    }

    #[test]
    fn partial_overlap_between_0_and_100() {
        let s = BleuScorer::default();
        let score = s.score("the cat sat on a rug", REF);
        assert!(score > 0.0 && score < 100.0, "got {score}");
    }

    #[test]
    fn brevity_penalty_applies_to_short_hypothesis() {
        let s = BleuScorer::default();
        let long_ref = "a b c d e f g h i j k l m n o p";
        let b = s.breakdown("a b c d", long_ref);
        assert!(b.brevity_penalty < 1.0);
        assert!(b.score < 100.0);
    }

    #[test]
    fn no_brevity_penalty_for_longer_hypothesis() {
        let s = BleuScorer::default();
        let b = s.breakdown("the cat sat on the mat today again", REF);
        assert_eq!(b.brevity_penalty, 1.0);
    }

    #[test]
    fn known_value_half_overlapping_bigrams() {
        // hyp: "a b c d", ref: "a b x y"
        // p1 = 2/4, p2 = 1/3, p3 smoothed (exp: 1/(2*2)), p4 smoothed 1/(4*1)
        let s = BleuScorer::default();
        let b = s.breakdown("a b c d", "a b x y");
        assert!((b.precisions[0] - 0.5).abs() < 1e-12);
        assert!((b.precisions[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((b.precisions[2] - 1.0 / 4.0).abs() < 1e-12);
        assert!((b.precisions[3] - 1.0 / 4.0).abs() < 1e-12);
        let expected = (0.5f64.ln() + (1.0f64 / 3.0).ln() + 0.25f64.ln() + 0.25f64.ln()) / 4.0;
        assert!((b.score - expected.exp() * 100.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_none_zeroes_score_without_4gram_match() {
        let s = BleuScorer {
            smoothing: Smoothing::None,
            ..BleuScorer::default()
        };
        // Shares unigrams/bigrams but no 4-gram.
        assert_eq!(s.score("a b c q e", "a b c d e"), 0.0);
    }

    #[test]
    fn add_k_smoothing_never_zero_for_nonempty() {
        let s = BleuScorer {
            smoothing: Smoothing::AddK(1.0),
            ..BleuScorer::default()
        };
        let score = s.score("w x y z", "p q r s");
        assert!(score > 0.0);
    }

    #[test]
    fn short_hypothesis_uses_effective_order() {
        // A 2-token hypothesis has no 3- or 4-grams; those orders must not
        // zero the score.
        let s = BleuScorer::default();
        let score = s.score("the cat", REF);
        assert!(score > 0.0, "got {score}");
    }

    #[test]
    fn code_like_texts_score_sensibly() {
        let s = BleuScorer::default();
        let reference = "henson_save_int(\"t\", t);\nhenson_yield();";
        let good = "henson_save_int(\"t\", t);\nhenson_yield();";
        let bad = "adios_put(engine, var_t, t);\nadios_end_step(engine);";
        assert!(s.score(good, reference) > s.score(bad, reference));
    }

    #[test]
    fn tokenization_off_uses_whitespace_tokens() {
        let s = BleuScorer {
            tokenize: false,
            ..BleuScorer::default()
        };
        // With whitespace tokenization "cat," differs from "cat ,"
        let a = s.score("the cat, sat", "the cat, sat");
        assert!((a - 100.0).abs() < 1e-9);
    }

    #[test]
    fn max_order_one_is_unigram_precision_times_bp() {
        let s = BleuScorer::with_max_order(1);
        let b = s.breakdown("a b c d", "a b x y");
        assert!((b.score - 50.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_lengths_reported() {
        let s = BleuScorer::default();
        let b = s.breakdown("a b c", "a b c d e");
        assert_eq!(b.hyp_len, 3);
        assert_eq!(b.ref_len, 5);
    }
}
