//! Tokenisation used by the similarity metrics.
//!
//! BLEU is computed over word-level tokens produced by a tokenizer modelled
//! after sacrebleu's `13a` tokenizer (punctuation and symbols are split into
//! their own tokens, whitespace collapsed).  ChrF is computed over character
//! n-grams with whitespace removed, again following sacrebleu.

/// Tokenise a string for BLEU, approximating sacrebleu's `13a`/`intl`
/// behaviour closely enough for code-like text:
///
/// * runs of alphanumeric characters (plus `_`) form a single token;
/// * every other non-whitespace character becomes its own token;
/// * whitespace separates tokens and is otherwise discarded.
///
/// ```
/// use wfspeak_metrics::tokenize::tokenize_13a;
/// let toks = tokenize_13a("henson_save_int(\"t\", &t);");
/// assert_eq!(toks, vec!["henson_save_int", "(", "\"", "t", "\"", ",", "&", "t", ")", ";"]);
/// ```
pub fn tokenize_13a(text: &str) -> Vec<String> {
    tokenize_13a_spans(text)
        .into_iter()
        .map(str::to_owned)
        .collect()
}

/// Zero-copy variant of [`tokenize_13a`]: every token is a slice into the
/// input, so tokenising allocates only the `Vec` of spans — no per-token
/// `String` and, in particular, no `char::to_string` per punctuation
/// character.  This is the tokenizer the scoring fast path builds interned
/// token ids from.
///
/// Multi-byte UTF-8 punctuation is sliced at the correct byte boundaries:
///
/// ```
/// use wfspeak_metrics::tokenize::tokenize_13a_spans;
/// // em dash, ellipsis and guillemets are all multi-byte punctuation
/// let toks = tokenize_13a_spans("naïve—code…«quoted»");
/// assert_eq!(toks, vec!["naïve", "—", "code", "…", "«", "quoted", "»"]);
/// ```
pub fn tokenize_13a_spans(text: &str) -> Vec<&str> {
    let mut tokens = Vec::new();
    let mut word_start: Option<usize> = None;
    for (i, ch) in text.char_indices() {
        if ch.is_alphanumeric() || ch == '_' {
            if word_start.is_none() {
                word_start = Some(i);
            }
        } else {
            if let Some(start) = word_start.take() {
                tokens.push(&text[start..i]);
            }
            if !ch.is_whitespace() {
                tokens.push(&text[i..i + ch.len_utf8()]);
            }
        }
    }
    if let Some(start) = word_start {
        tokens.push(&text[start..]);
    }
    tokens
}

/// Split a string on whitespace only (sacrebleu's `none` tokenizer).
pub fn tokenize_whitespace(text: &str) -> Vec<String> {
    text.split_whitespace().map(str::to_owned).collect()
}

/// Produce the character sequence used for ChrF: all whitespace removed,
/// every remaining character kept in order.
///
/// ```
/// use wfspeak_metrics::tokenize::chrf_chars;
/// assert_eq!(chrf_chars("a b\nc"), vec!['a', 'b', 'c']);
/// ```
pub fn chrf_chars(text: &str) -> Vec<char> {
    text.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Split text into word tokens for the ChrF word-order component (unused by
/// plain ChrF but provided for ChrF++-style extensions).
pub fn chrf_words(text: &str) -> Vec<String> {
    tokenize_whitespace(text)
}

/// Normalise line endings and trim trailing whitespace per line.  Applied to
/// both hypothesis and reference before scoring so that platform differences
/// and trailing-space noise do not affect the metrics.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.replace("\r\n", "\n").lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_13a_splits_punctuation() {
        assert_eq!(tokenize_13a("a.b(c)"), vec!["a", ".", "b", "(", "c", ")"]);
    }

    #[test]
    fn tokenize_13a_keeps_identifiers_whole() {
        assert_eq!(
            tokenize_13a("compss_wait_on_file(out)"),
            vec!["compss_wait_on_file", "(", "out", ")"]
        );
    }

    #[test]
    fn tokenize_13a_empty_input() {
        assert!(tokenize_13a("").is_empty());
        assert!(tokenize_13a("   \n\t ").is_empty());
    }

    #[test]
    fn tokenize_whitespace_basic() {
        assert_eq!(tokenize_whitespace("a  b\nc"), vec!["a", "b", "c"]);
    }

    #[test]
    fn chrf_chars_strips_all_whitespace() {
        assert_eq!(chrf_chars(" x\ty \n z "), vec!['x', 'y', 'z']);
    }

    #[test]
    fn normalize_strips_trailing_space_and_crlf() {
        assert_eq!(normalize("a  \r\nb\t\n"), "a\nb");
    }

    #[test]
    fn normalize_preserves_indentation() {
        assert_eq!(
            normalize("  - func: producer  \n    nprocs: 3"),
            "  - func: producer\n    nprocs: 3"
        );
    }

    #[test]
    fn tokenize_13a_unicode_alphanumerics_group() {
        assert_eq!(tokenize_13a("héllo wörld"), vec!["héllo", "wörld"]);
    }

    #[test]
    fn tokenize_13a_spans_agree_with_owned_tokenizer() {
        for text in [
            "henson_save_int(\"t\", &t);",
            "a.b(c)",
            "",
            "   \n\t ",
            "héllo—wörld… «x»",
            "mixed_帯域 テスト(1)",
        ] {
            let owned = tokenize_13a(text);
            let spans = tokenize_13a_spans(text);
            assert_eq!(owned, spans, "{text:?}");
        }
    }

    #[test]
    fn tokenize_13a_spans_are_true_slices_of_the_input() {
        let text = "abc«def»ghi";
        for span in tokenize_13a_spans(text) {
            let start = span.as_ptr() as usize - text.as_ptr() as usize;
            assert_eq!(&text[start..start + span.len()], span);
        }
    }
}
