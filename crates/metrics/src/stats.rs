//! Score statistics: mean, standard deviation, standard error, bootstrap
//! confidence intervals and rank correlation.
//!
//! Every table in the paper reports "mean ± standard error over 5 runs";
//! [`Summary`] reproduces exactly that. [`spearman_rank_correlation`] backs
//! the metric-agreement ablation in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Summary statistics of a set of repeated-trial scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator); 0 for n < 2.
    pub std_dev: f64,
    /// Standard error of the mean (std_dev / sqrt(n)); 0 for n < 2.
    pub std_err: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics over `samples`.  Returns an all-zero
    /// summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                std_err: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let (std_dev, std_err) = if n > 1 {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            let sd = var.sqrt();
            (sd, sd / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev,
            std_err,
            min,
            max,
        }
    }

    /// Format as the paper does: `mean±err` with one decimal place each,
    /// e.g. `59.1±2.3`.
    pub fn paper_format(&self) -> String {
        format!("{:.1}±{:.1}", self.mean, self.std_err)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.paper_format())
    }
}

/// Pool several per-cell summaries into an "Overall" row/column value as the
/// paper does: the overall mean is the mean of cell means, and the overall
/// standard error is the standard error of those cell means.
pub fn pool_summaries(cells: &[Summary]) -> Summary {
    let means: Vec<f64> = cells.iter().map(|s| s.mean).collect();
    Summary::from_samples(&means)
}

/// Simple deterministic bootstrap confidence interval of the mean.
///
/// Resamples `samples` with replacement `resamples` times using a small
/// multiplicative-congruential generator seeded by `seed`, returning the
/// `(lower, upper)` bounds of the central `confidence` interval.
pub fn bootstrap_ci(samples: &[f64], resamples: usize, confidence: f64, seed: u64) -> (f64, f64) {
    if samples.is_empty() || resamples == 0 {
        return (0.0, 0.0);
    }
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..samples.len() {
            sum += samples[next() % samples.len()];
        }
        means.push(sum / samples.len() as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((means.len() as f64 - 1.0) * alpha).round() as usize;
    let hi_idx = ((means.len() as f64 - 1.0) * (1.0 - alpha)).round() as usize;
    (means[lo_idx], means[hi_idx.min(means.len() - 1)])
}

/// Spearman rank correlation between two equally long score vectors.
/// Returns `None` when lengths differ or are < 2.
pub fn spearman_rank_correlation(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation coefficient; `None` if either vector has zero
/// variance or the lengths differ / are < 2.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// Average ranks (1-based) with ties receiving the mean of their ranks.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap());
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_err, 0.0);
    }

    #[test]
    fn summary_of_single_sample() {
        let s = Summary::from_samples(&[42.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.std_err, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        // sample variance = (4+0+0+0+4)/4 = 2
        assert!((s.std_dev - 2f64.sqrt()).abs() < 1e-12);
        assert!((s.std_err - 2f64.sqrt() / 5f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
    }

    #[test]
    fn paper_format_one_decimal() {
        let s = Summary::from_samples(&[59.05, 59.15]);
        assert_eq!(s.paper_format(), "59.1±0.1");
        assert_eq!(format!("{s}"), "59.1±0.1");
    }

    #[test]
    fn pool_summaries_averages_cell_means() {
        let a = Summary::from_samples(&[10.0, 10.0]);
        let b = Summary::from_samples(&[20.0, 20.0]);
        let pooled = pool_summaries(&[a, b]);
        assert!((pooled.mean - 15.0).abs() < 1e-12);
        assert_eq!(pooled.n, 2);
    }

    #[test]
    fn bootstrap_ci_contains_mean_for_tight_data() {
        let samples = [50.0, 51.0, 49.0, 50.5, 49.5];
        let (lo, hi) = bootstrap_ci(&samples, 200, 0.95, 7);
        assert!(lo <= 50.0 && hi >= 50.0, "({lo}, {hi})");
        assert!(hi - lo < 3.0);
    }

    #[test]
    fn bootstrap_ci_empty_is_zero() {
        assert_eq!(bootstrap_ci(&[], 100, 0.95, 1), (0.0, 0.0));
    }

    #[test]
    fn bootstrap_ci_deterministic_for_same_seed() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            bootstrap_ci(&samples, 100, 0.9, 42),
            bootstrap_ci(&samples, 100, 0.9, 42)
        );
    }

    #[test]
    fn spearman_perfect_monotonic_is_1() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rank_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_reversed_is_minus_1() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rank_correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_mismatched_lengths_none() {
        assert!(spearman_rank_correlation(&[1.0], &[1.0, 2.0]).is_none());
        assert!(spearman_rank_correlation(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn pearson_zero_variance_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
