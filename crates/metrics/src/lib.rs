//! Code-similarity metrics and score statistics for the `wfspeak` benchmark.
//!
//! The paper evaluates LLM-generated workflow artifacts against reference
//! (ground-truth) artifacts using two machine-translation metrics computed by
//! the `sacrebleu` Python package:
//!
//! * **BLEU** ([`bleu`]) — modified n-gram precision (n = 1..4) combined with
//!   a brevity penalty, using the sacrebleu `exp` smoothing and a 13a-like
//!   tokenisation.
//! * **ChrF** ([`chrf`]) — character n-gram F-score (n = 1..6, β = 2).
//!
//! Both are reported on a 0–100 scale (the raw 0–1 score multiplied by 100),
//! following the paper.  The [`stats`] module provides the mean ± standard
//! error aggregation used in every table, and [`matrix`] holds the
//! `(model × system)` score grids that back the tables and Figure 1 heatmaps.
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_metrics::{bleu::BleuScorer, chrf::ChrfScorer, Scorer};
//!
//! let reference = "tasks:\n  - func: producer\n    nprocs: 3";
//! let hypothesis = "tasks:\n  - func: producer\n    nprocs: 3";
//!
//! let bleu = BleuScorer::default().score(hypothesis, reference);
//! let chrf = ChrfScorer::default().score(hypothesis, reference);
//! assert!((bleu - 100.0).abs() < 1e-6);
//! assert!((chrf - 100.0).abs() < 1e-6);
//! ```

//! # Performance
//!
//! Metric scoring is the hot path of the whole reproduction: every cell of
//! every table is `trials × models × systems` BLEU/ChrF evaluations. The
//! crate therefore ships two implementations of each metric:
//!
//! * **Naive path** ([`BleuScorer::breakdown_naive`],
//!   [`ChrfScorer::breakdown_naive`]) — the seed implementation: every
//!   n-gram window is materialised as a `Vec<String>`/`Vec<char>` key into a
//!   SipHash map, and the reference is re-tokenised and re-counted per call.
//!   Kept as the obviously-correct baseline.
//! * **Packed fast path** (the default behind [`Scorer::score`]) — BLEU
//!   word tokens are interned to dense `u32` ids
//!   ([`prepared::Interner`]) and word n-grams (n ≤ 4) are packed 16
//!   bits/token into a single `u64`; ChrF char n-grams (n ≤ 6) are packed
//!   21 bits/char into a `u128`. Counting uses FxHash-style integer maps
//!   ([`ngram::PackedCounts`]) — no per-window allocation, no SipHash.
//! * **Prepared references** ([`PreparedReference`], built with
//!   [`Scorer::prepare`]) — the reference side is normalised, tokenised,
//!   interned and counted **once**, then shared across every hypothesis
//!   scored against it via [`Scorer::score_prepared`]. The benchmark runner
//!   caches one prepared reference per experiment cell row.
//!
//! The two paths are bit-identical: both reduce to the same integer
//! [`ngram::OverlapStats`] per order and share one floating-point scoring
//! tail; `crates/metrics/tests/property_tests.rs` pins the equivalence on
//! arbitrary inputs (including >6-bit alphabets and non-BMP Unicode).
//! Inputs the packed keys cannot represent (≥ 2¹⁶ distinct tokens) fall
//! back to the naive path automatically.
//!
//! Measured with the `metrics_fastpath` criterion bench in `crates/bench`
//! (35 scorings over the paper's real reference artifacts per iteration; see
//! that bench for the exact setup): BLEU drops from ~16.7 ms to ~1.0 ms per
//! iteration (**≈16×**) and ChrF from ~24.7 ms to ~2.3 ms (**≈11×**) with
//! prepared references; even without reference reuse the packed counting
//! alone is ≈6.7× for BLEU. `repro bench` records end-to-end grid throughput
//! in `BENCH_1.json` so future changes have a trajectory to compare against.

pub mod bleu;
pub mod chrf;
pub mod matrix;
pub mod ngram;
pub mod prepared;
pub mod stats;
pub mod tokenize;

pub use bleu::BleuScorer;
pub use chrf::ChrfScorer;
pub use matrix::ScoreMatrix;
pub use prepared::{CacheStats, PreparedReference};
pub use stats::Summary;

/// A similarity metric that compares a hypothesis against a single reference
/// and returns a score on the 0–100 scale used throughout the paper.
pub trait Scorer {
    /// Human-readable metric name (e.g. `"BLEU"`, `"ChrF"`).
    fn name(&self) -> &'static str;

    /// Score `hypothesis` against `reference`; higher is better, range 0–100.
    fn score(&self, hypothesis: &str, reference: &str) -> f64;

    /// Preprocess a reference once so it can be scored against many
    /// hypotheses via [`Scorer::score_prepared`].
    ///
    /// The default implementation performs no precomputation (custom scorers
    /// keep working unchanged); [`BleuScorer`] and [`ChrfScorer`] override it
    /// to tokenize, intern and count the reference's n-grams up front.
    ///
    /// ```
    /// use wfspeak_metrics::{BleuScorer, Scorer};
    ///
    /// let scorer = BleuScorer::default();
    /// let reference = "tasks:\n  - func: producer\n    nprocs: 3";
    /// let prepared = scorer.prepare(reference);
    /// for hypothesis in ["tasks:\n  - func: producer\n    nprocs: 3", "tasks: []"] {
    ///     // Bit-identical to `scorer.score(hypothesis, reference)`, but the
    ///     // reference-side work is paid only once.
    ///     assert_eq!(
    ///         scorer.score_prepared(hypothesis, &prepared),
    ///         scorer.score(hypothesis, reference),
    ///     );
    /// }
    /// ```
    fn prepare(&self, reference: &str) -> PreparedReference {
        PreparedReference::raw(reference)
    }

    /// Score `hypothesis` against a reference prepared with
    /// [`Scorer::prepare`]. Must return exactly what
    /// `self.score(hypothesis, original_reference)` would.
    ///
    /// The default implementation re-scores from the retained source text;
    /// the built-in scorers override it with a packed-key fast path.
    fn score_prepared(&self, hypothesis: &str, reference: &PreparedReference) -> f64 {
        self.score(hypothesis, reference.source())
    }

    /// Score a hypothesis against several references, returning the best
    /// (maximum) score.  The paper uses a single reference per cell, but the
    /// harness supports multiple acceptable references.
    fn score_multi(&self, hypothesis: &str, references: &[&str]) -> f64 {
        references
            .iter()
            .map(|r| self.score(hypothesis, r))
            .fold(0.0_f64, f64::max)
    }
}

/// Which metric to compute; used by the experiment harness when both metrics
/// are reported side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Metric {
    /// sacrebleu-style BLEU.
    Bleu,
    /// Character n-gram F-score.
    Chrf,
}

impl Metric {
    /// All metrics reported in the paper, in table column order.
    pub const ALL: [Metric; 2] = [Metric::Bleu, Metric::Chrf];

    /// Display name matching the paper's column headers.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Bleu => "BLEU",
            Metric::Chrf => "ChrF",
        }
    }

    /// Score with the selected metric using default scorer settings.
    pub fn score(&self, hypothesis: &str, reference: &str) -> f64 {
        match self {
            Metric::Bleu => BleuScorer::default().score(hypothesis, reference),
            Metric::Chrf => ChrfScorer::default().score(hypothesis, reference),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_labels_match_paper_headers() {
        assert_eq!(Metric::Bleu.label(), "BLEU");
        assert_eq!(Metric::Chrf.label(), "ChrF");
        assert_eq!(format!("{}", Metric::Bleu), "BLEU");
    }

    #[test]
    fn metric_all_orders_bleu_first() {
        assert_eq!(Metric::ALL[0], Metric::Bleu);
        assert_eq!(Metric::ALL[1], Metric::Chrf);
    }

    #[test]
    fn identical_text_scores_100_for_both_metrics() {
        let text = "henson_save_int(\"t\", t);";
        assert!((Metric::Bleu.score(text, text) - 100.0).abs() < 1e-6);
        assert!((Metric::Chrf.score(text, text) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn score_multi_takes_best_reference() {
        struct Fixed;
        impl Scorer for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn score(&self, hypothesis: &str, reference: &str) -> f64 {
                if hypothesis == reference {
                    100.0
                } else {
                    10.0
                }
            }
        }
        let s = Fixed;
        assert_eq!(s.score_multi("a", &["b", "a", "c"]), 100.0);
        assert_eq!(s.score_multi("z", &["b", "a", "c"]), 10.0);
    }

    #[test]
    fn custom_scorers_get_working_prepared_defaults() {
        struct Fixed;
        impl Scorer for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn score(&self, hypothesis: &str, reference: &str) -> f64 {
                if hypothesis == reference {
                    100.0
                } else {
                    10.0
                }
            }
        }
        let s = Fixed;
        let prepared = s.prepare("abc");
        assert_eq!(prepared.source(), "abc");
        assert_eq!(s.score_prepared("abc", &prepared), 100.0);
        assert_eq!(s.score_prepared("xyz", &prepared), 10.0);
    }

    #[test]
    fn prepared_references_cross_scorer_fallback_matches_string_pair() {
        // A BLEU-prepared reference handed to ChrF (and vice versa) must
        // still score exactly like the string-pair API.
        let text = "tasks:\n  - func: producer\n    nprocs: 3";
        let hyp = "tasks:\n  - func: producer\n    nprocs: 4";
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        let bleu_prepared = bleu.prepare(text);
        let chrf_prepared = chrf.prepare(text);
        assert_eq!(
            chrf.score_prepared(hyp, &bleu_prepared),
            chrf.score(hyp, text)
        );
        assert_eq!(
            bleu.score_prepared(hyp, &chrf_prepared),
            bleu.score(hyp, text)
        );
        // Mismatched configuration (different max order) also falls back.
        let bleu2 = BleuScorer::with_max_order(2);
        assert_eq!(
            bleu2.score_prepared(hyp, &bleu_prepared),
            bleu2.score(hyp, text)
        );
    }
}
