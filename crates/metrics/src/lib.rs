//! Code-similarity metrics and score statistics for the `wfspeak` benchmark.
//!
//! The paper evaluates LLM-generated workflow artifacts against reference
//! (ground-truth) artifacts using two machine-translation metrics computed by
//! the `sacrebleu` Python package:
//!
//! * **BLEU** ([`bleu`]) — modified n-gram precision (n = 1..4) combined with
//!   a brevity penalty, using the sacrebleu `exp` smoothing and a 13a-like
//!   tokenisation.
//! * **ChrF** ([`chrf`]) — character n-gram F-score (n = 1..6, β = 2).
//!
//! Both are reported on a 0–100 scale (the raw 0–1 score multiplied by 100),
//! following the paper.  The [`stats`] module provides the mean ± standard
//! error aggregation used in every table, and [`matrix`] holds the
//! `(model × system)` score grids that back the tables and Figure 1 heatmaps.
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_metrics::{bleu::BleuScorer, chrf::ChrfScorer, Scorer};
//!
//! let reference = "tasks:\n  - func: producer\n    nprocs: 3";
//! let hypothesis = "tasks:\n  - func: producer\n    nprocs: 3";
//!
//! let bleu = BleuScorer::default().score(hypothesis, reference);
//! let chrf = ChrfScorer::default().score(hypothesis, reference);
//! assert!((bleu - 100.0).abs() < 1e-6);
//! assert!((chrf - 100.0).abs() < 1e-6);
//! ```

pub mod bleu;
pub mod chrf;
pub mod matrix;
pub mod ngram;
pub mod stats;
pub mod tokenize;

pub use bleu::BleuScorer;
pub use chrf::ChrfScorer;
pub use matrix::ScoreMatrix;
pub use stats::Summary;

/// A similarity metric that compares a hypothesis against a single reference
/// and returns a score on the 0–100 scale used throughout the paper.
pub trait Scorer {
    /// Human-readable metric name (e.g. `"BLEU"`, `"ChrF"`).
    fn name(&self) -> &'static str;

    /// Score `hypothesis` against `reference`; higher is better, range 0–100.
    fn score(&self, hypothesis: &str, reference: &str) -> f64;

    /// Score a hypothesis against several references, returning the best
    /// (maximum) score.  The paper uses a single reference per cell, but the
    /// harness supports multiple acceptable references.
    fn score_multi(&self, hypothesis: &str, references: &[&str]) -> f64 {
        references
            .iter()
            .map(|r| self.score(hypothesis, r))
            .fold(0.0_f64, f64::max)
    }
}

/// Which metric to compute; used by the experiment harness when both metrics
/// are reported side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Metric {
    /// sacrebleu-style BLEU.
    Bleu,
    /// Character n-gram F-score.
    Chrf,
}

impl Metric {
    /// All metrics reported in the paper, in table column order.
    pub const ALL: [Metric; 2] = [Metric::Bleu, Metric::Chrf];

    /// Display name matching the paper's column headers.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Bleu => "BLEU",
            Metric::Chrf => "ChrF",
        }
    }

    /// Score with the selected metric using default scorer settings.
    pub fn score(&self, hypothesis: &str, reference: &str) -> f64 {
        match self {
            Metric::Bleu => BleuScorer::default().score(hypothesis, reference),
            Metric::Chrf => ChrfScorer::default().score(hypothesis, reference),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_labels_match_paper_headers() {
        assert_eq!(Metric::Bleu.label(), "BLEU");
        assert_eq!(Metric::Chrf.label(), "ChrF");
        assert_eq!(format!("{}", Metric::Bleu), "BLEU");
    }

    #[test]
    fn metric_all_orders_bleu_first() {
        assert_eq!(Metric::ALL[0], Metric::Bleu);
        assert_eq!(Metric::ALL[1], Metric::Chrf);
    }

    #[test]
    fn identical_text_scores_100_for_both_metrics() {
        let text = "henson_save_int(\"t\", t);";
        assert!((Metric::Bleu.score(text, text) - 100.0).abs() < 1e-6);
        assert!((Metric::Chrf.score(text, text) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn score_multi_takes_best_reference() {
        struct Fixed;
        impl Scorer for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn score(&self, hypothesis: &str, reference: &str) -> f64 {
                if hypothesis == reference {
                    100.0
                } else {
                    10.0
                }
            }
        }
        let s = Fixed;
        assert_eq!(s.score_multi("a", &["b", "a", "c"]), 100.0);
        assert_eq!(s.score_multi("z", &["b", "a", "c"]), 10.0);
    }
}
