//! Wire-level pinning tests for the fault-tolerance subsystem: injected
//! worker panics answer as typed `"internal"` errors and the pool
//! respawns, deadlines expire queued jobs with typed `"deadline"` errors,
//! torn frames reassemble, fault schedules replay bit-for-bit from their
//! seed, the resilient client drives every request to a terminal state
//! under drop/disconnect faults, and shutdown drains in-flight work.

use std::io::Write;
use std::net::TcpListener;
use std::sync::Once;
use std::time::{Duration, Instant};

use wfspeak_service::{
    FaultPlan, ResilientClient, RetryPolicy, ScoreRequest, ScoringClient, ScoringServer,
    ServiceConfig, TaskKind,
};

/// Keep expected, injected panics out of the test output; real panics
/// still print. Hooks are process-global, so install the filter once.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault:"))
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// A plan that fires exactly one fault class on every request.
fn always(class: &str) -> FaultPlan {
    let mut plan = FaultPlan::disabled(0);
    match class {
        "panic" => plan.worker_panic_per_1024 = 1024,
        "torn" => plan.torn_frame_per_1024 = 1024,
        "drop" => plan.dropped_write_per_1024 = 1024,
        "disconnect" => plan.disconnect_per_1024 = 1024,
        other => panic!("unknown fault class {other}"),
    }
    plan
}

#[test]
fn injected_panics_answer_typed_internal_errors_and_the_pool_survives() {
    silence_injected_panics();
    let server = ScoringServer::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            faults: Some(always("panic")),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();

    // Every request panics inside a worker; every panic must come back as
    // a typed protocol error on the same connection, in order.
    for id in 1..=4u64 {
        let request = ScoreRequest::by_text(id, "reference text", vec!["hypothesis".to_owned()]);
        client.send(&request).unwrap();
        let response = client.recv().unwrap();
        assert_eq!(response.id, id);
        assert!(!response.ok);
        assert_eq!(response.error_kind.as_deref(), Some("internal"));
        let message = response.error.expect("internal errors carry a message");
        assert!(message.contains("panicked"), "{message}");
        assert!(response.scores.is_empty());
    }

    // Each panic logically respawned a worker, and the pool is still
    // taking connections (the panics never killed the OS threads' loop).
    let stats = server.stats();
    assert_eq!(stats.worker_restarts, 4);
    assert_eq!(stats.faults_injected, 4);
    let mut second = ScoringClient::connect(server.addr()).unwrap();
    second
        .send(&ScoreRequest::by_text(9, "ref", vec!["x".to_owned()]))
        .unwrap();
    assert_eq!(
        second.recv().unwrap().error_kind.as_deref(),
        Some("internal")
    );

    client.close();
    second.close();
    server.shutdown();
}

#[test]
fn queued_requests_past_their_deadline_get_typed_deadline_errors() {
    let server = ScoringServer::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let reference_block = "reference text line\n".repeat(64);

    // Pin the single worker with a slow batch.
    let mut busy = ScoringClient::connect(server.addr()).unwrap();
    busy.send(&ScoreRequest::by_text(
        1,
        &reference_block,
        vec![reference_block.clone(); 256],
    ))
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.stats().requests < 1 {
        assert!(Instant::now() < deadline, "worker never started");
        std::thread::yield_now();
    }

    // A 1ms-deadline request parks in the queue behind the slow batch;
    // by the time a worker frees up it has long expired, so it must be
    // answered with the typed deadline error instead of being scored.
    let mut expired = ScoringClient::connect(server.addr()).unwrap();
    expired
        .send(&ScoreRequest::by_text(2, "ref", vec!["x".to_owned()]).with_deadline(1))
        .unwrap();
    let response = expired.recv().unwrap();
    assert_eq!(response.id, 2);
    assert!(!response.ok);
    assert_eq!(response.error_kind.as_deref(), Some("deadline"));
    let message = response.error.expect("deadline errors carry a message");
    assert!(message.contains("deadline of 1ms"), "{message}");
    assert!(response.scores.is_empty());

    // The slow batch itself is unaffected, and expired requests do not
    // count as handled work.
    let slow = busy.recv().unwrap();
    assert!(slow.ok, "{:?}", slow.error);
    assert_eq!(server.stats().requests, 1);

    busy.close();
    expired.close();
    server.shutdown();
}

#[test]
fn torn_frames_reassemble_into_bit_identical_responses() {
    let request = ScoreRequest::by_text(
        5,
        "shared reference",
        vec!["shared reference".to_owned(), "other".to_owned()],
    );

    let respond = |faults: Option<FaultPlan>| {
        let server = ScoringServer::spawn(
            "127.0.0.1:0",
            ServiceConfig {
                faults,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut client = ScoringClient::connect(server.addr()).unwrap();
        client.send(&request).unwrap();
        let response = client.recv().unwrap();
        client.close();
        server.shutdown();
        response
    };

    // Every response line is written in two TCP flushes; the client's
    // frame reassembly must hand back exactly the clean server's bytes.
    let torn = respond(Some(always("torn")));
    let clean = respond(None);
    assert!(torn.ok, "{:?}", torn.error);
    assert_eq!(
        wfspeak_service::protocol::encode_line(&torn),
        wfspeak_service::protocol::encode_line(&clean)
    );
}

#[test]
fn fault_schedules_replay_bit_for_bit_from_their_seed() {
    silence_injected_panics();
    let run = || {
        let server = ScoringServer::spawn(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 1,
                faults: Some(FaultPlan::chaos(77)),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut client = ResilientClient::new(
            server.addr().to_string(),
            RetryPolicy {
                retries: 3,
                deadline_ms: Some(500),
                backoff_base: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        let mut outcomes = Vec::new();
        for id in 1..=24u64 {
            let request = ScoreRequest::by_id(
                id,
                TaskKind::Configuration,
                "Henson",
                vec![format!("h{id}")],
            );
            outcomes.push(match client.call(request) {
                Ok(response) => (response.ok, response.error_kind),
                Err(_) => (false, Some("exhausted".to_owned())),
            });
        }
        client.disconnect();
        let stats = server.stats();
        server.shutdown();
        (outcomes, stats.faults_injected, stats.worker_restarts)
    };

    // A sequential client makes the whole run a pure function of the
    // seed: same outcomes, same fault count, same restarts.
    let (outcomes_a, faults_a, restarts_a) = run();
    let (outcomes_b, faults_b, restarts_b) = run();
    assert_eq!(outcomes_a, outcomes_b);
    assert_eq!(faults_a, faults_b);
    assert_eq!(restarts_a, restarts_b);
    assert!(faults_a > 0, "seed 77 injects at this workload size");
}

#[test]
fn resilient_client_terminates_every_request_under_drop_and_disconnect_faults() {
    // Half the responses vanish, half the connections die mid-frame: the
    // worst transport weather the injector can brew.
    let mut plan = FaultPlan::disabled(13);
    plan.dropped_write_per_1024 = 256;
    plan.disconnect_per_1024 = 256;
    let server = ScoringServer::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            faults: Some(plan),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = ResilientClient::new(
        server.addr().to_string(),
        RetryPolicy {
            retries: 6,
            deadline_ms: Some(300),
            backoff_base: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
    );

    let mut scored = 0;
    for id in 1..=16u64 {
        match client.call(ScoreRequest::by_text(
            id,
            "reference",
            vec!["reference".to_owned()],
        )) {
            Ok(response) if response.ok => scored += 1,
            Ok(response) => panic!("unexpected server error: {:?}", response.error),
            Err(exhausted) => {
                // Terminal too — but with 7 attempts at 50% transport
                // loss it should be vanishingly rare.
                eprintln!("request exhausted retries: {exhausted}");
            }
        }
    }
    assert!(scored >= 12, "retries recover most requests: {scored}/16");
    client.disconnect();
    server.shutdown();
}

#[test]
fn mid_read_eof_surfaces_connection_lost_with_in_flight_ids() {
    // A hand-rolled "server" that answers with half a frame and hangs up.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Read both request lines first: dropping a socket with unread
        // inbound data sends RST instead of FIN, which would race the
        // partial frame out of the client's receive buffer.
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        for _ in 0..2 {
            line.clear();
            std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        }
        stream.write_all(b"{\"id\":3,\"ok\":tr").unwrap();
        stream.flush().unwrap();
        // Dropping the stream closes it mid-frame.
    });

    let mut client = ScoringClient::connect(addr).unwrap();
    client
        .send(&ScoreRequest::by_text(3, "ref", vec!["x".to_owned()]))
        .unwrap();
    client
        .send(&ScoreRequest::by_text(4, "ref", vec!["y".to_owned()]))
        .unwrap();
    assert_eq!(client.in_flight(), vec![3, 4]);

    let error = client.recv().unwrap_err();
    assert_eq!(error.kind(), std::io::ErrorKind::ConnectionAborted);
    let message = error.to_string();
    assert!(message.contains("mid-frame"), "{message}");
    assert!(message.contains("2 request(s) in flight"), "{message}");
    assert!(message.contains("[3, 4]"), "{message}");
    fake.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_work_before_disconnecting() {
    let server = ScoringServer::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            drain_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let reference_block = "reference text line\n".repeat(32);

    let mut client = ScoringClient::connect(server.addr()).unwrap();
    client
        .send(&ScoreRequest::by_text(
            11,
            &reference_block,
            vec![reference_block.clone(); 64],
        ))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.stats().requests < 1 {
        assert!(Instant::now() < deadline, "worker never started");
        std::thread::yield_now();
    }

    // Shut down while the batch is mid-score. Drain semantics: the reply
    // must still reach the client before the connection is closed.
    let shutdown = std::thread::spawn(move || server.shutdown());
    let response = client.recv().unwrap();
    assert_eq!(response.id, 11);
    assert!(response.ok, "{:?}", response.error);
    assert_eq!(response.scores.len(), 64);
    shutdown.join().unwrap();

    // After the drain the listener is gone: the next read sees EOF as a
    // typed connection-lost error (nothing in flight).
    let error = client.recv().unwrap_err();
    assert_eq!(error.kind(), std::io::ErrorKind::ConnectionAborted);
    assert!(error.to_string().contains("0 request(s) in flight"));
}
