//! End-to-end tests: a real server on an ephemeral port, real TCP clients,
//! and the promise that served scores are bit-identical to calling
//! `Scorer::score_prepared` directly.

use wfspeak_corpus::references::{annotation_reference, configuration_reference};
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};
use wfspeak_service::{ScoreRequest, ScoringClient, ScoringServer, ServiceConfig, TaskKind};

/// Hypotheses with varied quality against a reference: the reference itself,
/// truncations, and mutations.
fn hypotheses_for(reference: &str) -> Vec<String> {
    let half = reference.len() / 2;
    let truncated: String = reference.chars().take(half).collect();
    vec![
        reference.to_owned(),
        truncated,
        reference.replace("producer", "generator"),
        "completely unrelated output".to_owned(),
        String::new(),
    ]
}

/// What `Scorer::score_prepared` produces in-process for one (reference,
/// hypotheses) batch — the ground truth every served response must match.
fn direct_scores(reference: &str, hypotheses: &[String]) -> Vec<(f64, f64)> {
    let bleu = BleuScorer::default();
    let chrf = ChrfScorer::default();
    let prepared_bleu = bleu.prepare(reference);
    let prepared_chrf = chrf.prepare(reference);
    hypotheses
        .iter()
        .map(|h| {
            (
                bleu.score_prepared(h, &prepared_bleu),
                chrf.score_prepared(h, &prepared_chrf),
            )
        })
        .collect()
}

fn assert_bit_identical(
    served: &wfspeak_service::ScoreResponse,
    expected: &[(f64, f64)],
    context: &str,
) {
    assert!(served.ok, "{context}: {:?}", served.error);
    assert_eq!(served.scores.len(), expected.len(), "{context}");
    for (i, (score, (bleu, chrf))) in served.scores.iter().zip(expected).enumerate() {
        assert_eq!(
            score.bleu.to_bits(),
            bleu.to_bits(),
            "{context}: hypothesis {i} BLEU {} vs {bleu}",
            score.bleu
        );
        assert_eq!(
            score.chrf.to_bits(),
            chrf.to_bits(),
            "{context}: hypothesis {i} ChrF {} vs {chrf}",
            score.chrf
        );
    }
}

#[test]
fn two_concurrent_clients_get_bit_identical_scores() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let addr = server.addr();

    // Two clients score different experiment batches at the same time.
    let workloads: [(TaskKind, WorkflowSystemId, &str); 2] = [
        (
            TaskKind::Configuration,
            WorkflowSystemId::Henson,
            configuration_reference(WorkflowSystemId::Henson).unwrap(),
        ),
        (
            TaskKind::Annotation,
            WorkflowSystemId::Parsl,
            annotation_reference(WorkflowSystemId::Parsl).unwrap(),
        ),
    ];

    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|&(task, system, reference)| {
                scope.spawn(move || {
                    let mut client = ScoringClient::connect(addr).unwrap();
                    let hypotheses = hypotheses_for(reference);
                    let expected = direct_scores(reference, &hypotheses);
                    // Each client repeats its batch to exercise the shared
                    // cache from both connections.
                    for round in 0..3 {
                        let response = client
                            .score(task, system.name(), hypotheses.clone())
                            .unwrap();
                        assert_bit_identical(
                            &response,
                            &expected,
                            &format!("{}/{} round {round}", task.name(), system.name()),
                        );
                    }
                    client.close();
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    });

    let stats = server.stats();
    assert_eq!(stats.requests, 6, "3 rounds from each of 2 clients");
    assert_eq!(stats.hypotheses, 30);
    // Each distinct reference is prepared once; all later lookups hit.
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_hits, 4);
    server.shutdown();
}

#[test]
fn pipelined_requests_are_matched_by_id() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();

    // Fire all requests before reading any response; ids are deliberately
    // non-contiguous to prove matching is by id, not arrival order.
    let references: Vec<(u64, String)> = (0..8)
        .map(|i| {
            (
                100 + 7 * i,
                format!("reference text number {i} with shared words"),
            )
        })
        .collect();
    for (id, reference) in &references {
        let request = ScoreRequest::by_text(*id, reference, hypotheses_for(reference));
        client.send(&request).unwrap();
    }
    let ids: Vec<u64> = references.iter().map(|(id, _)| *id).collect();
    let responses = client.collect_by_id(&ids).unwrap();
    assert_eq!(responses.len(), references.len());
    for (id, reference) in &references {
        let hypotheses = hypotheses_for(reference);
        let expected = direct_scores(reference, &hypotheses);
        assert_bit_identical(&responses[id], &expected, &format!("request {id}"));
    }

    client.close();
    server.shutdown();
}

#[test]
fn malformed_and_unresolvable_requests_get_error_responses() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();

    // Speak the raw protocol to send garbage a typed client cannot produce.
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let write = |line: &str| {
        let mut stream = &stream;
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    };
    let mut read_response = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str::<serde::Value>(&line).unwrap()
    };

    write(r#"{"id": 11, "task": "configuration", "system": "NoSuchSystem", "hypotheses": ["x"]}"#);
    let response = read_response();
    assert_eq!(response["id"].as_i64(), Some(11));
    assert_eq!(response["ok"].as_bool(), Some(false));
    assert!(response["error"].as_str().unwrap().contains("NoSuchSystem"));

    write(r#"{"id": 12, "hypotheses": "not-an-array"}"#);
    let response = read_response();
    assert_eq!(
        response["id"].as_i64(),
        Some(12),
        "id salvaged from bad request"
    );
    assert_eq!(response["ok"].as_bool(), Some(false));

    write("this is not json");
    let response = read_response();
    assert_eq!(response["id"].as_i64(), Some(0));
    assert_eq!(response["ok"].as_bool(), Some(false));

    // The connection survives all three errors and still scores.
    write(r#"{"id": 13, "task": "annotation", "system": "Parsl", "hypotheses": ["x"]}"#);
    let response = read_response();
    assert_eq!(response["id"].as_i64(), Some(13));
    assert_eq!(response["ok"].as_bool(), Some(true));

    // `reader` holds a clone of the socket, so dropping `stream` alone would
    // not deliver EOF to the server; shut the socket down explicitly.
    stream.shutdown(std::net::Shutdown::Both).unwrap();
    server.shutdown();
}

#[test]
fn served_scores_match_direct_scoring_for_every_builtin_reference() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();

    let mut covered = 0;
    for system in [
        WorkflowSystemId::Adios2,
        WorkflowSystemId::Henson,
        WorkflowSystemId::Parsl,
        WorkflowSystemId::PyCompss,
        WorkflowSystemId::Wilkins,
    ] {
        for (task, reference) in [
            (TaskKind::Configuration, configuration_reference(system)),
            (TaskKind::Annotation, annotation_reference(system)),
        ] {
            let Some(reference) = reference else { continue };
            let hypotheses = hypotheses_for(reference);
            let expected = direct_scores(reference, &hypotheses);
            let response = client.score(task, system.name(), hypotheses).unwrap();
            assert_bit_identical(
                &response,
                &expected,
                &format!("{}/{}", task.name(), system.name()),
            );
            covered += 1;
        }
    }
    assert_eq!(covered, 7, "3 configuration + 4 annotation references");

    client.close();
    server.shutdown();
}
