//! End-to-end tests for the `execute` request: a real server on an
//! ephemeral port, pipelined + concurrent clients, and the promise that
//! served execution scores are bit-identical to composing the pipeline
//! stages — `extract_code` → `workflow_spec_from_config` → `Engine::run` →
//! trace scoring — directly from their home crates.

use wfspeak_codemodel::extract_code;
use wfspeak_corpus::references::{configuration_reference, execution_reference};
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_runtime::{Engine, TraceSummary};
use wfspeak_service::{ExecutionScore, ScoreRequest, ScoringClient, ScoringServer, ServiceConfig};
use wfspeak_systems::workflow_spec_from_config;

/// Raw model responses covering the runnability gradient: perfect artifact,
/// fenced artifact with prose, parseable-but-invalid, valid-but-partial
/// dataflow, and the wrong kind of artifact entirely.
fn responses_for(reference: &str) -> Vec<String> {
    vec![
        reference.to_owned(),
        format!("Here is the artifact:\n```\n{reference}\n```\nHope this helps!"),
        "tasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n".to_owned(),
        // First half of the reference: often parseable with fewer tasks.
        reference.chars().take(reference.len() / 2).collect(),
        "I could not generate a configuration for that system.".to_owned(),
    ]
}

/// Compose the execution stages by hand — the ground truth every served
/// execution score must match bit for bit.  Mirrors
/// `wfspeak_core::exec::execute_artifact` stage by stage, from the home
/// crates of each stage.
fn direct_execution(
    sandbox: &wfspeak_core::exec::SandboxConfig,
    system: WorkflowSystemId,
    reference_summary: &TraceSummary,
    response: &str,
) -> (bool, bool, bool, bool, bool, f64, f64) {
    let code = extract_code(response);
    let (spec, report) = workflow_spec_from_config(system, &code);
    let Some(spec) = spec else {
        return (false, false, false, false, false, 0.0, 0.0);
    };
    let valid = report.is_valid();
    let structurally_valid = !spec.validate().iter().any(|d| d.is_error());
    if !valid || !structurally_valid {
        let runnability = if valid { 40.0 } else { 20.0 };
        return (true, valid, false, false, false, runnability, 0.0);
    }
    let spec = spec.normalized();
    if spec.tasks.len() > sandbox.max_tasks || spec.total_procs() > sandbox.max_total_procs {
        return (true, true, true, false, false, 60.0, 0.0);
    }
    match Engine::new(sandbox.engine_config()).run(&spec) {
        Ok(outcome) => {
            let fidelity = 100.0 * outcome.summary().fidelity(reference_summary);
            let runnability = if outcome.completed { 100.0 } else { 80.0 };
            (
                true,
                true,
                true,
                true,
                outcome.completed,
                runnability,
                fidelity,
            )
        }
        Err(_) => (true, true, true, false, false, 60.0, 0.0),
    }
}

fn reference_summary(
    sandbox: &wfspeak_core::exec::SandboxConfig,
    system: WorkflowSystemId,
    reference: &str,
) -> TraceSummary {
    let (spec, report) = workflow_spec_from_config(system, reference);
    assert!(report.is_valid());
    Engine::new(sandbox.engine_config())
        .run(&spec.unwrap().normalized())
        .unwrap()
        .summary()
}

fn assert_executions_bit_identical(
    served: &[ExecutionScore],
    sandbox: &wfspeak_core::exec::SandboxConfig,
    system: WorkflowSystemId,
    summary: &TraceSummary,
    responses: &[String],
    context: &str,
) {
    assert_eq!(served.len(), responses.len(), "{context}");
    for (i, (score, response)) in served.iter().zip(responses).enumerate() {
        let (parsed, valid, validated, ran, completed, runnability, fidelity) =
            direct_execution(sandbox, system, summary, response);
        assert_eq!(
            (
                score.parsed,
                score.valid,
                score.validated,
                score.ran,
                score.completed
            ),
            (parsed, valid, validated, ran, completed),
            "{context}: response {i} stages"
        );
        assert_eq!(
            score.failure_kind.is_none(),
            completed,
            "{context}: response {i} failure kind"
        );
        assert_eq!(
            score.runnability.to_bits(),
            runnability.to_bits(),
            "{context}: response {i} runnability {} vs {runnability}",
            score.runnability
        );
        assert_eq!(
            score.trace_fidelity.to_bits(),
            fidelity.to_bits(),
            "{context}: response {i} fidelity {} vs {fidelity}",
            score.trace_fidelity
        );
    }
}

#[test]
fn served_executions_match_direct_stage_composition() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();
    let sandbox = wfspeak_core::exec::SandboxConfig::default();

    for system in WorkflowSystemId::execution_systems() {
        let reference = execution_reference(system);
        let summary = reference_summary(&sandbox, system, reference);
        let responses = responses_for(reference);
        let response = client.execute(system.name(), responses.clone()).unwrap();
        assert!(response.ok, "{system}: {:?}", response.error);
        assert!(response.scores.is_empty() && response.evaluations.is_empty());
        assert_executions_bit_identical(
            &response.executions,
            &sandbox,
            system,
            &summary,
            &responses,
            &format!("execution/{system}"),
        );
        // The perfect artifact must be recognised as such over the wire.
        assert_eq!(response.executions[0].runnability, 100.0, "{system}");
        assert_eq!(response.executions[0].trace_fidelity, 100.0, "{system}");
        // And the non-artifact must score zero.
        assert_eq!(response.executions[4].runnability, 0.0, "{system}");
    }

    client.close();
    server.shutdown();
}

#[test]
fn pipelined_execute_requests_mix_with_other_modes() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();
    let sandbox = wfspeak_core::exec::SandboxConfig::default();

    let system = WorkflowSystemId::Wilkins;
    let reference = configuration_reference(system).unwrap();
    let summary = reference_summary(&sandbox, system, reference);
    let responses = responses_for(reference);

    let ids = [1u64, 2, 3, 4];
    client
        .send(&ScoreRequest::execute(1, "Wilkins", responses.clone()))
        .unwrap();
    client
        .send(&ScoreRequest::by_text(2, reference, responses.clone()))
        .unwrap();
    client
        .send(&ScoreRequest::execute_text(
            3,
            reference,
            "Wilkins",
            responses.clone(),
        ))
        .unwrap();
    // A reference that is not an executable configuration fails cleanly.
    client
        .send(&ScoreRequest {
            id: 4,
            reference_id: Some("annotation/Henson".into()),
            mode: "execute".into(),
            hypotheses: vec!["x".into()],
            ..ScoreRequest::default()
        })
        .unwrap();

    let by_id = client.collect_by_id(&ids).unwrap();

    let executed = &by_id[&1];
    assert!(executed.ok, "{:?}", executed.error);
    assert_executions_bit_identical(
        &executed.executions,
        &sandbox,
        system,
        &summary,
        &responses,
        "pipelined execute",
    );

    let scored = &by_id[&2];
    assert!(scored.ok);
    assert!(scored.executions.is_empty());
    assert_eq!(scored.scores.len(), responses.len());

    let by_text = &by_id[&3];
    assert!(by_text.ok, "{:?}", by_text.error);
    assert_executions_bit_identical(
        &by_text.executions,
        &sandbox,
        system,
        &summary,
        &responses,
        "execute by text",
    );

    let bad_reference = &by_id[&4];
    assert!(!bad_reference.ok);
    assert!(bad_reference.error.as_ref().unwrap().contains("reference"));

    client.close();
    server.shutdown();
}

#[test]
fn concurrent_clients_executing_share_one_reference_run() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let addr = server.addr();
    let sandbox = wfspeak_core::exec::SandboxConfig::default();
    let system = WorkflowSystemId::Henson;
    let reference = configuration_reference(system).unwrap();
    let summary = reference_summary(&sandbox, system, reference);
    let (summary, sandbox) = (&summary, &sandbox);

    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(move || {
                let mut client = ScoringClient::connect(addr).unwrap();
                for _ in 0..3 {
                    let responses = responses_for(reference);
                    let response = client.execute(system.name(), responses.clone()).unwrap();
                    assert!(response.ok, "{:?}", response.error);
                    assert_executions_bit_identical(
                        &response.executions,
                        sandbox,
                        system,
                        summary,
                        &responses,
                        "concurrent execute",
                    );
                }
                client.close();
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.requests, 9);
    assert_eq!(stats.hypotheses, 45);
    server.shutdown();
}
