//! Regression test for the slow-reader stall-timeout path: a client that
//! pipelines requests but never reads responses must be disconnected after
//! [`ServiceConfig::reply_stall_timeout`] instead of wedging the shared
//! worker pool.  Described since PR 2; pinned here for the first time.

use std::time::{Duration, Instant};

use wfspeak_service::{ScoreRequest, ScoringClient, ScoringServer, ServiceConfig, TaskKind};

#[test]
fn slow_reader_is_disconnected_and_the_pool_keeps_serving_others() {
    // Tiny reply buffer + short stall window so the test triggers the path
    // quickly; big response batches so the kernel's socket buffers fill
    // long before the workload is drained.
    let server = ScoringServer::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            reply_queue_depth: 1,
            reply_stall_timeout: Duration::from_millis(250),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // The stalling client: pipeline many large-batch requests, read nothing.
    // Each response carries one score pair per hypothesis, so 8192
    // hypotheses ≈ hundreds of kilobytes per response line — far more than
    // the reply queue (1) plus socket buffers can absorb.
    let requests = 16usize;
    let batch = 8192usize;
    let mut stalling = ScoringClient::connect(addr).unwrap();
    for _ in 0..requests {
        let id = stalling.fresh_id();
        stalling
            .send(&ScoreRequest::by_text(
                id,
                "tasks:\n  - func: producer\n",
                vec!["x".to_owned(); batch],
            ))
            .unwrap();
    }

    // While the stalling client sits on its unread responses, a well-behaved
    // client on the same pool must keep getting answers (the stalled worker
    // frees itself after the timeout at the latest).
    let mut polite = ScoringClient::connect(addr).unwrap();
    let response = polite
        .score(TaskKind::Configuration, "Wilkins", vec!["tasks:".into()])
        .unwrap();
    assert!(response.ok);

    // Stay silent for several stall windows: a worker blocked on this
    // connection's full reply buffer must hit the timeout and disconnect us
    // while we are not reading.  (Draining immediately would clear the
    // stall and defeat the scenario.)
    std::thread::sleep(Duration::from_secs(2));

    // Once disconnected, the client drains whatever was already buffered
    // and then hits EOF/reset — well before all pipelined responses arrived.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut received = 0usize;
    let disconnected = loop {
        match stalling.recv() {
            Ok(response) => {
                assert!(response.ok, "{:?}", response.error);
                received += 1;
                if received == requests {
                    break false; // everything arrived: the stall never fired
                }
            }
            Err(_) => break true,
        }
        assert!(
            Instant::now() < deadline,
            "server neither disconnected the slow reader nor delivered everything"
        );
    };
    assert!(
        disconnected,
        "slow reader received all {requests} responses without being disconnected"
    );
    assert!(
        received < requests,
        "disconnect must cut the pipelined stream short, got {received}/{requests}"
    );

    // And the pool is still healthy afterwards.
    let response = polite
        .score(TaskKind::Configuration, "Wilkins", vec!["tasks:".into()])
        .unwrap();
    assert!(response.ok);
    polite.close();
    server.shutdown();
}

#[test]
fn clients_that_read_are_never_disconnected_by_the_stall_timeout() {
    // Sanity guard for the same config: an equally aggressive pipeline that
    // *does* read drains everything.
    let server = ScoringServer::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            reply_queue_depth: 1,
            reply_stall_timeout: Duration::from_millis(250),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();
    let requests = 16usize;
    let mut in_flight = Vec::new();
    for _ in 0..requests {
        let id = client.fresh_id();
        client
            .send(&ScoreRequest::by_text(
                id,
                "tasks:\n  - func: producer\n",
                vec!["x".to_owned(); 1024],
            ))
            .unwrap();
        in_flight.push(id);
        // Read every other response to stay inside the stall window.
        if in_flight.len() >= 2 {
            let response = client.recv().unwrap();
            assert!(response.ok);
            in_flight.retain(|&id| id != response.id);
        }
    }
    for response in client.collect(in_flight.len()).unwrap() {
        assert!(response.ok);
    }
    client.close();
    server.shutdown();
}
