//! End-to-end tests for the `evaluate` request: a real server on an
//! ephemeral port, pipelined clients, and the promise that served
//! evaluations are bit-identical to composing the pipeline stages —
//! `extract_code` → `compare_calls` → `Scorer::score_prepared` — directly
//! from their home crates.

use wfspeak_codemodel::{compare_calls, extract_code, CallComparison, Language};
use wfspeak_corpus::references::{annotation_reference, configuration_reference};
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};
use wfspeak_service::{
    EvaluationScore, ScoreRequest, ScoringClient, ScoringServer, ServiceConfig, TaskKind,
};
use wfspeak_systems::api::catalog_for;

/// Raw model responses with the failure modes the paper analyses: fenced
/// code, hallucinated API calls, prose margins, empty fences, truncation.
fn responses_for(reference: &str, system: WorkflowSystemId) -> Vec<String> {
    let hallucinated_call = match system {
        WorkflowSystemId::Henson => "henson_put(\"t\", t);",
        WorkflowSystemId::Adios2 => "adios2_write_array(engine, data);",
        WorkflowSystemId::PyCompss => "compss_sync_file(out)",
        WorkflowSystemId::Parsl => "parsl_submit(f)",
        WorkflowSystemId::Wilkins => "wilkins_dispatch(cfg)",
    };
    vec![
        format!("Here is the code you asked for:\n```\n{reference}\n```\nHope this helps!"),
        format!("```\n{hallucinated_call}\n{reference}\n```"),
        // The empty-fence-pair regression input: real payload after a stray
        // ``` ``` pair.
        format!("```\n```\n{reference}\n"),
        reference.chars().take(reference.len() / 2).collect(),
        "I could not generate code for that system.".to_owned(),
    ]
}

/// Compose the three pipeline stages by hand — the ground truth every
/// served evaluation must match bit for bit.
fn direct_evaluations(
    reference: &str,
    system: WorkflowSystemId,
    responses: &[String],
) -> Vec<(f64, f64, CallComparison)> {
    let bleu = BleuScorer::default();
    let chrf = ChrfScorer::default();
    let prepared_bleu = bleu.prepare(reference);
    let prepared_chrf = chrf.prepare(reference);
    let catalog = catalog_for(system);
    let language = if system.uses_python_tasks() {
        Language::Python
    } else {
        Language::C
    };
    responses
        .iter()
        .map(|response| {
            let code = extract_code(response);
            let comparison = compare_calls(
                &code,
                reference,
                language,
                &catalog.prefixes,
                &catalog.function_names(),
            );
            (
                bleu.score_prepared(&code, &prepared_bleu),
                chrf.score_prepared(&code, &prepared_chrf),
                comparison,
            )
        })
        .collect()
}

fn assert_evaluations_bit_identical(
    served: &[EvaluationScore],
    expected: &[(f64, f64, CallComparison)],
    context: &str,
) {
    assert_eq!(served.len(), expected.len(), "{context}");
    for (i, (evaluation, (bleu, chrf, comparison))) in served.iter().zip(expected).enumerate() {
        assert_eq!(
            evaluation.bleu.to_bits(),
            bleu.to_bits(),
            "{context}: response {i} BLEU {} vs {bleu}",
            evaluation.bleu
        );
        assert_eq!(
            evaluation.chrf.to_bits(),
            chrf.to_bits(),
            "{context}: response {i} ChrF {} vs {chrf}",
            evaluation.chrf
        );
        assert_eq!(evaluation.matched, comparison.matched, "{context}: {i}");
        assert_eq!(evaluation.missing, comparison.missing, "{context}: {i}");
        assert_eq!(evaluation.extra, comparison.extra, "{context}: {i}");
        assert_eq!(
            evaluation.hallucinated, comparison.hallucinated,
            "{context}: {i}"
        );
        assert_eq!(
            evaluation.call_recall.to_bits(),
            comparison.call_recall().to_bits(),
            "{context}: {i}"
        );
        assert_eq!(
            evaluation.call_precision.to_bits(),
            comparison.call_precision().to_bits(),
            "{context}: {i}"
        );
    }
}

#[test]
fn served_evaluations_match_direct_stage_composition() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();

    for system in WorkflowSystemId::annotation_systems() {
        let reference = annotation_reference(system).unwrap();
        let responses = responses_for(reference, system);
        let response = client
            .evaluate(TaskKind::Annotation, system.name(), responses.clone())
            .unwrap();
        assert!(response.ok, "{system}: {:?}", response.error);
        let expected = direct_evaluations(reference, system, &responses);
        assert_evaluations_bit_identical(
            &response.evaluations,
            &expected,
            &format!("annotation/{system}"),
        );
    }

    // Configuration references run the same pipeline (call comparison is
    // trivially empty for YAML payloads but must still be identical).
    for system in WorkflowSystemId::configuration_systems() {
        let reference = configuration_reference(system).unwrap();
        let responses = responses_for(reference, system);
        let response = client
            .evaluate(TaskKind::Configuration, system.name(), responses.clone())
            .unwrap();
        assert!(response.ok, "{system}: {:?}", response.error);
        let expected = direct_evaluations(reference, system, &responses);
        assert_evaluations_bit_identical(
            &response.evaluations,
            &expected,
            &format!("configuration/{system}"),
        );
    }

    client.close();
    server.shutdown();
}

#[test]
fn pipelined_evaluate_and_score_requests_share_a_connection() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client = ScoringClient::connect(server.addr()).unwrap();

    let system = WorkflowSystemId::Henson;
    let reference = annotation_reference(system).unwrap();
    let responses = responses_for(reference, system);

    // Pipeline: evaluate, score, evaluate-by-text, malformed mode — then
    // collect everything by id.
    let ids = [1u64, 2, 3, 4];
    client
        .send(&ScoreRequest::evaluate(
            1,
            TaskKind::Annotation,
            "Henson",
            responses.clone(),
        ))
        .unwrap();
    client
        .send(&ScoreRequest::by_id(
            2,
            TaskKind::Annotation,
            "Henson",
            responses.clone(),
        ))
        .unwrap();
    client
        .send(&ScoreRequest::evaluate_text(
            3,
            reference,
            "Henson",
            responses.clone(),
        ))
        .unwrap();
    client
        .send(&ScoreRequest {
            id: 4,
            mode: "banana".into(),
            reference_text: Some(reference.to_owned()),
            system: "Henson".into(),
            hypotheses: vec!["x".into()],
            ..ScoreRequest::default()
        })
        .unwrap();

    let by_id = client.collect_by_id(&ids).unwrap();
    let expected = direct_evaluations(reference, system, &responses);

    let evaluated = &by_id[&1];
    assert!(evaluated.ok);
    assert_evaluations_bit_identical(&evaluated.evaluations, &expected, "pipelined evaluate");

    let scored = &by_id[&2];
    assert!(scored.ok);
    assert!(scored.evaluations.is_empty());
    assert_eq!(scored.scores.len(), responses.len());
    // Score mode sees the raw response text (no extraction), so the fenced
    // variants score differently from their evaluated counterparts.
    let bleu = BleuScorer::default();
    assert_eq!(
        scored.scores[0].bleu.to_bits(),
        bleu.score(&responses[0], reference).to_bits()
    );

    let by_text = &by_id[&3];
    assert!(by_text.ok);
    assert_evaluations_bit_identical(&by_text.evaluations, &expected, "evaluate by text");

    let bad_mode = &by_id[&4];
    assert!(!bad_mode.ok);
    assert!(bad_mode.error.as_ref().unwrap().contains("banana"));

    client.close();
    server.shutdown();
}

#[test]
fn concurrent_clients_evaluating_share_one_prepared_reference() {
    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let addr = server.addr();
    let system = WorkflowSystemId::Adios2;
    let reference = annotation_reference(system).unwrap();

    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(move || {
                let mut client = ScoringClient::connect(addr).unwrap();
                for _ in 0..4 {
                    let responses = responses_for(reference, system);
                    let expected = direct_evaluations(reference, system, &responses);
                    let response = client
                        .evaluate(TaskKind::Annotation, system.name(), responses)
                        .unwrap();
                    assert!(response.ok, "{:?}", response.error);
                    assert_evaluations_bit_identical(
                        &response.evaluations,
                        &expected,
                        "concurrent evaluate",
                    );
                }
                client.close();
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.requests, 12);
    assert_eq!(stats.cache_misses, 1, "one shared preparation");
    assert_eq!(stats.cache_hits, 11);
    server.shutdown();
}
