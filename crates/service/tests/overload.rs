//! Regression test for bounded admission control: when the job queue is
//! full and the admission timeout elapses, the server sheds the request
//! with a typed `"overloaded"` protocol error instead of blocking the
//! reader — and the connection stays usable for later requests.

use std::time::{Duration, Instant};

use wfspeak_corpus::references::configuration_reference;
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_service::{ScoreRequest, ScoringClient, ScoringServer, ServiceConfig};

/// Poll until the server's connection table holds exactly `expected`
/// entries. Teardown is asynchronous — the event loop reaps a closed
/// socket on its next readiness pass — so a disconnect is observed with a
/// bounded wait, not a single read.
fn wait_for_live_connections(server: &ScoringServer, expected: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.live_connections() != expected {
        assert!(
            Instant::now() < deadline,
            "connection table stuck at {} entries (wanted {})",
            server.live_connections(),
            expected
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn full_queue_sheds_with_typed_overloaded_error() {
    let config = ServiceConfig {
        workers: 1,
        queue_depth: 1,
        admission_timeout: Duration::ZERO,
        ..ServiceConfig::default()
    };
    let server = ScoringServer::spawn("127.0.0.1:0", config).unwrap();
    let reference = configuration_reference(WorkflowSystemId::Wilkins).unwrap();

    // Client A sends a slow-scoring batch: hundreds of full-length
    // hypotheses pin the single worker for seconds.
    let mut busy = ScoringClient::connect(server.addr()).unwrap();
    busy.send(&ScoreRequest::by_text(
        1,
        reference,
        vec![reference.to_owned(); 512],
    ))
    .unwrap();

    // Wait (in-process, bypassing the TCP path) until the worker has
    // *started* the slow batch — `requests` increments at the top of
    // request handling, so from here the queue slot is free and the
    // worker is pinned for the rest of the batch.
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.stats().requests < 1 {
        assert!(
            Instant::now() < deadline,
            "worker never started the slow batch: {:?}",
            server.stats()
        );
        std::thread::yield_now();
    }

    // A second client's small request now parks in the only queue slot.
    // Waiting for the worker first matters: admission while the slow
    // batch still occupied the queue would shed *this* request instead.
    let mut parked = ScoringClient::connect(server.addr()).unwrap();
    parked
        .send(&ScoreRequest::by_text(
            2,
            reference,
            vec!["x".to_owned(); 16],
        ))
        .unwrap();
    while server.stats().queue_depth < 1 {
        assert!(
            Instant::now() < deadline,
            "job queue never filled: {:?}",
            server.stats()
        );
        std::thread::yield_now();
    }

    // Client B's request finds the queue full and is shed immediately
    // with the typed protocol error — not a disconnect, not a stall.
    let mut shed = ScoringClient::connect(server.addr()).unwrap();
    shed.send(&ScoreRequest::by_text(7, reference, vec!["x".to_owned()]))
        .unwrap();
    let response = shed.recv().unwrap();
    assert_eq!(response.id, 7);
    assert!(!response.ok);
    assert_eq!(response.error_kind.as_deref(), Some("overloaded"));
    let error = response
        .error
        .expect("overloaded response carries a message");
    assert!(error.contains("overloaded"), "{error}");
    assert!(error.contains("retry"), "{error}");
    assert!(response.scores.is_empty() && response.executions.is_empty());

    // The in-flight and parked requests were untouched by the shed.
    let slow = busy.recv().unwrap();
    assert_eq!(slow.id, 1);
    assert!(slow.ok, "{:?}", slow.error);
    let queued = parked.recv().unwrap();
    assert_eq!(queued.id, 2);
    assert!(queued.ok, "{:?}", queued.error);

    // The shed connection is still healthy: once the queue drains, the
    // same client gets real work through, and the wire-format stats
    // report the queue depth back at zero.
    let retried = shed
        .execute("Wilkins", vec!["not a config".to_owned()])
        .unwrap();
    assert!(retried.ok, "{:?}", retried.error);
    assert_eq!(retried.executions.len(), 1);
    let stats = shed.stats().unwrap();
    assert_eq!(stats.queue_depth, 0);

    // Shedding must not leak per-connection state: once every client
    // hangs up, the connection table drains back to zero.
    busy.close();
    parked.close();
    shed.close();
    wait_for_live_connections(&server, 0);
    server.shutdown();
}

/// A shed client that hangs up without ever reading its `"overloaded"`
/// reply must not leak anything: the undeliverable reply is discarded with
/// the connection, the queue slot it never held stays free, and the
/// server's counters come back to rest exactly as if the client had
/// behaved.
#[test]
fn shed_clients_that_disconnect_immediately_leak_nothing() {
    let config = ServiceConfig {
        workers: 1,
        queue_depth: 1,
        admission_timeout: Duration::ZERO,
        ..ServiceConfig::default()
    };
    let server = ScoringServer::spawn("127.0.0.1:0", config).unwrap();
    let reference = configuration_reference(WorkflowSystemId::Wilkins).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);

    // Pin the single worker with a slow batch, then park a second request
    // in the only queue slot (same choreography as the test above).
    let mut busy = ScoringClient::connect(server.addr()).unwrap();
    busy.send(&ScoreRequest::by_text(
        1,
        reference,
        vec![reference.to_owned(); 512],
    ))
    .unwrap();
    while server.stats().requests < 1 {
        assert!(Instant::now() < deadline, "worker never started");
        std::thread::yield_now();
    }
    let mut parked = ScoringClient::connect(server.addr()).unwrap();
    parked
        .send(&ScoreRequest::by_text(
            2,
            reference,
            vec!["x".to_owned(); 16],
        ))
        .unwrap();
    while server.stats().queue_depth < 1 {
        assert!(Instant::now() < deadline, "job queue never filled");
        std::thread::yield_now();
    }

    // Several impatient clients: each is shed, and each disconnects
    // without reading the overloaded reply. The writer thread discovers
    // the dead socket when it tries to deliver and tears the connection
    // down; nothing may leak into the job queue or block the pool.
    for round in 0..3u64 {
        let mut impatient = ScoringClient::connect(server.addr()).unwrap();
        impatient
            .send(&ScoreRequest::by_text(
                100 + round,
                reference,
                vec!["x".to_owned()],
            ))
            .unwrap();
        impatient.close();
    }

    // The impatient clients' connection-table entries are reaped as each
    // dead socket is discovered — only the two live clients remain.
    wait_for_live_connections(&server, 2);

    // The pinned and parked work is untouched by the churn.
    let slow = busy.recv().unwrap();
    assert!(slow.ok, "{:?}", slow.error);
    let queued = parked.recv().unwrap();
    assert!(queued.ok, "{:?}", queued.error);

    // At rest: no queued jobs left behind, no in-flight work, and the
    // request counter shows the shed requests never reached a worker.
    let stats = server.stats();
    assert_eq!(stats.queue_depth, 0, "shed requests must not leak jobs");
    assert_eq!(stats.requests, 2, "only the real batches were handled");

    // The pool still serves fresh connections.
    let mut probe = ScoringClient::connect(server.addr()).unwrap();
    let scored = probe.score_text(reference, vec!["x".to_owned()]).unwrap();
    assert!(scored.ok, "{:?}", scored.error);
    assert_eq!(probe.stats().unwrap().queue_depth, 0);

    // Every disconnect — the churned shed clients and the clean closes —
    // returns its connection-table entry; nothing is left at rest.
    busy.close();
    parked.close();
    probe.close();
    wait_for_live_connections(&server, 0);
    server.shutdown();
}
