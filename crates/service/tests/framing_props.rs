//! Property tests for the nonblocking server's frame reassembly.
//!
//! The event loop receives arbitrary read chunks — TCP is free to split a
//! frame at any byte, including mid-UTF-8-codepoint and mid-frame
//! ("torn") — and the [`FrameDecoder`] must reassemble exactly the frames
//! the blocking server's `BufRead::lines` reader saw. These properties
//! drive randomly generated request batches through the decoder under
//! adversarial chunkings and assert byte-identical reassembly against
//! [`encode_line`].

use proptest::prelude::*;
use wfspeak_service::protocol::{encode_line, ScoreRequest};
use wfspeak_service::FrameDecoder;

/// Strategy producing request-shaped lines (what the server actually
/// frames), including multi-byte UTF-8 in reference text and hypotheses so
/// chunk splits can land inside a codepoint.
fn request_lines() -> impl Strategy<Value = Vec<String>> {
    let text = prop_oneof![
        "[ -~]{0,24}",
        // Multi-byte UTF-8: accented Latin, CJK, and non-BMP emoji.
        proptest::collection::vec(
            prop_oneof![
                proptest::char::range('À', 'ω'),
                proptest::char::range('一', '口'),
                proptest::char::range('😀', '😏'),
            ],
            0..8
        )
        .prop_map(|chars| chars.into_iter().collect::<String>()),
    ];
    proptest::collection::vec((0u64..1000, text), 1..12).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(id, text)| {
                encode_line(&ScoreRequest::by_text(
                    id,
                    &format!("reference {text}"),
                    vec![text],
                ))
            })
            .collect()
    })
}

/// Cut points for the byte stream: a sorted subset of offsets where the
/// stream is torn into separate `push` calls.
fn chunkings(stream_len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..stream_len.max(1), 0..16).prop_map(|mut cuts| {
        cuts.sort_unstable();
        cuts.dedup();
        cuts
    })
}

/// Feed `stream` to a decoder split at `cuts`, collecting every frame in
/// order (with the EOF tail).
fn reassemble(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut start = 0;
    for &cut in cuts.iter().chain(std::iter::once(&stream.len())) {
        let cut = cut.min(stream.len());
        if cut > start {
            decoder.push(&stream[start..cut]);
            start = cut;
        }
        while let Some(frame) = decoder.next_frame() {
            frames.push(frame.to_vec());
        }
    }
    if let Some(tail) = decoder.finish() {
        frames.push(tail.to_vec());
    }
    frames
}

proptest! {
    // Any chunking of a request stream — including splits inside UTF-8
    // codepoints and mid-frame tears — reassembles into exactly the
    // encoded lines, byte for byte, in order.
    #[test]
    fn arbitrary_chunk_boundaries_reassemble_byte_identically(
        lines in request_lines(),
        cuts in proptest::collection::vec(0usize..4096, 0..16),
    ) {
        let stream: Vec<u8> = lines.iter().flat_map(|line| line.bytes()).collect();
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % stream.len().max(1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let frames = reassemble(&stream, &cuts);
        prop_assert_eq!(frames.len(), lines.len());
        for (frame, line) in frames.iter().zip(&lines) {
            // `encode_line` terminates with '\n'; the decoder strips it.
            prop_assert_eq!(frame.as_slice(), line.trim_end_matches('\n').as_bytes());
        }
    }

    // One byte at a time is the worst-case chunking; frames still come out
    // whole and the decoder's buffer drains completely.
    #[test]
    fn byte_at_a_time_streaming_loses_nothing(lines in request_lines()) {
        let stream: Vec<u8> = lines.iter().flat_map(|line| line.bytes()).collect();
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in &stream {
            decoder.push(std::slice::from_ref(byte));
            while let Some(frame) = decoder.next_frame() {
                frames.push(frame.to_vec());
            }
        }
        prop_assert!(decoder.finish().is_none(), "terminated lines leave no tail");
        prop_assert_eq!(decoder.buffered_len(), 0);
        prop_assert_eq!(frames.len(), lines.len());
        for (frame, line) in frames.iter().zip(&lines) {
            prop_assert_eq!(frame.as_slice(), line.trim_end_matches('\n').as_bytes());
        }
    }

    // A torn final frame (no trailing newline) surfaces at EOF exactly
    // like `BufRead::lines` yields a trailing unterminated line.
    #[test]
    fn torn_trailing_frames_surface_at_eof(
        lines in request_lines(),
        cuts in chunkings(4096),
        truncate in 1usize..64,
    ) {
        let mut stream: Vec<u8> = lines.iter().flat_map(|line| line.bytes()).collect();
        // Tear the final frame: drop 1..64 bytes from the end (always at
        // least the trailing newline).
        let cut_len = truncate.min(stream.len());
        stream.truncate(stream.len() - cut_len);
        let cuts: Vec<usize> = cuts.into_iter().map(|c| c % stream.len().max(1)).collect();
        let mut sorted = cuts;
        sorted.sort_unstable();
        sorted.dedup();
        let frames = reassemble(&stream, &sorted);
        // Expected: every line whose bytes fully survive, plus the torn
        // remainder of the first affected line (if any bytes remain).
        let mut expected: Vec<Vec<u8>> = Vec::new();
        let mut consumed = 0usize;
        for line in &lines {
            let bytes = line.as_bytes();
            if consumed + bytes.len() <= stream.len() {
                expected.push(bytes[..bytes.len() - 1].to_vec());
                consumed += bytes.len();
            } else {
                let remainder = &stream[consumed..];
                if !remainder.is_empty() {
                    expected.push(remainder.to_vec());
                }
                break;
            }
        }
        prop_assert_eq!(frames, expected);
    }
}
