//! Incremental newline-delimited frame assembly for the nonblocking server.
//!
//! The blocking server used [`BufRead::lines`] to carve the byte stream
//! into frames; the event loop instead receives arbitrary read chunks and
//! feeds them to a [`FrameDecoder`], which yields exactly the frames
//! `lines` would have yielded — newline-stripped, with a trailing `\r`
//! removed — without copying bytes more than once. Unread tail bytes stay
//! in the decoder's [`BytesMut`] between reads, and the scan for the next
//! `\n` resumes where the previous scan left off, so a frame split across
//! many TCP segments costs one pass over its bytes, not one per segment.
//!
//! [`BufRead::lines`]: std::io::BufRead::lines

use bytes::{Bytes, BytesMut};

/// Reassembles newline-delimited frames from arbitrary byte chunks.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
    /// Offset into `buf` up to which we have already scanned for `\n`.
    scanned: usize,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append a chunk read from the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pop the next complete frame, if one is buffered.
    ///
    /// A frame is everything up to (and excluding) the next `\n`; a `\r`
    /// immediately before the `\n` is stripped too, matching what
    /// [`BufRead::lines`](std::io::BufRead::lines) hands the blocking
    /// reader.
    pub fn next_frame(&mut self) -> Option<Bytes> {
        let newline = self.buf[self.scanned..]
            .iter()
            .position(|b| *b == b'\n')
            .map(|at| self.scanned + at);
        let Some(newline) = newline else {
            // Everything buffered has been scanned; resume there next push.
            self.scanned = self.buf.len();
            return None;
        };
        let end = if newline > 0 && self.buf[newline - 1] == b'\r' {
            newline - 1
        } else {
            newline
        };
        let frame = self.buf.split_to(newline + 1);
        self.scanned = 0;
        Some(Bytes::copy_from_slice(&frame[..end]))
    }

    /// Take the trailing unterminated frame at end-of-stream, if any.
    ///
    /// `BufRead::lines` yields a final line even when the peer closes the
    /// connection without a trailing newline; the event loop calls this on
    /// EOF so the two servers accept the same byte streams.
    pub fn finish(&mut self) -> Option<Bytes> {
        if self.buf.is_empty() {
            return None;
        }
        let frame = self.buf.split_to(self.buf.len());
        self.scanned = 0;
        let end = if frame.last() == Some(&b'\r') {
            frame.len() - 1
        } else {
            frame.len()
        };
        Some(Bytes::copy_from_slice(&frame[..end]))
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::FrameDecoder;

    #[test]
    fn yields_frames_split_across_pushes() {
        let mut decoder = FrameDecoder::new();
        decoder.push(b"hel");
        assert!(decoder.next_frame().is_none());
        decoder.push(b"lo\nwor");
        assert_eq!(&*decoder.next_frame().unwrap(), b"hello");
        assert!(decoder.next_frame().is_none());
        decoder.push(b"ld\n");
        assert_eq!(&*decoder.next_frame().unwrap(), b"world");
        assert!(decoder.next_frame().is_none());
        assert_eq!(decoder.buffered_len(), 0);
    }

    #[test]
    fn strips_carriage_returns_like_bufread_lines() {
        let mut decoder = FrameDecoder::new();
        decoder.push(b"a\r\nb\n\r\n");
        assert_eq!(&*decoder.next_frame().unwrap(), b"a");
        assert_eq!(&*decoder.next_frame().unwrap(), b"b");
        assert_eq!(&*decoder.next_frame().unwrap(), b"");
        assert!(decoder.next_frame().is_none());
    }

    #[test]
    fn finish_returns_the_unterminated_tail() {
        let mut decoder = FrameDecoder::new();
        decoder.push(b"done\ntail");
        assert_eq!(&*decoder.next_frame().unwrap(), b"done");
        assert!(decoder.next_frame().is_none());
        assert_eq!(&*decoder.finish().unwrap(), b"tail");
        assert!(decoder.finish().is_none());
    }

    #[test]
    fn empty_lines_are_frames() {
        let mut decoder = FrameDecoder::new();
        decoder.push(b"\n\nx\n");
        assert_eq!(&*decoder.next_frame().unwrap(), b"");
        assert_eq!(&*decoder.next_frame().unwrap(), b"");
        assert_eq!(&*decoder.next_frame().unwrap(), b"x");
    }

    #[test]
    fn scan_resumes_without_rescanning_the_prefix() {
        // Behavioural check: a long frame fed one byte at a time still
        // comes out whole (the scanned cursor is internal, but this is the
        // path that exercises it).
        let mut decoder = FrameDecoder::new();
        let payload = "x".repeat(4096);
        for byte in payload.as_bytes() {
            decoder.push(std::slice::from_ref(byte));
            assert!(decoder.next_frame().is_none());
        }
        decoder.push(b"\n");
        assert_eq!(&*decoder.next_frame().unwrap(), payload.as_bytes());
    }
}
