//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every line the client writes is one [`ScoreRequest`]; every line the
//! server writes back is one [`ScoreResponse`]. Requests carry a client
//! chosen `id` that is echoed verbatim in the response, so a client may
//! pipeline many requests on one connection and match responses out of
//! order (the worker pool does not guarantee completion order).
//!
//! A request names its reference either
//!
//! * **by id** — `task` + `system` (or the combined `reference_id` form
//!   `"task/system"`) select one of the paper's ground-truth artifacts,
//!   which the server caches in prepared form across *all* connections; or
//! * **by text** — `reference_text` carries an arbitrary reference, which is
//!   prepared through the same shared cache (repeat texts hit).
//!
//! A request's `mode` selects how hypotheses are processed: plain BLEU/ChrF
//! scoring (the default); `"evaluate"` — the full pipeline that strips
//! each raw model response down to its code payload, compares its API calls
//! against the reference (missing / extra / hallucinated) and then scores
//! it, answering with [`EvaluationScore`]s; or `"execute"` — dynamic
//! execution that parses each response's configuration into a workflow
//! spec, *runs* it on the runtime engine under a bounded sandbox and scores
//! runnability plus trace fidelity against the reference artifact's run,
//! answering with [`ExecutionScore`]s.
//!
//! The special task `"stats"` returns a [`ServiceStats`] snapshot instead of
//! scores.

use serde::{Deserialize, Serialize};
use wfspeak_corpus::references::{
    annotation_reference, configuration_reference, execution_reference, translation_reference,
};
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_metrics::CacheStats;

/// Default listen address for `repro serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// The experiment namespace a reference id lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Workflow configuration references (Table 1 systems).
    Configuration,
    /// Annotated producer task codes (Table 2 systems).
    Annotation,
    /// Translation targets (Table 3; identical to annotation references).
    Translation,
    /// Dynamic-execution references: the configuration file where one
    /// exists, the annotated producer code for Parsl/PyCOMPSs.  Every
    /// system resolves.
    Execution,
    /// Server statistics snapshot; carries no reference or hypotheses.
    Stats,
}

impl TaskKind {
    /// Parse a task name case-insensitively.
    pub fn parse(task: &str) -> Option<TaskKind> {
        match task.to_ascii_lowercase().as_str() {
            "configuration" | "config" => Some(TaskKind::Configuration),
            "annotation" | "annotate" => Some(TaskKind::Annotation),
            "translation" | "translate" => Some(TaskKind::Translation),
            "execution" | "execute" => Some(TaskKind::Execution),
            "stats" => Some(TaskKind::Stats),
            _ => None,
        }
    }

    /// The canonical wire name.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Configuration => "configuration",
            TaskKind::Annotation => "annotation",
            TaskKind::Translation => "translation",
            TaskKind::Execution => "execution",
            TaskKind::Stats => "stats",
        }
    }
}

/// How the server processes a request's hypotheses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMode {
    /// BLEU/ChrF only — hypotheses arrive pre-extracted (the default).
    Score,
    /// The full pipeline: each hypothesis is a *raw model response* taken
    /// through code extraction → API-call comparison → BLEU/ChrF.
    Evaluate,
    /// Dynamic execution: each hypothesis is a raw model response whose
    /// extracted configuration is parsed into a workflow spec and *run* on
    /// the runtime engine, scored against the reference artifact's run.
    Execute,
}

/// One scoring request: a batch of hypotheses scored against one reference.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ScoreRequest {
    /// Client-chosen request id, echoed in the response. Ids let a client
    /// pipeline requests and match responses arriving out of order.
    pub id: u64,
    /// Experiment namespace: `configuration`, `annotation`, `translation`,
    /// `execution` or `stats`. Ignored when `reference_id` is given.
    pub task: String,
    /// Workflow system whose ground-truth artifact is the reference (for
    /// `translation`, the *target* system). Ignored when `reference_id` or
    /// `reference_text` is given — except by `evaluate` requests, which
    /// always need a system for API-call comparison.
    pub system: String,
    /// Combined `"task/system"` reference address; overrides `task`/`system`.
    pub reference_id: Option<String>,
    /// Literal reference text; overrides every other addressing field.
    pub reference_text: Option<String>,
    /// Processing mode: empty or `"score"` for plain scoring, `"evaluate"`
    /// for the full extraction → comparison → scoring pipeline.
    pub mode: String,
    /// The hypotheses to score, in order. For `evaluate` requests these are
    /// raw model responses (fences and prose are stripped server-side).
    pub hypotheses: Vec<String>,
    /// Per-request deadline in milliseconds, measured server-side from
    /// admission to the job queue. A job still queued when its deadline
    /// expires is dropped before scoring and answered with a typed
    /// `error_kind: "deadline"` protocol error, so a backlogged server
    /// never burns workers on results the client has stopped waiting for.
    /// `None` (the default) means no deadline.
    pub deadline_ms: Option<u64>,
}

impl ScoreRequest {
    /// A batch request addressing a built-in reference by task + system.
    pub fn by_id(id: u64, task: TaskKind, system: &str, hypotheses: Vec<String>) -> Self {
        ScoreRequest {
            id,
            task: task.name().to_owned(),
            system: system.to_owned(),
            reference_id: None,
            reference_text: None,
            mode: String::new(),
            hypotheses,
            deadline_ms: None,
        }
    }

    /// The same request with a per-request deadline attached.
    pub fn with_deadline(self, deadline_ms: u64) -> Self {
        ScoreRequest {
            deadline_ms: Some(deadline_ms),
            ..self
        }
    }

    /// A batch request carrying its reference inline.
    pub fn by_text(id: u64, reference_text: &str, hypotheses: Vec<String>) -> Self {
        ScoreRequest {
            id,
            reference_text: Some(reference_text.to_owned()),
            hypotheses,
            ..ScoreRequest::default()
        }
    }

    /// A server-statistics request.
    pub fn stats(id: u64) -> Self {
        ScoreRequest {
            id,
            task: TaskKind::Stats.name().to_owned(),
            ..ScoreRequest::default()
        }
    }

    /// A full-pipeline request addressing a built-in reference: each entry
    /// of `responses` is a raw model response.
    pub fn evaluate(id: u64, task: TaskKind, system: &str, responses: Vec<String>) -> Self {
        ScoreRequest {
            mode: "evaluate".to_owned(),
            ..ScoreRequest::by_id(id, task, system, responses)
        }
    }

    /// A full-pipeline request carrying its reference inline; `system`
    /// still selects the API catalogue used for call comparison.
    pub fn evaluate_text(
        id: u64,
        reference_text: &str,
        system: &str,
        responses: Vec<String>,
    ) -> Self {
        ScoreRequest {
            system: system.to_owned(),
            mode: "evaluate".to_owned(),
            ..ScoreRequest::by_text(id, reference_text, responses)
        }
    }

    /// A dynamic-execution request addressing a built-in execution
    /// reference: each entry of `responses` is a raw model response whose
    /// extracted artifact will be run on the runtime engine.
    pub fn execute(id: u64, system: &str, responses: Vec<String>) -> Self {
        ScoreRequest {
            mode: "execute".to_owned(),
            ..ScoreRequest::by_id(id, TaskKind::Execution, system, responses)
        }
    }

    /// A dynamic-execution request carrying its reference configuration
    /// inline; `system` selects the configuration dialect both the
    /// reference and the responses are parsed as.
    pub fn execute_text(
        id: u64,
        reference_text: &str,
        system: &str,
        responses: Vec<String>,
    ) -> Self {
        ScoreRequest {
            system: system.to_owned(),
            mode: "execute".to_owned(),
            ..ScoreRequest::by_text(id, reference_text, responses)
        }
    }

    /// Parse the request's processing mode; `Err` carries the unknown name.
    pub fn resolve_mode(&self) -> Result<RequestMode, String> {
        match self.mode.to_ascii_lowercase().as_str() {
            "" | "score" => Ok(RequestMode::Score),
            "evaluate" => Ok(RequestMode::Evaluate),
            "execute" => Ok(RequestMode::Execute),
            other => Err(format!(
                "unknown mode `{other}` (expected score, evaluate or execute)"
            )),
        }
    }

    /// The workflow-system name this request addresses (from `reference_id`
    /// when present, else the `system` field); `None` when neither names one.
    pub fn resolve_system_name(&self) -> Option<&str> {
        match &self.reference_id {
            Some(reference_id) => reference_id.split_once('/').map(|(_, system)| system),
            None if self.system.is_empty() => None,
            None => Some(self.system.as_str()),
        }
    }

    /// Resolve the reference this request scores against.
    ///
    /// Returns `Ok(None)` for a `stats` request, `Ok(Some(text))` otherwise,
    /// or a human-readable error for an unknown task/system address.
    pub fn resolve_reference(&self) -> Result<Option<&str>, String> {
        if let Some(text) = &self.reference_text {
            return Ok(Some(text));
        }
        let (task_name, system_name) = match &self.reference_id {
            Some(reference_id) => reference_id
                .split_once('/')
                .ok_or_else(|| format!("reference_id `{reference_id}` is not `task/system`"))?,
            None => (self.task.as_str(), self.system.as_str()),
        };
        let task = TaskKind::parse(task_name).ok_or_else(|| {
            format!("unknown task `{task_name}` (expected configuration, annotation, translation, execution or stats)")
        })?;
        if task == TaskKind::Stats {
            return Ok(None);
        }
        let system = WorkflowSystemId::from_name(system_name)
            .ok_or_else(|| format!("unknown workflow system `{system_name}`"))?;
        let reference = match task {
            TaskKind::Configuration => configuration_reference(system),
            TaskKind::Annotation => annotation_reference(system),
            TaskKind::Translation => translation_reference(system),
            TaskKind::Execution => Some(execution_reference(system)),
            // Already handled by the early return above; answering again
            // (rather than `unreachable!`) keeps request addressing
            // panic-free even if that early return is refactored away.
            TaskKind::Stats => return Ok(None),
        };
        reference
            .map(Some)
            .ok_or_else(|| format!("system `{system_name}` has no {} reference", task.name()))
    }
}

// Hand-written so that absent / `null` fields fall back to their defaults:
// hand-rolled clients may send just `{"id": 1, "task": ..., "system": ...,
// "hypotheses": [...]}` without spelling out every optional field.
impl Deserialize for ScoreRequest {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field_or_default<T: Deserialize + Default>(
            value: &serde::Value,
            context: &str,
        ) -> Result<T, serde::Error> {
            if value.is_null() {
                Ok(T::default())
            } else {
                T::deserialize(value).map_err(|e| e.in_context(context))
            }
        }
        let obj = value
            .as_object_view()
            .ok_or_else(|| serde::Error::expected("object", "ScoreRequest"))?;
        Ok(ScoreRequest {
            id: field_or_default(obj.field("id"), "ScoreRequest.id")?,
            task: field_or_default(obj.field("task"), "ScoreRequest.task")?,
            system: field_or_default(obj.field("system"), "ScoreRequest.system")?,
            reference_id: field_or_default(obj.field("reference_id"), "ScoreRequest.reference_id")?,
            reference_text: field_or_default(
                obj.field("reference_text"),
                "ScoreRequest.reference_text",
            )?,
            mode: field_or_default(obj.field("mode"), "ScoreRequest.mode")?,
            hypotheses: field_or_default(obj.field("hypotheses"), "ScoreRequest.hypotheses")?,
            deadline_ms: field_or_default(obj.field("deadline_ms"), "ScoreRequest.deadline_ms")?,
        })
    }
}

/// BLEU and ChrF for one hypothesis, on the paper's 0–100 scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypothesisScore {
    /// sacrebleu-style BLEU.
    pub bleu: f64,
    /// Character n-gram F-score.
    pub chrf: f64,
}

/// The full-pipeline result for one raw model response: similarity scores
/// plus the API-call comparison of the extracted payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationScore {
    /// sacrebleu-style BLEU of the extracted payload.
    pub bleu: f64,
    /// Character n-gram F-score of the extracted payload.
    pub chrf: f64,
    /// Calls present in both payload and reference.
    pub matched: Vec<String>,
    /// Reference calls absent from the payload.
    pub missing: Vec<String>,
    /// Payload calls absent from the reference.
    pub extra: Vec<String>,
    /// Payload calls in the system's API family that do not exist — the
    /// paper's hallucination failure mode.
    pub hallucinated: Vec<String>,
    /// `matched / (matched + missing)`; 1.0 when the reference has no calls.
    pub call_recall: f64,
    /// `matched / (matched + extra)`; 1.0 when the payload has no calls.
    pub call_precision: f64,
}

impl EvaluationScore {
    /// Flatten a pipeline [`Evaluation`](wfspeak_core::eval::Evaluation)
    /// into its wire form (the extracted payload itself stays server-side).
    pub fn from_evaluation(evaluation: &wfspeak_core::eval::Evaluation) -> Self {
        EvaluationScore {
            bleu: evaluation.bleu,
            chrf: evaluation.chrf,
            matched: evaluation.calls.matched.clone(),
            missing: evaluation.calls.missing.clone(),
            extra: evaluation.calls.extra.clone(),
            hallucinated: evaluation.calls.hallucinated.clone(),
            call_recall: evaluation.calls.call_recall(),
            call_precision: evaluation.calls.call_precision(),
        }
    }
}

/// The dynamic-execution result for one raw model response: how far the
/// artifact made it through extract → parse → run, plus trace-fidelity
/// scoring against the reference artifact's run.
///
/// All fields come from deterministic counts (never wall-clock timings), so
/// served scores are bit-identical to in-process execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionScore {
    /// The artifact's structure parsed into a workflow spec.
    pub parsed: bool,
    /// The system's validating parser reported no schema errors.
    pub valid: bool,
    /// The spec passed structural validation and was normalized.
    pub validated: bool,
    /// The engine ran the spec within the sandbox caps.
    pub ran: bool,
    /// The run completed (every task finished, every message delivered).
    pub completed: bool,
    /// Runnability on a 0–100 scale (20 points per stage: parsed, valid,
    /// validated, ran, completed).
    pub runnability: f64,
    /// Trace fidelity vs the reference run, 0–100.
    pub trace_fidelity: f64,
    /// Tasks in the recovered spec.
    pub tasks: usize,
    /// Dataset messages published during the run.
    pub published: usize,
    /// Dataset messages received during the run.
    pub received: usize,
    /// Tasks that failed during the run.
    pub failed_tasks: usize,
    /// Every typed finding the pipeline produced, in stage order.
    pub diagnostics: Vec<WireDiagnostic>,
    /// The machine-readable kind that stopped this artifact (the wire code
    /// of the decisive diagnostic); `None` when the run completed.
    pub failure_kind: Option<String>,
    /// Why the pipeline stopped early, when it did (human-readable).
    pub error: Option<String>,
}

impl ExecutionScore {
    /// Flatten a pipeline [`ExecutionScore`](wfspeak_core::exec::ExecutionScore)
    /// into its wire form.
    pub fn from_execution(score: &wfspeak_core::exec::ExecutionScore) -> Self {
        ExecutionScore {
            parsed: score.parsed,
            valid: score.valid,
            validated: score.validated,
            ran: score.ran,
            completed: score.completed,
            runnability: score.runnability,
            trace_fidelity: score.trace_fidelity,
            tasks: score.tasks,
            published: score.published,
            received: score.received,
            failed_tasks: score.failed_tasks,
            diagnostics: score
                .diagnostics
                .iter()
                .map(WireDiagnostic::from_diagnostic)
                .collect(),
            failure_kind: score.failure_kind().map(str::to_owned),
            error: score.error.clone(),
        }
    }
}

/// The wire form of one typed diagnostic: flat strings and optional source
/// coordinates, mirroring [`wfspeak_systems::Diagnostic::wire_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireDiagnostic {
    /// Stable kebab-case kind code (e.g. `dangling-consume`).
    pub kind: String,
    /// `error`, `warning` or `info`.
    pub severity: String,
    /// Path into the artifact (task or field name), when known.
    pub path: Option<String>,
    /// 1-based source line, when known.
    pub line: Option<usize>,
    /// 1-based source column, when known.
    pub column: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl WireDiagnostic {
    /// Flatten a typed [`Diagnostic`](wfspeak_systems::Diagnostic) into its
    /// wire form.
    pub fn from_diagnostic(diagnostic: &wfspeak_systems::Diagnostic) -> Self {
        WireDiagnostic {
            kind: diagnostic.kind.code().to_owned(),
            severity: diagnostic.severity.label().to_owned(),
            path: diagnostic.path.clone(),
            line: diagnostic.line,
            column: diagnostic.column,
            message: diagnostic.message.clone(),
        }
    }
}

/// A snapshot of the server's lifetime counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Score requests processed (excluding `stats` requests).
    pub requests: u64,
    /// Hypotheses scored across all requests.
    pub hypotheses: u64,
    /// Prepared-reference cache hits across all connections.
    pub cache_hits: u64,
    /// Prepared-reference cache misses (first-time preparations).
    pub cache_misses: u64,
    /// Jobs sitting in the bounded queue right now (admitted but not yet
    /// picked up by a worker).
    pub queue_depth: u64,
    /// Worker-pool replacements: each panicking job is caught, answered
    /// with `error_kind: "internal"`, and the pool restores its worker —
    /// this counts those recoveries over the server's lifetime.
    pub worker_restarts: u64,
    /// Faults scheduled by the server's [`FaultPlan`](crate::FaultPlan)
    /// so far; always 0 when fault injection is disabled (the default).
    pub faults_injected: u64,
    /// Request latencies recorded so far (one per answered request,
    /// admission → reply handed to the connection's write path).
    pub latency_samples: u64,
    /// Median request latency in microseconds, reported as the upper bound
    /// of the power-of-two histogram bucket the median falls in (0 until
    /// the first request is answered).
    pub latency_p50_us: u64,
    /// 95th-percentile request latency in microseconds (bucket upper bound).
    pub latency_p95_us: u64,
    /// 99th-percentile request latency in microseconds (bucket upper bound).
    pub latency_p99_us: u64,
}

impl ServiceStats {
    /// Fraction of reference lookups served from the shared cache.
    pub fn cache_hit_rate(&self) -> f64 {
        CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
        }
        .hit_rate()
    }
}

/// One response line; `id` matches the triggering [`ScoreRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// The request id this response answers.
    pub id: u64,
    /// True when scoring succeeded; false when `error` explains the failure.
    pub ok: bool,
    /// Failure description; `None` on success.
    pub error: Option<String>,
    /// Machine-readable protocol-error class; `None` on success and for
    /// request-specific failures. `"overloaded"` means the server's bounded
    /// job queue was full and the request was shed — retry later.
    pub error_kind: Option<String>,
    /// Per-hypothesis scores, in request order. Empty on failure, for
    /// `stats` requests and for `evaluate` requests (which fill
    /// [`evaluations`](ScoreResponse::evaluations) instead).
    pub scores: Vec<HypothesisScore>,
    /// Per-response pipeline evaluations, in request order; filled only for
    /// `evaluate` requests.
    pub evaluations: Vec<EvaluationScore>,
    /// Per-response dynamic-execution scores, in request order; filled only
    /// for `execute` requests.
    pub executions: Vec<ExecutionScore>,
    /// Server counters; present only for `stats` requests.
    pub stats: Option<ServiceStats>,
}

impl ScoreResponse {
    /// A successful scoring response.
    pub fn success(id: u64, scores: Vec<HypothesisScore>) -> Self {
        ScoreResponse {
            id,
            ok: true,
            error: None,
            error_kind: None,
            scores,
            evaluations: Vec::new(),
            executions: Vec::new(),
            stats: None,
        }
    }

    /// A successful full-pipeline response.
    pub fn evaluated(id: u64, evaluations: Vec<EvaluationScore>) -> Self {
        ScoreResponse {
            id,
            ok: true,
            error: None,
            error_kind: None,
            scores: Vec::new(),
            evaluations,
            executions: Vec::new(),
            stats: None,
        }
    }

    /// A successful dynamic-execution response.
    pub fn executed(id: u64, executions: Vec<ExecutionScore>) -> Self {
        ScoreResponse {
            id,
            ok: true,
            error: None,
            error_kind: None,
            scores: Vec::new(),
            evaluations: Vec::new(),
            executions,
            stats: None,
        }
    }

    /// A failure response with a human-readable reason.
    pub fn failure(id: u64, error: impl Into<String>) -> Self {
        ScoreResponse {
            id,
            ok: false,
            error: Some(error.into()),
            error_kind: None,
            scores: Vec::new(),
            evaluations: Vec::new(),
            executions: Vec::new(),
            stats: None,
        }
    }

    /// A typed shed-load response: the bounded job queue was full and the
    /// request was rejected before any work started. Clients should back
    /// off and retry.
    pub fn overloaded(id: u64, queue_depth: usize) -> Self {
        ScoreResponse {
            error_kind: Some("overloaded".to_owned()),
            ..ScoreResponse::failure(
                id,
                format!("server overloaded: job queue full ({queue_depth} queued); retry later"),
            )
        }
    }

    /// A typed internal-error response: the job panicked while being
    /// handled. The worker pool caught the panic and recovered, so the
    /// connection survives; the request itself is answered with this
    /// terminal error instead of hanging.
    pub fn internal_error(id: u64, detail: &str) -> Self {
        ScoreResponse {
            error_kind: Some("internal".to_owned()),
            ..ScoreResponse::failure(
                id,
                format!("internal error: request handler panicked: {detail}"),
            )
        }
    }

    /// A typed deadline response: the job's
    /// [`deadline_ms`](ScoreRequest::deadline_ms) expired while it sat in
    /// the queue, so it was dropped before scoring.
    pub fn deadline_exceeded(id: u64, deadline_ms: u64, waited_ms: u64) -> Self {
        ScoreResponse {
            error_kind: Some("deadline".to_owned()),
            ..ScoreResponse::failure(
                id,
                format!(
                    "deadline of {deadline_ms}ms exceeded: request waited {waited_ms}ms \
                     before a worker picked it up"
                ),
            )
        }
    }

    /// A statistics-snapshot response.
    pub fn stats(id: u64, stats: ServiceStats) -> Self {
        ScoreResponse {
            id,
            ok: true,
            error: None,
            error_kind: None,
            scores: Vec::new(),
            evaluations: Vec::new(),
            executions: Vec::new(),
            stats: Some(stats),
        }
    }
}

/// Serialise a protocol message as one newline-terminated JSON line.
pub fn encode_line<T: Serialize>(message: &T) -> String {
    let mut line = serde_json::to_string(message).expect("protocol types serialise infallibly");
    line.push('\n');
    line
}

/// Parse one line into a protocol message.
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

/// Best-effort extraction of the request id from a line that failed full
/// deserialisation, so the error response still routes to the right request.
pub fn salvage_request_id(line: &str) -> u64 {
    serde_json::from_str::<serde::Value>(line.trim())
        .ok()
        .and_then(|v| v["id"].as_i64())
        .and_then(|id| u64::try_from(id).ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_kind_parses_case_insensitively() {
        assert_eq!(
            TaskKind::parse("Configuration"),
            Some(TaskKind::Configuration)
        );
        assert_eq!(TaskKind::parse("ANNOTATION"), Some(TaskKind::Annotation));
        assert_eq!(TaskKind::parse("translate"), Some(TaskKind::Translation));
        assert_eq!(TaskKind::parse("Execute"), Some(TaskKind::Execution));
        assert_eq!(TaskKind::parse("stats"), Some(TaskKind::Stats));
        assert_eq!(TaskKind::parse("nope"), None);
    }

    #[test]
    fn requests_round_trip_through_the_line_codec() {
        let request = ScoreRequest::by_id(
            7,
            TaskKind::Configuration,
            "Henson",
            vec!["hyp one".into(), "hyp\ntwo".into()],
        );
        let line = encode_line(&request);
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1, "newlines must be escaped");
        let decoded: ScoreRequest = decode_line(&line).unwrap();
        assert_eq!(decoded.id, 7);
        assert_eq!(decoded.task, "configuration");
        assert_eq!(decoded.system, "Henson");
        assert_eq!(decoded.hypotheses, request.hypotheses);
    }

    #[test]
    fn resolve_reference_covers_all_addressing_modes() {
        let by_id = ScoreRequest::by_id(1, TaskKind::Annotation, "Parsl", vec![]);
        assert!(by_id
            .resolve_reference()
            .unwrap()
            .unwrap()
            .contains("parsl"));

        let by_combined = ScoreRequest {
            id: 2,
            reference_id: Some("configuration/Wilkins".into()),
            ..ScoreRequest::default()
        };
        assert!(by_combined.resolve_reference().unwrap().is_some());

        let by_text = ScoreRequest::by_text(3, "custom ref", vec![]);
        assert_eq!(by_text.resolve_reference().unwrap(), Some("custom ref"));

        assert_eq!(ScoreRequest::stats(4).resolve_reference().unwrap(), None);
    }

    #[test]
    fn resolve_reference_reports_bad_addresses() {
        let bad_task = ScoreRequest {
            task: "tables".into(),
            ..ScoreRequest::default()
        };
        assert!(bad_task.resolve_reference().unwrap_err().contains("tables"));

        let bad_system = ScoreRequest::by_id(0, TaskKind::Configuration, "Slurm", vec![]);
        assert!(bad_system
            .resolve_reference()
            .unwrap_err()
            .contains("Slurm"));

        // Parsl has annotation/translation references but no configuration.
        let no_reference = ScoreRequest::by_id(0, TaskKind::Configuration, "Parsl", vec![]);
        assert!(no_reference.resolve_reference().is_err());

        let bad_combined = ScoreRequest {
            reference_id: Some("no-slash".into()),
            ..ScoreRequest::default()
        };
        assert!(bad_combined.resolve_reference().is_err());
    }

    #[test]
    fn responses_round_trip_with_float_precision() {
        let scores = vec![
            HypothesisScore {
                bleu: 100.0,
                chrf: 100.0,
            },
            HypothesisScore {
                bleu: 31.622776601683793,
                chrf: 0.0625,
            },
        ];
        let line = encode_line(&ScoreResponse::success(9, scores.clone()));
        let decoded: ScoreResponse = decode_line(&line).unwrap();
        assert!(decoded.ok);
        assert_eq!(decoded.id, 9);
        assert!(decoded.stats.is_none());
        for (sent, received) in scores.iter().zip(&decoded.scores) {
            assert_eq!(sent.bleu.to_bits(), received.bleu.to_bits());
            assert_eq!(sent.chrf.to_bits(), received.chrf.to_bits());
        }
    }

    #[test]
    fn evaluate_requests_round_trip_and_default_to_score_mode() {
        let request = ScoreRequest::evaluate(
            11,
            TaskKind::Annotation,
            "Henson",
            vec!["```c\nhenson_yield();\n```".into()],
        );
        assert_eq!(request.resolve_mode(), Ok(RequestMode::Evaluate));
        let decoded: ScoreRequest = decode_line(&encode_line(&request)).unwrap();
        assert_eq!(decoded.mode, "evaluate");
        assert_eq!(decoded.resolve_mode(), Ok(RequestMode::Evaluate));
        assert_eq!(decoded.resolve_system_name(), Some("Henson"));

        // Requests that never mention `mode` (hand-rolled clients, every
        // pre-existing caller) stay plain scoring requests.
        let sparse: ScoreRequest =
            decode_line(r#"{"task": "annotation", "system": "Parsl", "hypotheses": ["x"]}"#)
                .unwrap();
        assert_eq!(sparse.resolve_mode(), Ok(RequestMode::Score));
        assert!(ScoreRequest::default().resolve_mode() == Ok(RequestMode::Score));
        assert!(ScoreRequest {
            mode: "guess".into(),
            ..ScoreRequest::default()
        }
        .resolve_mode()
        .is_err());
    }

    #[test]
    fn resolve_system_name_prefers_reference_id() {
        let combined = ScoreRequest {
            system: "Henson".into(),
            reference_id: Some("configuration/Wilkins".into()),
            ..ScoreRequest::default()
        };
        assert_eq!(combined.resolve_system_name(), Some("Wilkins"));
        assert_eq!(ScoreRequest::default().resolve_system_name(), None);
    }

    #[test]
    fn evaluation_responses_round_trip_with_float_precision() {
        let evaluations = vec![EvaluationScore {
            bleu: 31.622776601683793,
            chrf: 0.0625,
            matched: vec!["henson_yield".into()],
            missing: vec!["henson_save_int".into()],
            extra: vec!["printf".into()],
            hallucinated: vec!["henson_put".into()],
            call_recall: 0.5,
            call_precision: 1.0 / 3.0,
        }];
        let line = encode_line(&ScoreResponse::evaluated(9, evaluations.clone()));
        let decoded: ScoreResponse = decode_line(&line).unwrap();
        assert!(decoded.ok);
        assert!(decoded.scores.is_empty());
        assert_eq!(decoded.evaluations.len(), 1);
        let (sent, received) = (&evaluations[0], &decoded.evaluations[0]);
        assert_eq!(sent.bleu.to_bits(), received.bleu.to_bits());
        assert_eq!(sent.chrf.to_bits(), received.chrf.to_bits());
        assert_eq!(
            sent.call_precision.to_bits(),
            received.call_precision.to_bits()
        );
        assert_eq!(sent.matched, received.matched);
        assert_eq!(sent.hallucinated, received.hallucinated);
    }

    #[test]
    fn execution_responses_round_trip_with_float_precision() {
        let executions = vec![ExecutionScore {
            parsed: true,
            valid: true,
            validated: true,
            ran: true,
            completed: false,
            runnability: 80.0,
            trace_fidelity: 31.622776601683793,
            tasks: 3,
            published: 6,
            received: 4,
            failed_tasks: 1,
            diagnostics: vec![WireDiagnostic {
                kind: "incomplete-run".into(),
                severity: "warning".into(),
                path: Some("consumer2".into()),
                line: Some(4),
                column: Some(3),
                message: "run did not complete: 1 task(s) failed".into(),
            }],
            failure_kind: Some("incomplete-run".into()),
            error: Some("consumer2: receive of `particles` timed out".into()),
        }];
        let line = encode_line(&ScoreResponse::executed(12, executions.clone()));
        let decoded: ScoreResponse = decode_line(&line).unwrap();
        assert!(decoded.ok);
        assert!(decoded.scores.is_empty() && decoded.evaluations.is_empty());
        assert_eq!(decoded.executions.len(), 1);
        let (sent, received) = (&executions[0], &decoded.executions[0]);
        assert_eq!(
            sent.trace_fidelity.to_bits(),
            received.trace_fidelity.to_bits()
        );
        assert_eq!(sent.runnability.to_bits(), received.runnability.to_bits());
        assert_eq!(sent, received);
    }

    #[test]
    fn execute_requests_resolve_their_mode_and_system() {
        let request = ScoreRequest::execute(3, "Wilkins", vec!["tasks: []".into()]);
        assert_eq!(request.resolve_mode(), Ok(RequestMode::Execute));
        assert_eq!(request.task, "execution");
        let decoded: ScoreRequest = decode_line(&encode_line(&request)).unwrap();
        assert_eq!(decoded.resolve_mode(), Ok(RequestMode::Execute));
        assert_eq!(decoded.resolve_system_name(), Some("Wilkins"));

        let inline = ScoreRequest::execute_text(4, "tasks: []", "Wilkins", vec![]);
        assert_eq!(inline.resolve_mode(), Ok(RequestMode::Execute));
        assert_eq!(inline.resolve_reference().unwrap(), Some("tasks: []"));
    }

    #[test]
    fn execution_references_resolve_for_every_system() {
        // Unlike `configuration` (no Parsl/PyCOMPSs entry), the execution
        // namespace covers the whole five-system grid.
        for system in WorkflowSystemId::execution_systems() {
            let request = ScoreRequest::execute(1, system.name(), vec![]);
            let reference = request.resolve_reference().unwrap();
            assert!(
                reference.is_some_and(|r| !r.is_empty()),
                "{} has no execution reference",
                system.name()
            );
        }
    }

    #[test]
    fn stats_responses_carry_the_snapshot() {
        let stats = ServiceStats {
            requests: 10,
            hypotheses: 40,
            cache_hits: 9,
            cache_misses: 1,
            queue_depth: 3,
            worker_restarts: 2,
            faults_injected: 5,
            latency_samples: 10,
            latency_p50_us: 255,
            latency_p95_us: 1023,
            latency_p99_us: 4095,
        };
        let line = encode_line(&ScoreResponse::stats(1, stats));
        let decoded: ScoreResponse = decode_line(&line).unwrap();
        let snapshot = decoded.stats.expect("stats present");
        assert_eq!(snapshot.requests, 10);
        assert_eq!(snapshot.queue_depth, 3);
        assert_eq!(snapshot.worker_restarts, 2);
        assert_eq!(snapshot.faults_injected, 5);
        assert_eq!(snapshot.latency_samples, 10);
        assert_eq!(snapshot.latency_p50_us, 255);
        assert_eq!(snapshot.latency_p95_us, 1023);
        assert_eq!(snapshot.latency_p99_us, 4095);
        assert!((snapshot.cache_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn internal_and_deadline_responses_carry_typed_error_kinds() {
        let internal: ScoreResponse =
            decode_line(&encode_line(&ScoreResponse::internal_error(3, "boom"))).unwrap();
        assert!(!internal.ok);
        assert_eq!(internal.error_kind.as_deref(), Some("internal"));
        assert!(internal.error.unwrap().contains("boom"));

        let expired: ScoreResponse =
            decode_line(&encode_line(&ScoreResponse::deadline_exceeded(4, 250, 300))).unwrap();
        assert!(!expired.ok);
        assert_eq!(expired.id, 4);
        assert_eq!(expired.error_kind.as_deref(), Some("deadline"));
        let message = expired.error.unwrap();
        assert!(
            message.contains("250ms") && message.contains("300ms"),
            "{message}"
        );
    }

    #[test]
    fn deadlines_ride_the_wire_and_default_to_none() {
        let request = ScoreRequest::by_text(5, "ref", vec!["x".into()]).with_deadline(750);
        let decoded: ScoreRequest = decode_line(&encode_line(&request)).unwrap();
        assert_eq!(decoded.deadline_ms, Some(750));

        // Hand-rolled clients that never mention the field get no deadline.
        let sparse: ScoreRequest =
            decode_line(r#"{"id": 1, "reference_text": "ref", "hypotheses": ["x"]}"#).unwrap();
        assert_eq!(sparse.deadline_ms, None);
    }

    #[test]
    fn overloaded_responses_carry_a_typed_error_kind() {
        let line = encode_line(&ScoreResponse::overloaded(17, 4));
        let decoded: ScoreResponse = decode_line(&line).unwrap();
        assert!(!decoded.ok);
        assert_eq!(decoded.id, 17);
        assert_eq!(decoded.error_kind.as_deref(), Some("overloaded"));
        assert!(decoded.error.unwrap().contains("retry"));
        // Ordinary failures stay untyped: `error_kind` is reserved for
        // protocol-level conditions clients dispatch on.
        assert!(ScoreResponse::failure(1, "bad request")
            .error_kind
            .is_none());
    }

    #[test]
    fn sparse_hand_written_requests_decode_with_defaults() {
        let decoded: ScoreRequest =
            decode_line(r#"{"task": "annotation", "system": "Parsl", "hypotheses": ["x"]}"#)
                .unwrap();
        assert_eq!(decoded.id, 0);
        assert_eq!(decoded.task, "annotation");
        assert!(decoded.reference_id.is_none());
        assert!(decoded.reference_text.is_none());
        assert_eq!(decoded.hypotheses, vec!["x".to_string()]);

        let err = decode_line::<ScoreRequest>(r#"{"hypotheses": "not an array"}"#).unwrap_err();
        assert!(err.contains("hypotheses"), "{err}");
    }

    #[test]
    fn salvage_request_id_recovers_ids_from_malformed_requests() {
        assert_eq!(salvage_request_id(r#"{"id": 42, "task": 3}"#), 42);
        assert_eq!(salvage_request_id("not json"), 0);
        assert_eq!(salvage_request_id(r#"{"id": -1}"#), 0);
    }
}
