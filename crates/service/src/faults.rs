//! Deterministic fault injection for chaos testing the service.
//!
//! A [`FaultPlan`] describes *which* faults a server may inject and *how
//! often*; a [`FaultInjector`] turns the plan into a reproducible schedule:
//! every job the worker pool dequeues draws the next value of a request
//! counter, and the (seed, counter) pair is hashed — never wall-clock
//! randomness — into at most one [`FaultAction`]. Two servers built from
//! the same plan inject exactly the same fault sequence, so every chaos run
//! replays from its seed (`repro chaos` pins this).
//!
//! Faults are **off by default**: [`ServiceConfig`](crate::ServiceConfig)
//! carries `faults: None` unless a harness opts in, and the golden snapshot
//! tests pin that the plumbing is invisible when disabled.
//!
//! The injectable faults mirror the real-world failure domains of a
//! line-oriented TCP service:
//!
//! | Fault | What the client observes |
//! |---|---|
//! | [`FaultAction::WorkerPanic`] | a typed `error_kind: "internal"` response (the job panicked under `catch_unwind`; the pool replaces the worker) |
//! | [`WriteFault::Torn`] | the response line arrives in two TCP writes (frame reassembly must cope) |
//! | [`WriteFault::Delay`] | the response is late by a bounded, deterministic number of milliseconds |
//! | [`WriteFault::Drop`] | the response never arrives (clients need deadlines/retries) |
//! | [`WriteFault::Disconnect`] | a partial frame, then mid-request EOF (connection-lost handling + reconnect) |

use std::sync::atomic::{AtomicU64, Ordering};

/// Rates and seed for one deterministic fault schedule.
///
/// Each `*_per_1024` field is the probability numerator out of 1024 that a
/// given request draws that fault; the rates are applied as **disjoint
/// ranges** of the hash, so a request suffers at most one fault and the
/// rates must sum to ≤ 1024 ([`FaultPlan::validate`] checks this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every per-request hash; the whole schedule replays
    /// from it.
    pub seed: u64,
    /// Rate of injected worker panics (caught, answered as `"internal"`).
    pub worker_panic_per_1024: u16,
    /// Rate of mid-request disconnects (partial frame, then EOF).
    pub disconnect_per_1024: u16,
    /// Rate of silently dropped response writes.
    pub dropped_write_per_1024: u16,
    /// Rate of torn frames (response written in two flushes).
    pub torn_frame_per_1024: u16,
    /// Rate of delayed response writes.
    pub delayed_write_per_1024: u16,
    /// Upper bound (exclusive of 0: delays are `1..=max`) on injected write
    /// delays, in milliseconds. The delay length is derived from the same
    /// hash, so it too replays deterministically.
    pub max_delay_ms: u64,
}

impl FaultPlan {
    /// The mixed chaos preset used by `repro chaos`: every fault class
    /// enabled at single-digit-percent rates.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            worker_panic_per_1024: 48,  // ~4.7%
            disconnect_per_1024: 48,    // ~4.7%
            dropped_write_per_1024: 32, // ~3.1%
            torn_frame_per_1024: 96,    // ~9.4%
            delayed_write_per_1024: 96, // ~9.4%
            max_delay_ms: 15,
        }
    }

    /// A plan that injects nothing; useful as a baseline in sweeps.
    pub fn disabled(seed: u64) -> Self {
        FaultPlan {
            seed,
            worker_panic_per_1024: 0,
            disconnect_per_1024: 0,
            dropped_write_per_1024: 0,
            torn_frame_per_1024: 0,
            delayed_write_per_1024: 0,
            max_delay_ms: 0,
        }
    }

    /// Check the rates fit in the hash range (sum ≤ 1024), so the disjoint
    /// range mapping in [`FaultInjector`] stays well defined.
    pub fn validate(&self) -> Result<(), String> {
        let total = u64::from(self.worker_panic_per_1024)
            + u64::from(self.disconnect_per_1024)
            + u64::from(self.dropped_write_per_1024)
            + u64::from(self.torn_frame_per_1024)
            + u64::from(self.delayed_write_per_1024);
        if total > 1024 {
            return Err(format!(
                "fault rates sum to {total}/1024; they must sum to at most 1024"
            ));
        }
        Ok(())
    }
}

/// A write-path fault the connection's writer thread applies to one
/// response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write the line in two flushes split at a deterministic byte offset
    /// fraction (0–99, scaled to the line length at write time).
    Torn { split_percent: u8 },
    /// Sleep this many milliseconds before writing the line.
    Delay { millis: u64 },
    /// Never write the line.
    Drop,
    /// Write a deterministic prefix of the line (same percent scaling as
    /// [`WriteFault::Torn`]), then shut the socket down mid-frame.
    Disconnect { truncate_percent: u8 },
}

/// The fault (if any) scheduled for one dequeued job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: the job runs and replies normally.
    None,
    /// Panic inside the worker while handling the job.
    WorkerPanic,
    /// Apply a fault to the response write.
    Write(WriteFault),
}

impl FaultAction {
    /// The write-path component of this action, if it has one.
    pub fn write_fault(&self) -> Option<WriteFault> {
        match self {
            FaultAction::Write(fault) => Some(*fault),
            FaultAction::None | FaultAction::WorkerPanic => None,
        }
    }
}

/// SplitMix64: a tiny, well-mixed hash/PRNG step. Distinct from the
/// vendored `rand` on purpose — the injector must never share (and thereby
/// disturb) an experiment's seeded RNG streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A [`FaultPlan`] bound to a live request counter.
///
/// [`next_action`](FaultInjector::next_action) is the only way the counter
/// advances, and the worker pool calls it exactly once per dequeued job, so
/// the Nth job a server processes always draws the Nth schedule entry.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    counter: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Bind a validated plan; rejects rate sums over 1024.
    pub fn new(plan: FaultPlan) -> Result<Self, String> {
        plan.validate()?;
        Ok(FaultInjector {
            plan,
            counter: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Faults scheduled so far (every non-[`FaultAction::None`] draw).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Draw the schedule entry for the next request counter value.
    pub fn next_action(&self) -> FaultAction {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let action = self.action_at(n);
        if action != FaultAction::None {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }

    /// The pure schedule: what fault (if any) fires at counter value `n`.
    /// Exposed so tests and harnesses can predict a seed's schedule without
    /// running a server.
    pub fn action_at(&self, n: u64) -> FaultAction {
        let hash = splitmix64(self.plan.seed ^ splitmix64(n));
        let draw = (hash % 1024) as u16;
        // Secondary entropy for fault parameters, independent of the draw.
        let param = splitmix64(hash);
        let plan = &self.plan;
        let mut threshold = plan.worker_panic_per_1024;
        if draw < threshold {
            return FaultAction::WorkerPanic;
        }
        threshold += plan.disconnect_per_1024;
        if draw < threshold {
            return FaultAction::Write(WriteFault::Disconnect {
                truncate_percent: (param % 100) as u8,
            });
        }
        threshold += plan.dropped_write_per_1024;
        if draw < threshold {
            return FaultAction::Write(WriteFault::Drop);
        }
        threshold += plan.torn_frame_per_1024;
        if draw < threshold {
            return FaultAction::Write(WriteFault::Torn {
                split_percent: (param % 100) as u8,
            });
        }
        threshold += plan.delayed_write_per_1024;
        if draw < threshold {
            let millis = 1 + param % plan.max_delay_ms.max(1);
            return FaultAction::Write(WriteFault::Delay { millis });
        }
        FaultAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let a = FaultInjector::new(FaultPlan::chaos(42)).unwrap();
        let b = FaultInjector::new(FaultPlan::chaos(42)).unwrap();
        let schedule_a: Vec<FaultAction> = (0..512).map(|_| a.next_action()).collect();
        let schedule_b: Vec<FaultAction> = (0..512).map(|_| b.next_action()).collect();
        assert_eq!(schedule_a, schedule_b);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "chaos preset injects at these lengths");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultInjector::new(FaultPlan::chaos(1)).unwrap();
        let b = FaultInjector::new(FaultPlan::chaos(2)).unwrap();
        let schedule_a: Vec<FaultAction> = (0..512).map(|n| a.action_at(n)).collect();
        let schedule_b: Vec<FaultAction> = (0..512).map(|n| b.action_at(n)).collect();
        assert_ne!(schedule_a, schedule_b);
    }

    #[test]
    fn next_action_advances_through_action_at_in_order() {
        let injector = FaultInjector::new(FaultPlan::chaos(7)).unwrap();
        let predicted: Vec<FaultAction> = (0..64).map(|n| injector.action_at(n)).collect();
        let drawn: Vec<FaultAction> = (0..64).map(|_| injector.next_action()).collect();
        assert_eq!(predicted, drawn);
    }

    #[test]
    fn disabled_plan_never_injects() {
        let injector = FaultInjector::new(FaultPlan::disabled(9)).unwrap();
        for _ in 0..2048 {
            assert_eq!(injector.next_action(), FaultAction::None);
        }
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn every_fault_class_fires_under_the_chaos_preset() {
        let injector = FaultInjector::new(FaultPlan::chaos(3)).unwrap();
        let mut panic = 0;
        let mut disconnect = 0;
        let mut drop = 0;
        let mut torn = 0;
        let mut delay = 0;
        let mut none = 0;
        for n in 0..4096 {
            match injector.action_at(n) {
                FaultAction::WorkerPanic => panic += 1,
                FaultAction::Write(WriteFault::Disconnect { .. }) => disconnect += 1,
                FaultAction::Write(WriteFault::Drop) => drop += 1,
                FaultAction::Write(WriteFault::Torn { .. }) => torn += 1,
                FaultAction::Write(WriteFault::Delay { millis }) => {
                    assert!(millis >= 1 && millis <= FaultPlan::chaos(3).max_delay_ms);
                    delay += 1;
                }
                FaultAction::None => none += 1,
            }
        }
        assert!(panic > 0 && disconnect > 0 && drop > 0 && torn > 0 && delay > 0);
        assert!(none > 2048, "most requests stay clean: {none}");
    }

    #[test]
    fn oversubscribed_rates_are_rejected() {
        let plan = FaultPlan {
            worker_panic_per_1024: 1000,
            torn_frame_per_1024: 1000,
            ..FaultPlan::chaos(0)
        };
        assert!(plan.validate().is_err());
        assert!(FaultInjector::new(plan).is_err());
    }
}
