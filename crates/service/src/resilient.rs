//! A fault-tolerant client: reconnect, deterministic backoff and retry of
//! idempotent requests.
//!
//! [`ScoringClient`] is a thin pipe — any transport failure surfaces as an
//! error and the connection is dead. [`ResilientClient`] wraps it with the
//! recovery policy a real deployment needs:
//!
//! * **Reconnect** — a connection-lost error (abrupt EOF, torn frame,
//!   refused connect) drops the connection and dials again.
//! * **Deterministic capped exponential backoff** — attempt `n` waits
//!   `base × 2ⁿ` capped at [`RetryPolicy::backoff_cap`]. No jitter and no
//!   wall-clock randomness: a replayed chaos run retries at the same
//!   points.
//! * **Retry of idempotent requests** — every protocol request is a pure
//!   function of its payload (scoring, evaluation and execution are
//!   deterministic and the server holds no per-request state), so resending
//!   after a transport failure or a typed `"overloaded"` shed is always
//!   safe. Typed terminal errors (`"internal"`, `"deadline"`, malformed
//!   request) are **not** retried: the server answered, the answer is the
//!   result.
//! * **Deadlines** — [`RetryPolicy::deadline_ms`] rides every request on
//!   the wire (the server drops expired queued jobs) and doubles as the
//!   per-attempt read timeout, so a dropped response can never hang the
//!   client.
//!
//! `repro score/evaluate/execute --retries N --deadline-ms MS` and the
//! `repro chaos` harness front this client.

use std::net::ToSocketAddrs;
use std::time::Duration;

use crate::client::ScoringClient;
use crate::protocol::{ScoreRequest, ScoreResponse, ServiceStats};

/// Retry/deadline tunables for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail on the first transport
    /// error, like a plain client).
    pub retries: u32,
    /// Per-request deadline in milliseconds, propagated on the wire and
    /// used as the per-attempt read timeout. `None` applies
    /// [`RetryPolicy::DEFAULT_READ_TIMEOUT`] locally but sends no deadline.
    pub deadline_ms: Option<u64>,
    /// First backoff step; attempt `n` (0-based) waits `base × 2ⁿ`.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: Duration,
}

impl RetryPolicy {
    /// Read timeout applied when no deadline is configured, so a dropped
    /// response still cannot hang an attempt forever.
    pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(2);

    /// The backoff wait before retry attempt `attempt` (0-based), capped.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(factor)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap)
    }

    /// The per-attempt read timeout: the deadline when one is set, the
    /// default otherwise.
    fn read_timeout(&self) -> Duration {
        self.deadline_ms
            .map(|ms| Duration::from_millis(ms.max(1)))
            .unwrap_or(Self::DEFAULT_READ_TIMEOUT)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            deadline_ms: None,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

/// Every attempt failed at the transport level; the request never reached a
/// terminal answer.
#[derive(Debug)]
pub struct RetriesExhausted {
    /// Attempts made (first try + retries).
    pub attempts: u32,
    /// The transport error from the final attempt.
    pub last_error: std::io::Error,
}

impl std::fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request failed after {} attempt(s): {}",
            self.attempts, self.last_error
        )
    }
}

impl std::error::Error for RetriesExhausted {}

impl From<RetriesExhausted> for std::io::Error {
    fn from(e: RetriesExhausted) -> Self {
        std::io::Error::new(e.last_error.kind(), e.to_string())
    }
}

/// A reconnecting, retrying call/response client.
///
/// Connections are dialled lazily and redialled (with backoff) after any
/// transport failure; see the [module docs](self) for the policy.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    inner: Option<ScoringClient>,
    next_id: u64,
}

impl ResilientClient {
    /// Create a client for `addr` (dialled on first use).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        ResilientClient {
            addr: addr.into(),
            policy,
            inner: None,
            next_id: 1,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The next fresh request id (each call advances the counter).
    pub fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn connected(&mut self) -> std::io::Result<&mut ScoringClient> {
        if self.inner.is_none() {
            let client = ScoringClient::connect(resolve(&self.addr)?)?;
            client.set_read_timeout(Some(self.policy.read_timeout()))?;
            self.inner = Some(client);
        }
        Ok(self.inner.as_mut().expect("connected above"))
    }

    /// One send/recv attempt. Any error invalidates the connection: even a
    /// timeout leaves an unanswered request (and possibly a partial frame)
    /// on the wire, so the next attempt starts from a fresh dial.
    fn attempt(&mut self, request: &ScoreRequest) -> std::io::Result<ScoreResponse> {
        let client = self.connected()?;
        let outcome = client.send(request).and_then(|()| {
            loop {
                let response = client.recv()?;
                // Stale answers from an earlier life of this id (possible
                // only with reused addresses) are skipped, not fatal.
                if response.id == request.id {
                    return Ok(response);
                }
            }
        });
        if outcome.is_err() {
            self.inner = None;
        }
        outcome
    }

    /// Send `request` until it reaches a terminal state: a successful
    /// response, a typed terminal protocol error, or exhausted retries.
    ///
    /// The policy's deadline is attached to the request (overriding only an
    /// unset `deadline_ms`). A typed `"overloaded"` shed backs off and
    /// retries like a transport failure — the server explicitly asked for
    /// exactly that.
    pub fn call(&mut self, mut request: ScoreRequest) -> Result<ScoreResponse, RetriesExhausted> {
        if request.deadline_ms.is_none() {
            request.deadline_ms = self.policy.deadline_ms;
        }
        let attempts = 1 + self.policy.retries;
        let mut last_error = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_delay(attempt - 1));
            }
            match self.attempt(&request) {
                Ok(response) if response.error_kind.as_deref() == Some("overloaded") => {
                    last_error = Some(std::io::Error::new(
                        std::io::ErrorKind::ResourceBusy,
                        response
                            .error
                            .unwrap_or_else(|| "server overloaded".to_owned()),
                    ));
                }
                Ok(response) => return Ok(response),
                Err(e) => last_error = Some(e),
            }
        }
        Err(RetriesExhausted {
            attempts,
            last_error: last_error.unwrap_or_else(|| std::io::Error::other("no attempts made")),
        })
    }

    /// Score a batch against an inline reference text.
    pub fn score_text(
        &mut self,
        reference_text: &str,
        hypotheses: Vec<String>,
    ) -> Result<ScoreResponse, RetriesExhausted> {
        let request = ScoreRequest::by_text(self.fresh_id(), reference_text, hypotheses);
        self.call(request)
    }

    /// Full-pipeline evaluation against an inline reference text.
    pub fn evaluate_text(
        &mut self,
        reference_text: &str,
        system: &str,
        responses: Vec<String>,
    ) -> Result<ScoreResponse, RetriesExhausted> {
        let request =
            ScoreRequest::evaluate_text(self.fresh_id(), reference_text, system, responses);
        self.call(request)
    }

    /// Dynamic execution against the built-in execution reference.
    pub fn execute(
        &mut self,
        system: &str,
        responses: Vec<String>,
    ) -> Result<ScoreResponse, RetriesExhausted> {
        let request = ScoreRequest::execute(self.fresh_id(), system, responses);
        self.call(request)
    }

    /// Fetch the server's lifetime counters.
    pub fn stats(&mut self) -> Result<ServiceStats, RetriesExhausted> {
        let request = ScoreRequest::stats(self.fresh_id());
        let response = self.call(request)?;
        response.stats.ok_or_else(|| RetriesExhausted {
            attempts: 1,
            last_error: std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stats response carried no stats",
            ),
        })
    }

    /// Drop the current connection (if any); the next call redials.
    pub fn disconnect(&mut self) {
        if let Some(client) = self.inner.take() {
            client.close();
        }
    }
}

/// Resolve an address string eagerly so a bad address is an error, not a
/// retry loop.
fn resolve(addr: &str) -> std::io::Result<std::net::SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("address `{addr}` resolved to nothing"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(75),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_delay(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_delay(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_delay(2), Duration::from_millis(40));
        assert_eq!(policy.backoff_delay(3), Duration::from_millis(75));
        assert_eq!(policy.backoff_delay(60), Duration::from_millis(75));
    }

    #[test]
    fn backoff_is_deterministic() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            assert_eq!(
                policy.backoff_delay(attempt),
                policy.backoff_delay(attempt),
                "no jitter: replayed runs must wait identically"
            );
        }
    }

    #[test]
    fn read_timeout_tracks_the_deadline() {
        let with = RetryPolicy {
            deadline_ms: Some(250),
            ..RetryPolicy::default()
        };
        assert_eq!(with.read_timeout(), Duration::from_millis(250));
        let without = RetryPolicy {
            deadline_ms: None,
            ..RetryPolicy::default()
        };
        assert_eq!(without.read_timeout(), RetryPolicy::DEFAULT_READ_TIMEOUT);
    }

    #[test]
    fn unreachable_servers_exhaust_retries_quickly() {
        // Port 1 on loopback: connection refused, immediately.
        let mut client = ResilientClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                retries: 2,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
        );
        let error = client.score_text("ref", vec!["x".to_owned()]).unwrap_err();
        assert_eq!(error.attempts, 3);
    }
}
