//! `wfspeak-service` — a long-running batch scoring server for the
//! reproduction's BLEU/ChrF metrics.
//!
//! The benchmark binary scores hypotheses in one-shot runs; this crate turns
//! the same scoring core into a network service so many clients can share
//! one warm process. Design points:
//!
//! * **Protocol** ([`protocol`]) — newline-delimited JSON over TCP. Clients
//!   write one [`ScoreRequest`] per line (`{id, task, system, reference_id |
//!   reference_text, hypotheses[]}`) and read back [`ScoreResponse`] lines
//!   tagged with the request id, so requests can be pipelined and answered
//!   out of order.
//! * **Shared reference cache** — the server keeps one
//!   [`ReferenceCache`](wfspeak_core::ReferenceCache) of prepared references
//!   (tokenised, interned, n-gram-counted once) across *all* connections;
//!   [`ServiceStats`] reports its hit rate.
//! * **Event-driven I/O** ([`server`], [`framing`]) — one nonblocking
//!   event-loop thread (or a few, `ServiceConfig::io_threads`) multiplexes
//!   every connection via the vendored `polling` shim (epoll/poll); each
//!   connection is a state machine assembling frames zero-copy with
//!   [`FrameDecoder`] over the vendored `bytes` crate, so thousands of
//!   connections cost table entries, not thread pairs.
//! * **Bounded worker pool** ([`server`]) — scoring runs on a fixed pool fed
//!   by a bounded queue; when the pool is saturated, the loop parks the
//!   connection's request and mutes its read interest, pushing backpressure
//!   into the clients' TCP windows instead of buffering unboundedly.
//! * **Latency percentiles** ([`latency`]) — workers record each request's
//!   admission→reply time in a lock-free power-of-two-bucket
//!   [`LatencyHistogram`]; `stats` responses surface p50/p95/p99.
//! * **Bit-identical scores** — the worker calls the exact
//!   [`Scorer::score_prepared`](wfspeak_metrics::Scorer::score_prepared)
//!   path the benchmark runner uses, so a score served over the wire equals
//!   the score computed in-process, bit for bit (the integration tests pin
//!   this).
//! * **Full-pipeline `evaluate` requests** — a request with
//!   `mode: "evaluate"` treats each hypothesis as a raw model response and
//!   runs extraction → API-call comparison → BLEU/ChrF
//!   ([`wfspeak_core::eval::evaluate_prepared`]) on the same worker pool
//!   with the same shared cache and backpressure rules, answering with
//!   [`EvaluationScore`]s that are bit-identical to composing the stages
//!   in-process.
//! * **Fault tolerance** ([`faults`], [`resilient`]) — workers run each
//!   job under `catch_unwind`, so a panicking request answers with a typed
//!   `error_kind: "internal"` response and the pool replaces the worker
//!   instead of dying; requests may carry a `deadline_ms` after which
//!   still-queued jobs are answered with `error_kind: "deadline"` instead
//!   of being scored late; shutdown drains in-flight work before
//!   force-disconnecting stragglers. For chaos testing, a seeded
//!   [`FaultPlan`] (off by default) makes the server deterministically
//!   inject torn/partial frames, delayed and dropped writes, mid-request
//!   disconnects and worker panics; [`ResilientClient`] is the matching
//!   client with reconnect, capped deterministic backoff and retry of
//!   idempotent requests (`repro chaos` sweeps seeds end to end).
//! * **Dynamic-execution `execute` requests** — a request with
//!   `mode: "execute"` treats each hypothesis as a raw model response whose
//!   configuration payload is parsed into a workflow spec and *run* on the
//!   `wfspeak-runtime` engine under a bounded sandbox
//!   ([`wfspeak_core::exec::execute_artifact`]); the answer's
//!   [`ExecutionScore`]s (runnability + trace fidelity against the
//!   reference artifact's own run) are derived from deterministic counts,
//!   so they too are bit-identical to in-process execution.  Reference runs
//!   are cached and shared across all connections.
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_service::{ScoringClient, ScoringServer, ServiceConfig, TaskKind};
//!
//! // Port 0 picks an ephemeral port; `repro serve` binds a fixed one.
//! let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
//!
//! let mut client = ScoringClient::connect(server.addr()).unwrap();
//! let response = client
//!     .score(TaskKind::Configuration, "Henson", vec![
//!         "henson_exec producer.so 3".to_string(),
//!     ])
//!     .unwrap();
//! assert!(response.ok);
//! assert_eq!(response.scores.len(), 1);
//! assert!(response.scores[0].bleu >= 0.0 && response.scores[0].bleu <= 100.0);
//!
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.requests, 1);
//! assert_eq!(stats.hypotheses, 1);
//!
//! client.close(); // disconnect before shutdown so the server can drain
//! server.shutdown();
//! ```

pub mod client;
pub mod faults;
pub mod framing;
pub mod latency;
pub mod protocol;
pub mod resilient;
pub mod server;

pub use client::ScoringClient;
pub use faults::{FaultAction, FaultInjector, FaultPlan, WriteFault};
pub use framing::FrameDecoder;
pub use latency::LatencyHistogram;
pub use protocol::{
    EvaluationScore, ExecutionScore, HypothesisScore, RequestMode, ScoreRequest, ScoreResponse,
    ServiceStats, TaskKind, DEFAULT_ADDR,
};
pub use resilient::{ResilientClient, RetriesExhausted, RetryPolicy};
pub use server::{ScoringServer, ServiceConfig};
