//! A blocking client for the scoring service.
//!
//! [`ScoringClient`] supports two styles:
//!
//! * **call/response** — [`score`](ScoringClient::score) /
//!   [`score_text`](ScoringClient::score_text) send one request and wait for
//!   its response;
//! * **pipelined** — [`send`](ScoringClient::send) many requests back to
//!   back, then [`collect`](ScoringClient::collect) the responses. Responses
//!   may arrive in any order (the server's worker pool races); `collect`
//!   returns them sorted by request id.
//!
//! The client tracks which request ids are still **in flight** (sent, not
//! yet answered). When the server disconnects mid-read — an abrupt EOF or a
//! torn frame — [`recv`](ScoringClient::recv) surfaces a distinct
//! connection-lost error ([`std::io::ErrorKind::ConnectionAborted`]) whose
//! message carries those ids, so callers know exactly which requests to
//! retry; [`ResilientClient`](crate::ResilientClient) builds its reconnect
//! and retry logic on top of this.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_line, encode_line, ScoreRequest, ScoreResponse, ServiceStats, TaskKind,
};

/// A connection to a running [`ScoringServer`](crate::ScoringServer).
pub struct ScoringClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    in_flight: BTreeSet<u64>,
}

impl ScoringClient {
    /// Connect to a scoring server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ScoringClient {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            in_flight: BTreeSet::new(),
        })
    }

    /// The next fresh request id (each call advances the counter).
    pub fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Request ids sent on this connection and not yet answered, in
    /// ascending order. These are the requests a caller must re-issue after
    /// a connection-lost error.
    pub fn in_flight(&self) -> Vec<u64> {
        self.in_flight.iter().copied().collect()
    }

    /// Bound how long [`recv`](ScoringClient::recv) blocks waiting for a
    /// response line (`None` restores blocking reads). A timed-out read
    /// surfaces as [`std::io::ErrorKind::TimedOut`]; the connection itself
    /// stays usable.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request without waiting for its response (pipelining).
    pub fn send(&mut self, request: &ScoreRequest) -> std::io::Result<()> {
        self.writer.write_all(encode_line(request).as_bytes())?;
        self.writer.flush()?;
        self.in_flight.insert(request.id);
        Ok(())
    }

    /// Receive the next response, whichever request it answers.
    pub fn recv(&mut self) -> std::io::Result<ScoreResponse> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err(self.connection_lost("server closed the connection")),
                Ok(_) if !line.ends_with('\n') => {
                    // Bytes arrived but the frame never finished before EOF:
                    // the connection died mid-response (a torn frame), which
                    // is a transport failure, not a protocol error.
                    return Err(self.connection_lost("connection lost mid-frame"));
                }
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    // A reset is a lost connection too — surface it with
                    // the same retry-friendly shape as an abrupt EOF.
                    return Err(self.connection_lost("connection reset"));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!(
                            "timed out waiting for a response ({} request(s) in flight)",
                            self.in_flight.len()
                        ),
                    ));
                }
                Err(e) => return Err(e),
            }
            if line.trim().is_empty() {
                continue;
            }
            let response: ScoreResponse = decode_line(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            self.in_flight.remove(&response.id);
            return Ok(response);
        }
    }

    /// The typed connection-lost error: [`std::io::ErrorKind::ConnectionAborted`]
    /// carrying every request id still awaiting a response.
    fn connection_lost(&self, cause: &str) -> std::io::Error {
        let ids = self.in_flight();
        std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            format!("{cause} with {} request(s) in flight: {ids:?}", ids.len()),
        )
    }

    /// Receive `count` responses and return them sorted by request id.
    pub fn collect(&mut self, count: usize) -> std::io::Result<Vec<ScoreResponse>> {
        let mut responses: Vec<ScoreResponse> = (0..count)
            .map(|_| self.recv())
            .collect::<std::io::Result<_>>()?;
        responses.sort_by_key(|r| r.id);
        Ok(responses)
    }

    /// Receive `ids.len()` responses and return them keyed by request id.
    ///
    /// Fails if the server answers with an id outside `ids` — which would
    /// mean responses are being routed to the wrong client.
    pub fn collect_by_id(&mut self, ids: &[u64]) -> std::io::Result<HashMap<u64, ScoreResponse>> {
        let mut responses = HashMap::with_capacity(ids.len());
        for _ in ids {
            let response = self.recv()?;
            if !ids.contains(&response.id) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("response for unknown request id {}", response.id),
                ));
            }
            responses.insert(response.id, response);
        }
        Ok(responses)
    }

    /// Score a batch against a built-in reference (call/response).
    pub fn score(
        &mut self,
        task: TaskKind,
        system: &str,
        hypotheses: Vec<String>,
    ) -> std::io::Result<ScoreResponse> {
        let request = ScoreRequest::by_id(self.fresh_id(), task, system, hypotheses);
        self.roundtrip(&request)
    }

    /// Score a batch against an inline reference text (call/response).
    pub fn score_text(
        &mut self,
        reference_text: &str,
        hypotheses: Vec<String>,
    ) -> std::io::Result<ScoreResponse> {
        let request = ScoreRequest::by_text(self.fresh_id(), reference_text, hypotheses);
        self.roundtrip(&request)
    }

    /// Run raw model responses through the server's full evaluation
    /// pipeline (extraction → API-call comparison → BLEU/ChrF) against a
    /// built-in reference (call/response).
    pub fn evaluate(
        &mut self,
        task: TaskKind,
        system: &str,
        responses: Vec<String>,
    ) -> std::io::Result<ScoreResponse> {
        let request = ScoreRequest::evaluate(self.fresh_id(), task, system, responses);
        self.roundtrip(&request)
    }

    /// Full-pipeline evaluation against an inline reference text; `system`
    /// selects the API catalogue used for call comparison (call/response).
    pub fn evaluate_text(
        &mut self,
        reference_text: &str,
        system: &str,
        responses: Vec<String>,
    ) -> std::io::Result<ScoreResponse> {
        let request =
            ScoreRequest::evaluate_text(self.fresh_id(), reference_text, system, responses);
        self.roundtrip(&request)
    }

    /// Run raw model responses through the server's dynamic-execution
    /// pipeline (extract → parse → engine run → trace scoring) against the
    /// built-in configuration reference for `system` (call/response).
    pub fn execute(
        &mut self,
        system: &str,
        responses: Vec<String>,
    ) -> std::io::Result<ScoreResponse> {
        let request = ScoreRequest::execute(self.fresh_id(), system, responses);
        self.roundtrip(&request)
    }

    /// Dynamic execution against an inline reference configuration;
    /// `system` selects the configuration dialect (call/response).
    pub fn execute_text(
        &mut self,
        reference_text: &str,
        system: &str,
        responses: Vec<String>,
    ) -> std::io::Result<ScoreResponse> {
        let request =
            ScoreRequest::execute_text(self.fresh_id(), reference_text, system, responses);
        self.roundtrip(&request)
    }

    /// Fetch the server's lifetime counters.
    pub fn stats(&mut self) -> std::io::Result<ServiceStats> {
        let request = ScoreRequest::stats(self.fresh_id());
        let response = self.roundtrip(&request)?;
        response.stats.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stats response carried no stats",
            )
        })
    }

    fn roundtrip(&mut self, request: &ScoreRequest) -> std::io::Result<ScoreResponse> {
        self.send(request)?;
        let response = self.recv()?;
        if response.id != request.id {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "response id {} does not match request id {} (mixing pipelined \
                     `send` with call/response methods on one connection?)",
                    response.id, request.id
                ),
            ));
        }
        Ok(response)
    }

    /// Close the sending half so the server sees EOF and tears the
    /// connection down; dropping the client has the same effect.
    pub fn close(self) {
        let _ = self.writer.into_inner().map(|s| s.shutdown(Shutdown::Both));
    }
}
