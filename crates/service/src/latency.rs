//! Lock-free request-latency tracking with fixed power-of-two buckets.
//!
//! Workers record one sample per answered request — the elapsed time from
//! admission to the reply being handed to the connection's write path — by
//! incrementing a single atomic bucket counter, so the hot path costs one
//! `fetch_add` and no allocation. Percentiles are then read as the upper
//! bound of the bucket where the requested rank falls, which is exact to
//! within a factor of two and, unlike a sample reservoir, deterministic for
//! a given multiset of samples regardless of arrival order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: bucket `i` covers `[2^i, 2^(i+1))` microseconds
/// (bucket 0 also absorbs sub-microsecond samples), so 64 buckets span
/// every representable `u64` microsecond count.
const BUCKETS: usize = 64;

/// A histogram of request latencies in power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

/// Bucket index for a sample of `micros` microseconds.
fn bucket_index(micros: u64) -> usize {
    63 - micros.max(1).leading_zeros() as usize
}

/// Inclusive upper bound, in microseconds, of bucket `index`.
fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

impl LatencyHistogram {
    /// Record one request latency.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .sum()
    }

    /// The latency (microseconds) at `percentile` (in `0.0..=100.0`):
    /// the upper bound of the first bucket whose cumulative count reaches
    /// the requested rank. Returns 0 when no samples have been recorded.
    pub fn percentile(&self, percentile: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // ceil(total * p/100), clamped to at least rank 1.
        let rank = ((total as f64) * (percentile / 100.0)).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (index, count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return bucket_upper_bound(index);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let histogram = LatencyHistogram::default();
        assert_eq!(histogram.samples(), 0);
        assert_eq!(histogram.percentile(50.0), 0);
        assert_eq!(histogram.percentile(99.0), 0);
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let histogram = LatencyHistogram::default();
        // 90 fast samples in [2, 4) us, 10 slow in [1024, 2048) us.
        for _ in 0..90 {
            histogram.record(Duration::from_micros(3));
        }
        for _ in 0..10 {
            histogram.record(Duration::from_micros(1500));
        }
        assert_eq!(histogram.samples(), 100);
        assert_eq!(histogram.percentile(50.0), 3);
        assert_eq!(histogram.percentile(90.0), 3);
        assert_eq!(histogram.percentile(95.0), 2047);
        assert_eq!(histogram.percentile(99.0), 2047);
    }

    #[test]
    fn percentile_order_is_monotone() {
        let histogram = LatencyHistogram::default();
        for micros in [1u64, 5, 17, 90, 400, 9000, 70_000] {
            histogram.record(Duration::from_micros(micros));
        }
        let p50 = histogram.percentile(50.0);
        let p95 = histogram.percentile(95.0);
        let p99 = histogram.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn sub_microsecond_samples_land_in_the_first_bucket() {
        let histogram = LatencyHistogram::default();
        histogram.record(Duration::from_nanos(120));
        assert_eq!(histogram.samples(), 1);
        assert_eq!(histogram.percentile(99.0), 1);
    }
}
