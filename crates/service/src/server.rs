//! The scoring server: a small set of nonblocking I/O loops multiplexing
//! every connection, feeding the shared worker pool.
//!
//! ```text
//!                 ┌──────────────────────────────────────────────────┐
//!                 │                  ScoringServer                   │
//!  client A ─TCP─▶│  I/O loop(s): epoll/poll readiness, one thread   │─▶ client A
//!  client B ─TCP─▶│  per loop, every connection a state machine      │─▶ client B
//!  client C ─TCP─▶│   [decode frames]──▶ bounded job queue ──┐       │─▶ client C
//!                 │   [flush replies]◀── completion wakeups ◀┤       │
//!                 │                                     worker pool  │
//!                 │                                     (N threads,  │
//!                 │                                      ServiceState│
//!                 │                                      + cache)    │
//!                 └──────────────────────────────────────────────────┘
//! ```
//!
//! * **I/O loops** ([`ServiceConfig::io_threads`], default 1) own the
//!   listener (loop 0) and all connection sockets, registered with the
//!   vendored [`polling`] readiness shim. Each connection is a state
//!   machine: bytes read nonblockingly are assembled into frames by a
//!   [`FrameDecoder`], parsed requests are
//!   admitted to the bounded job queue, and encoded replies are flushed
//!   back through a per-connection write queue. No thread ever blocks on
//!   one client's socket.
//! * **Admission control**: when the job queue is full, the connection
//!   *parks* the decoded request — its read interest is muted, so
//!   backpressure propagates into the client's TCP window — and retries on
//!   every queue-space wakeup until [`ServiceConfig::admission_timeout`]
//!   elapses, at which point the request is **shed** with a typed
//!   `"overloaded"` protocol error ([`ScoreResponse::overloaded`]).
//! * **The worker pool** is unchanged: a fixed set of threads dequeue jobs,
//!   enforce deadlines, run the handler under `catch_unwind`, and hand each
//!   reply to the owning connection's bounded reply channel. A client that
//!   pipelines without reading stalls its channel for
//!   [`ServiceConfig::reply_stall_timeout`] and is then disconnected. After
//!   every reply the worker pushes a completion token and wakes the
//!   connection's I/O loop to flush.
//! * All workers share one [`ReferenceCache`]: the first request against a
//!   reference prepares it (tokenise + intern + count), every later request
//!   from *any* connection reuses the prepared form. The cache is sharded
//!   internally, so concurrent workers do not serialise on one lock.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, SendTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use polling::{Event, Interest, Poller};
use wfspeak_core::eval::{evaluate_prepared, SystemProfile};
use wfspeak_core::exec::ExecutionPipeline;
use wfspeak_core::{ReferenceCache, WorkflowSystemId};
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};

use crate::faults::{FaultAction, FaultInjector, FaultPlan, WriteFault};
use crate::framing::FrameDecoder;
use crate::latency::LatencyHistogram;
use crate::protocol::{
    decode_line, encode_line, salvage_request_id, EvaluationScore, ExecutionScore, HypothesisScore,
    RequestMode, ScoreRequest, ScoreResponse, ServiceStats,
};

/// Poller key reserved for the listening socket (loop 0 only).
const LISTENER_KEY: usize = usize::MAX - 1;

/// Tunables for [`ScoringServer::spawn`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Scoring worker threads. `0` means one per available core.
    pub workers: usize,
    /// Nonblocking I/O loop threads multiplexing the connections. Loop 0
    /// also owns the listener; new connections are dealt round-robin.
    /// `0` is treated as 1 — one loop comfortably drives hundreds of
    /// connections because it never blocks on any of them.
    pub io_threads: usize,
    /// Bounded job-queue depth; connections park (backpressure) when full.
    pub queue_depth: usize,
    /// Cap on distinct references kept prepared in the shared cache. The
    /// built-in corpus references always fit; the cap bounds memory when
    /// clients stream arbitrary `reference_text` values — beyond it, unseen
    /// references are prepared per request without being retained.
    pub max_cached_references: usize,
    /// How long a worker waits to hand a response to a connection whose
    /// reply buffer is full before disconnecting that client (a client that
    /// pipelines heavily but never reads would otherwise wedge the shared
    /// pool).
    pub reply_stall_timeout: std::time::Duration,
    /// Per-connection reply-buffer depth: responses queued between the
    /// worker pool and the connection's write queue.  When a client stops
    /// reading, this buffer (plus the kernel's socket buffers) is all the
    /// slack it gets before workers start hitting
    /// [`reply_stall_timeout`](ServiceConfig::reply_stall_timeout).
    pub reply_queue_depth: usize,
    /// How long a parked request waits for space in the bounded job queue
    /// before being shed with a typed `"overloaded"` error. Zero sheds
    /// immediately whenever the queue is full.
    pub admission_timeout: std::time::Duration,
    /// Maximum hypotheses per `mode: "execute"` request.  Unlike scoring
    /// (sub-millisecond per hypothesis), each execution can legitimately
    /// cost threads and — for stalling-but-valid specs — seconds of
    /// sandbox timeout, so one oversized batch must not pin a shared
    /// worker indefinitely; larger batches are rejected with an error and
    /// should be split across pipelined requests.
    pub max_execute_batch: usize,
    /// How long [`shutdown`](ScoringServer::shutdown) waits for admitted
    /// work to finish (queue drained, in-flight jobs replied) before
    /// force-disconnecting the remaining connections.
    pub drain_timeout: std::time::Duration,
    /// Deterministic fault-injection plan for chaos testing; `None` (the
    /// default) disables injection entirely and the fault plumbing is
    /// invisible (the golden snapshot tests pin this).
    pub faults: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            io_threads: 1,
            queue_depth: 256,
            max_cached_references: 4096,
            reply_stall_timeout: std::time::Duration::from_secs(10),
            reply_queue_depth: 256,
            admission_timeout: std::time::Duration::from_millis(250),
            max_execute_batch: 64,
            drain_timeout: std::time::Duration::from_secs(5),
            faults: None,
        }
    }
}

impl ServiceConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    fn effective_io_threads(&self) -> usize {
        self.io_threads.max(1)
    }
}

/// Scorers, the shared prepared-reference cache and lifetime counters —
/// everything the worker pool needs, shared across all connections.
#[derive(Debug)]
struct ServiceState {
    bleu: BleuScorer,
    chrf: ChrfScorer,
    cache: ReferenceCache,
    executor: ExecutionPipeline,
    max_cached_references: usize,
    max_execute_batch: usize,
    requests: AtomicU64,
    hypotheses: AtomicU64,
    /// Jobs admitted to the bounded queue (or parked waiting for it) and
    /// not yet picked up by a worker. Incremented at admission, decremented
    /// at dequeue, so a `stats` snapshot can report live queue pressure.
    queue_depth: AtomicU64,
    /// Jobs a worker has dequeued and not yet replied to. Together with
    /// `queue_depth` this is the shutdown drain condition: both at zero
    /// means every admitted job has been answered.
    inflight: AtomicU64,
    /// Panicking jobs caught and answered as `"internal"`; each one stands
    /// for a worker the pool had to replace.
    worker_restarts: AtomicU64,
    /// Per-request latency (admission → reply handed to the write path) in
    /// power-of-two buckets; the `stats` response reports p50/p95/p99.
    latency: LatencyHistogram,
    /// The deterministic fault schedule, when chaos testing is enabled.
    injector: Option<FaultInjector>,
}

impl ServiceState {
    fn new(config: &ServiceConfig) -> Result<Self, String> {
        let injector = match &config.faults {
            Some(plan) => Some(FaultInjector::new(plan.clone())?),
            None => None,
        };
        Ok(ServiceState {
            bleu: BleuScorer::default(),
            chrf: ChrfScorer::default(),
            cache: ReferenceCache::default(),
            // The same cap bounds both caches: arbitrary client-supplied
            // reference text must not grow server memory without limit.
            executor: ExecutionPipeline::default().with_cache_cap(config.max_cached_references),
            max_cached_references: config.max_cached_references,
            max_execute_batch: config.max_execute_batch,
            requests: AtomicU64::new(0),
            hypotheses: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            injector,
        })
    }

    fn stats(&self) -> ServiceStats {
        let cache = self.cache.stats();
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            hypotheses: self.hypotheses.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            faults_injected: self.injector.as_ref().map_or(0, FaultInjector::injected),
            latency_samples: self.latency.samples(),
            latency_p50_us: self.latency.percentile(50.0),
            latency_p95_us: self.latency.percentile(95.0),
            latency_p99_us: self.latency.percentile(99.0),
        }
    }

    /// Execute one request. Both modes funnel through exactly the code the
    /// in-process paths use — `Scorer::score_prepared` for scoring,
    /// `wfspeak_core::eval::evaluate_prepared` for the full pipeline — so
    /// served results are bit-identical to direct composition.
    fn handle(&self, request: &ScoreRequest) -> ScoreResponse {
        let mode = match request.resolve_mode() {
            Ok(mode) => mode,
            Err(message) => return ScoreResponse::failure(request.id, message),
        };
        let reference = match request.resolve_reference() {
            Ok(Some(reference)) => reference,
            Ok(None) => return ScoreResponse::stats(request.id, self.stats()),
            Err(message) => return ScoreResponse::failure(request.id, message),
        };
        // Evaluate needs a workflow system for API-call comparison; execute
        // needs one to pick the configuration dialect — even when the
        // reference text arrives inline.
        let system_id = match mode {
            RequestMode::Score => None,
            RequestMode::Evaluate | RequestMode::Execute => {
                let Some(name) = request.resolve_system_name() else {
                    return ScoreResponse::failure(
                        request.id,
                        "evaluate/execute requests must name a workflow system \
                         (`system` or `reference_id`)",
                    );
                };
                match WorkflowSystemId::from_name(name) {
                    Some(id) => Some(id),
                    None => {
                        return ScoreResponse::failure(
                            request.id,
                            format!("unknown workflow system `{name}`"),
                        )
                    }
                }
            }
        };
        if mode == RequestMode::Execute {
            // `system_id` is always `Some` here (resolved just above for
            // execute mode), but the invariant is guarded by a typed
            // protocol error rather than an `expect`: no request shape may
            // ever panic a worker, even without the `catch_unwind` backstop.
            let Some(system) = system_id else {
                return ScoreResponse::failure(
                    request.id,
                    "execute requests must name a workflow system \
                     (`system` or `reference_id`)",
                );
            };
            // Executions cost real threads and (for stalling specs) real
            // sandbox-timeout seconds each; bound what one request can pin
            // a worker with.
            if request.hypotheses.len() > self.max_execute_batch {
                return ScoreResponse::failure(
                    request.id,
                    format!(
                        "execute batch of {} exceeds the per-request cap of {}; \
                         split it across pipelined requests",
                        request.hypotheses.len(),
                        self.max_execute_batch
                    ),
                );
            }
            // Resolve the reference run first so a bad reference is a
            // failure (uncounted), matching every other addressing error.
            let summary = match self.executor.reference_summary(system, reference) {
                Ok(summary) => summary,
                Err(message) => return ScoreResponse::failure(request.id, message),
            };
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.hypotheses
                .fetch_add(request.hypotheses.len() as u64, Ordering::Relaxed);
            let executions: Vec<ExecutionScore> = request
                .hypotheses
                .iter()
                .map(|response| {
                    ExecutionScore::from_execution(&wfspeak_core::exec::execute_artifact(
                        self.executor.sandbox(),
                        system,
                        response,
                        &summary,
                    ))
                })
                .collect();
            return ScoreResponse::executed(request.id, executions);
        }
        let profile = system_id.map(SystemProfile::for_system);
        // Counted at admission, before the cache lookup, so a concurrent
        // `stats` snapshot never shows more cache traffic than the request
        // count can explain.
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.hypotheses
            .fetch_add(request.hypotheses.len() as u64, Ordering::Relaxed);
        let prepared = self.cache.get_or_prepare_bounded(
            &self.bleu,
            &self.chrf,
            reference,
            self.max_cached_references,
        );
        match profile {
            None => {
                let scores: Vec<HypothesisScore> = request
                    .hypotheses
                    .iter()
                    .map(|hypothesis| HypothesisScore {
                        bleu: self.bleu.score_prepared(hypothesis, &prepared.bleu),
                        chrf: self.chrf.score_prepared(hypothesis, &prepared.chrf),
                    })
                    .collect();
                ScoreResponse::success(request.id, scores)
            }
            Some(profile) => {
                let evaluations: Vec<EvaluationScore> = request
                    .hypotheses
                    .iter()
                    .map(|response| {
                        EvaluationScore::from_evaluation(&evaluate_prepared(
                            &self.bleu, &self.chrf, &prepared, &profile, response,
                        ))
                    })
                    .collect();
                ScoreResponse::evaluated(request.id, evaluations)
            }
        }
    }
}

/// One I/O loop's cross-thread mailbox: its poller (for wakeups), the
/// completion tokens workers push after answering a job, and the inbox of
/// freshly accepted sockets loop 0 deals out.
#[derive(Debug)]
struct IoLoopHandle {
    poller: Poller,
    completions: Mutex<Vec<usize>>,
    inbox: Mutex<Vec<TcpStream>>,
}

impl IoLoopHandle {
    fn new() -> std::io::Result<Self> {
        Ok(IoLoopHandle {
            poller: Poller::new()?,
            completions: Mutex::default(),
            inbox: Mutex::default(),
        })
    }
}

/// Lifecycle flags and counters shared by every I/O loop and worker.
#[derive(Debug, Default)]
struct IoShared {
    /// Stop accepting new connections (set first during shutdown).
    stop: AtomicBool,
    /// Tear down all connections and exit the I/O loops (set after drain).
    closing: AtomicBool,
    /// Connections currently registered with an I/O loop.
    live_connections: AtomicUsize,
    /// Requests parked on a full job queue across all loops; workers only
    /// broadcast queue-space wakeups while this is nonzero.
    parked: AtomicUsize,
    /// Round-robin cursor for dealing accepted sockets to loops.
    next_loop: AtomicUsize,
}

/// How a finished job finds its way back to the connection that sent it:
/// decrement the connection's outstanding-job count, push the connection's
/// token onto its I/O loop's completion list, and wake that loop to flush.
struct CompletionHandle {
    io_loop: Arc<IoLoopHandle>,
    token: usize,
    outstanding: Arc<AtomicU64>,
}

impl CompletionHandle {
    fn complete(&self) {
        // Decrement *after* the reply was pushed (or deliberately dropped):
        // an I/O loop that reads zero here can trust the reply channel to
        // already hold every reply this connection will ever get.
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        self.io_loop.completions.lock().push(self.token);
        let _ = self.io_loop.poller.notify();
    }
}

/// One unit of work for the pool: a parsed (or unparsable) request line,
/// the sender that routes the response line back to the right connection,
/// the connection's socket so a stalled connection can be disconnected, and
/// the completion handle that wakes the connection's I/O loop afterwards.
struct Job {
    request: Result<ScoreRequest, ScoreResponse>,
    reply: Sender<Reply>,
    peer: Arc<TcpStream>,
    /// When the I/O loop admitted this job; the worker checks the
    /// request's `deadline_ms` against it before scoring.
    admitted: Instant,
    completion: CompletionHandle,
}

/// One response line on its way to a connection's write queue, plus the
/// write-path fault (if any) the flusher must apply to it.
struct Reply {
    line: String,
    fault: Option<WriteFault>,
}

/// One contiguous chunk of bytes queued for a connection's socket. A
/// faultless reply is one segment; a torn reply is two (flushed with
/// separate writes); a disconnect fault is a truncated segment that shuts
/// the socket down once flushed.
struct OutSegment {
    bytes: Bytes,
    shutdown_after: bool,
}

impl OutSegment {
    fn line(line: String) -> Self {
        OutSegment {
            bytes: Bytes::from(line.into_bytes()),
            shutdown_after: false,
        }
    }
}

/// A request decoded from a connection that found the job queue full: it
/// waits (with read interest muted, so backpressure reaches the client's
/// TCP window) for queue space until its deadline, then is shed.
struct PendingJob {
    job: Job,
    request_id: u64,
    deadline: Instant,
}

/// Per-connection state machine.
struct Connection {
    stream: TcpStream,
    /// Blocking clone handed to workers so a reply-stall can disconnect.
    peer: Arc<TcpStream>,
    decoder: FrameDecoder,
    reply_tx: Sender<Reply>,
    reply_rx: Receiver<Reply>,
    out: VecDeque<OutSegment>,
    /// Bytes of `out.front()` already written.
    out_pos: usize,
    pending: Option<PendingJob>,
    /// Jobs admitted from this connection whose replies have not yet been
    /// pushed (or deliberately dropped) by a worker.
    outstanding: Arc<AtomicU64>,
    /// The client half-closed (EOF) or sent bytes we refuse to parse; no
    /// more requests will be read, but queued work still drains.
    read_closed: bool,
    /// Interest currently registered with the poller.
    registered: Interest,
    /// Marked for removal (error, deliberate disconnect, or fully drained).
    dead: bool,
}

/// A running scoring server.
///
/// Bind with [`ScoringServer::spawn`]; the returned handle reports the bound
/// address ([`addr`](ScoringServer::addr)), exposes live statistics
/// ([`stats`](ScoringServer::stats)) and shuts the listener down on
/// [`shutdown`](ScoringServer::shutdown) (or on drop).
pub struct ScoringServer {
    addr: std::net::SocketAddr,
    state: Arc<ServiceState>,
    shared: Arc<IoShared>,
    loops: Vec<Arc<IoLoopHandle>>,
    io_handles: Vec<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    drain_timeout: Duration,
}

impl ScoringServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the I/O
    /// loops plus the worker pool.
    pub fn spawn(addr: impl ToSocketAddrs, config: ServiceConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = ServiceState::new(&config)
            .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidInput, message))?;
        let state = Arc::new(state);
        let shared = Arc::new(IoShared::default());

        let loops = (0..config.effective_io_threads())
            .map(|_| IoLoopHandle::new().map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;

        let (job_tx, job_rx) = bounded::<Job>(config.queue_depth.max(1));
        // The vendored channel's receiver is single-consumer; workers take
        // turns holding the lock while blocked in `recv`, which serialises
        // dequeueing only — scoring itself runs in parallel.
        let job_rx = Arc::new(Mutex::new(job_rx));

        let worker_handles = (0..config.effective_workers())
            .map(|_| {
                let state = Arc::clone(&state);
                let job_rx = Arc::clone(&job_rx);
                let shared = Arc::clone(&shared);
                let loops = loops.clone();
                let stall_timeout = config.reply_stall_timeout;
                std::thread::spawn(move || {
                    worker_loop(&state, &job_rx, stall_timeout, &shared, &loops)
                })
            })
            .collect();

        let mut listener = Some(listener);
        let io_handles = (0..loops.len())
            .map(|index| {
                let ctx = LoopCtx {
                    index,
                    handle: Arc::clone(&loops[index]),
                    loops: loops.clone(),
                    shared: Arc::clone(&shared),
                    state: Arc::clone(&state),
                    job_tx: job_tx.clone(),
                    listener: if index == 0 { listener.take() } else { None },
                    conns: HashMap::new(),
                    next_token: 0,
                    reply_depth: config.reply_queue_depth.max(1),
                    admission_timeout: config.admission_timeout,
                    scratch: vec![0u8; 16 * 1024],
                };
                std::thread::spawn(move || ctx.run())
            })
            .collect();

        Ok(ScoringServer {
            addr,
            state,
            shared,
            loops,
            io_handles,
            worker_handles,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A live snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.state.stats()
    }

    /// Connections currently registered with the I/O loops. Returns to zero
    /// once every client has disconnected and been cleaned up — the
    /// overload regression tests pin that no shed or lost connection leaks
    /// an entry.
    pub fn live_connections(&self) -> usize {
        self.shared.live_connections.load(Ordering::SeqCst)
    }

    /// Block the calling thread for the server's lifetime (the I/O loops
    /// only exit on shutdown). `repro serve` parks on this.
    pub fn wait(mut self) {
        for handle in self.io_handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Shut down as a drain: stop accepting connections, let admitted work
    /// finish and its replies flush, then force-disconnect stragglers past
    /// [`ServiceConfig::drain_timeout`] and join every server thread.
    ///
    /// Queued work is still scored (responses to disconnected clients are
    /// dropped at the write path), so counters in
    /// [`stats`](ScoringServer::stats) reflect all accepted work.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for handle in &self.loops {
            let _ = handle.poller.notify();
        }
        // Drain phase: wait (bounded by the drain deadline) until every
        // admitted job has left the queue and been replied to, so clients
        // that are reading receive everything they were promised. Clients
        // may still submit new work on live connections during the drain;
        // the deadline bounds how long they can prolong it.
        let deadline = Instant::now() + self.drain_timeout;
        loop {
            let quiesced = self.state.queue_depth.load(Ordering::SeqCst) == 0
                && self.state.inflight.load(Ordering::SeqCst) == 0;
            if quiesced || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Brief grace so the I/O loops can flush replies that are queued
        // but not yet on the wire; best-effort only — the force-disconnect
        // below is the correctness backstop.
        std::thread::sleep(Duration::from_millis(20).min(self.drain_timeout));
        // Force-disconnect clients that have not hung up: the loops tear
        // down their connection tables and exit, dropping the last job
        // senders so workers drain the queue and observe disconnect.
        self.shared.closing.store(true, Ordering::SeqCst);
        for handle in &self.loops {
            let _ = handle.poller.notify();
        }
        for handle in self.io_handles.drain(..) {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ScoringServer {
    fn drop(&mut self) {
        if !self.io_handles.is_empty() {
            self.stop_and_join();
        }
    }
}

fn worker_loop(
    state: &ServiceState,
    jobs: &Mutex<Receiver<Job>>,
    stall_timeout: std::time::Duration,
    shared: &IoShared,
    loops: &[Arc<IoLoopHandle>],
) {
    loop {
        // Holding the lock across `recv` parks exactly one idle worker on the
        // channel; it wakes, releases the lock, and scores while the next
        // idle worker moves into the waiting slot.
        let job = match jobs.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // queue disconnected: server shutting down
        };
        // Mark in-flight *before* leaving the queue so the shutdown drain
        // never observes queue_depth and inflight both zero while a job is
        // mid-handoff.
        state.inflight.fetch_add(1, Ordering::SeqCst);
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        // This dequeue freed a queue slot; wake the I/O loops if any
        // connection is parked waiting for one.
        if shared.parked.load(Ordering::SeqCst) > 0 {
            for handle in loops {
                let _ = handle.poller.notify();
            }
        }
        // One schedule draw per dequeued job: the Nth job a server handles
        // always gets the Nth fault decision, so chaos runs replay.
        let action = state
            .injector
            .as_ref()
            .map_or(FaultAction::None, FaultInjector::next_action);
        let response = respond_to_job(state, &job, action);
        let line = encode_line(&response);
        // A disconnected error means the connection is gone (client hung up
        // mid-flight); the response is dropped, matching TCP semantics. A
        // timeout means the client's reply buffer stayed full for the whole
        // stall window — it is pipelining without reading — so disconnect
        // it rather than let one slow reader wedge the shared pool.
        let outcome = match action.write_fault() {
            // The response evaporates; clients need deadlines + retries.
            Some(WriteFault::Drop) => Ok(()),
            Some(WriteFault::Delay { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                job.reply
                    .send_timeout(Reply { line, fault: None }, stall_timeout)
            }
            // Torn/disconnect faults reshape the bytes on the wire; the
            // connection's write path applies them at flush time.
            fault => job.reply.send_timeout(Reply { line, fault }, stall_timeout),
        };
        if let Err(SendTimeoutError::Timeout) = outcome {
            let _ = job.peer.shutdown(Shutdown::Both);
        }
        state.latency.record(job.admitted.elapsed());
        job.completion.complete();
        state.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Produce the response for one dequeued job: enforce the request deadline,
/// then run the handler under `catch_unwind` so a panicking job — injected
/// by the fault plan or a genuine bug — yields a typed
/// `error_kind: "internal"` response instead of a hung connection.
///
/// The unwind poisons nothing: all per-job state lives on the unwound
/// stack, the shared caches use panic-safe locks, and the worker re-enters
/// its loop with a clean frame — the pool's "respawn", counted in
/// [`ServiceStats::worker_restarts`].
fn respond_to_job(state: &ServiceState, job: &Job, action: FaultAction) -> ScoreResponse {
    let request = match &job.request {
        Ok(request) => request,
        Err(failure) => return failure.clone(),
    };
    if let Some(deadline_ms) = request.deadline_ms {
        let waited_ms = job.admitted.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        if waited_ms >= deadline_ms {
            // Expired while queued: drop it before scoring so a backlogged
            // server stops burning workers on answers nobody waits for.
            return ScoreResponse::deadline_exceeded(request.id, deadline_ms, waited_ms);
        }
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if action == FaultAction::WorkerPanic {
            panic!("injected fault: worker panic");
        }
        state.handle(request)
    }));
    match outcome {
        Ok(response) => response,
        Err(payload) => {
            state.worker_restarts.fetch_add(1, Ordering::Relaxed);
            ScoreResponse::internal_error(request.id, panic_detail(payload.as_ref()))
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "opaque panic payload"
    }
}

/// Scale a 0–99 fault percentage to a byte offset within a response line.
fn fault_offset(len: usize, percent: u8) -> usize {
    len * usize::from(percent % 100) / 100
}

/// Everything one I/O loop thread owns: its registered connections, the
/// shared handles, and the listener (loop 0 only).
struct LoopCtx {
    index: usize,
    handle: Arc<IoLoopHandle>,
    loops: Vec<Arc<IoLoopHandle>>,
    shared: Arc<IoShared>,
    state: Arc<ServiceState>,
    job_tx: Sender<Job>,
    listener: Option<TcpListener>,
    conns: HashMap<usize, Connection>,
    next_token: usize,
    reply_depth: usize,
    admission_timeout: Duration,
    scratch: Vec<u8>,
}

impl LoopCtx {
    fn run(mut self) {
        if let Some(listener) = &self.listener {
            if listener.set_nonblocking(true).is_err() {
                return;
            }
            if self
                .handle
                .poller
                .add(listener.as_raw_fd(), LISTENER_KEY, Interest::readable())
                .is_err()
            {
                return;
            }
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            let _ = self.handle.poller.wait(&mut events, timeout);
            if self.shared.closing.load(Ordering::SeqCst) {
                break;
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                self.close_listener();
            }
            self.drain_inbox();
            let completions: Vec<usize> = std::mem::take(&mut *self.handle.completions.lock());
            for event in events.drain(..) {
                if event.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    self.service(event.key);
                }
            }
            for token in completions {
                self.service(token);
            }
            // Parked requests retry on every wake: queue-space broadcasts,
            // completions and deadline timeouts all land here.
            let parked: Vec<usize> = self
                .conns
                .iter()
                .filter(|(_, conn)| conn.pending.is_some())
                .map(|(token, _)| *token)
                .collect();
            for token in parked {
                self.service(token);
            }
        }
        self.teardown_all();
    }

    /// The next `wait` parks until I/O, a wakeup, or the earliest parked
    /// request's admission deadline.
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.conns
            .values()
            .filter_map(|conn| conn.pending.as_ref())
            .map(|pending| pending.deadline.saturating_duration_since(now))
            .min()
    }

    fn close_listener(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.handle.poller.delete(listener.as_raw_fd());
        }
    }

    fn drain_inbox(&mut self) {
        let incoming: Vec<TcpStream> = std::mem::take(&mut *self.handle.inbox.lock());
        for stream in incoming {
            self.register(stream);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = {
                let Some(listener) = &self.listener else {
                    return;
                };
                listener.accept()
            };
            match accepted {
                Ok((stream, _)) => {
                    let target =
                        self.shared.next_loop.fetch_add(1, Ordering::Relaxed) % self.loops.len();
                    if target == self.index {
                        self.register(stream);
                    } else {
                        self.loops[target].inbox.lock().push(stream);
                        let _ = self.loops[target].poller.notify();
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the peer
                // reset before we got to it): re-poll rather than spin.
                Err(_) => break,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if self.shared.closing.load(Ordering::SeqCst) {
            return; // dropped: accepted moments before teardown
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let Ok(peer) = stream.try_clone() else { return };
        let token = self.next_token;
        if self
            .handle
            .poller
            .add(stream.as_raw_fd(), token, Interest::readable())
            .is_err()
        {
            return;
        }
        self.next_token += 1;
        let (reply_tx, reply_rx) = bounded::<Reply>(self.reply_depth);
        self.conns.insert(
            token,
            Connection {
                stream,
                peer: Arc::new(peer),
                decoder: FrameDecoder::new(),
                reply_tx,
                reply_rx,
                out: VecDeque::new(),
                out_pos: 0,
                pending: None,
                outstanding: Arc::new(AtomicU64::new(0)),
                read_closed: false,
                registered: Interest::readable(),
                dead: false,
            },
        );
        self.shared.live_connections.fetch_add(1, Ordering::SeqCst);
    }

    /// Drive one connection's state machine as far as it will go without
    /// blocking, then re-register interest or clean it up.
    fn service(&mut self, token: usize) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // stale completion/event for an already-removed conn
        };
        self.drive(token, &mut conn);
        if !conn.dead {
            self.update_interest(token, &mut conn);
        }
        if conn.dead {
            self.finalize(conn);
        } else {
            self.conns.insert(token, conn);
        }
    }

    fn drive(&mut self, token: usize, conn: &mut Connection) {
        self.pump_and_flush(conn);
        if conn.dead {
            return;
        }
        self.retry_pending(token, conn);
        if conn.dead {
            return;
        }
        self.read_ready(token, conn);
        if conn.dead {
            return;
        }
        // Flush anything the read path produced (shed responses).
        self.pump_and_flush(conn);
        if conn.dead {
            return;
        }
        self.try_close(conn);
    }

    /// Move replies from the worker-facing channel into the write queue and
    /// push queued bytes to the socket until it would block. Replies are
    /// pumped one at a time — only when the queue is empty — so the bounded
    /// reply channel stays the backpressure point the stall timeout watches.
    fn pump_and_flush(&mut self, conn: &mut Connection) {
        loop {
            if conn.out.is_empty() {
                match conn.reply_rx.try_recv() {
                    Ok(reply) => enqueue_reply(conn, reply),
                    Err(_) => break, // empty: nothing more to write now
                }
            }
            let Some(front) = conn.out.front() else { break };
            let remaining = &front.bytes[conn.out_pos..];
            if remaining.is_empty() {
                let segment = conn.out.pop_front().expect("front checked above");
                conn.out_pos = 0;
                if segment.shutdown_after {
                    // Deliberate mid-reply disconnect (chaos fault): both
                    // directions down, connection removed, later replies
                    // dropped at the disconnected channel.
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    conn.dead = true;
                    return;
                }
                continue;
            }
            match (&conn.stream).write(remaining) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(written) => conn.out_pos += written,
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Re-try a parked request: shed it past its deadline, admit it if the
    /// queue has space, then resume decoding any frames buffered behind it.
    fn retry_pending(&mut self, token: usize, conn: &mut Connection) {
        let Some(pending) = &conn.pending else { return };
        let request_id = pending.request_id;
        let deadline = pending.deadline;
        if Instant::now() >= deadline {
            let pending = conn.pending.take().expect("pending checked above");
            self.shared.parked.fetch_sub(1, Ordering::SeqCst);
            drop(pending.job);
            self.shed(conn, request_id);
            self.process_frames(token, conn);
            return;
        }
        let pending = conn.pending.take().expect("pending checked above");
        match self.job_tx.try_send(pending.job) {
            Ok(()) => {
                self.shared.parked.fetch_sub(1, Ordering::SeqCst);
                self.process_frames(token, conn);
            }
            Err(TrySendError::Full(job)) => {
                conn.pending = Some(PendingJob {
                    job,
                    request_id,
                    deadline,
                });
            }
            Err(TrySendError::Disconnected(job)) => {
                self.shared.parked.fetch_sub(1, Ordering::SeqCst);
                self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                conn.outstanding.fetch_sub(1, Ordering::SeqCst);
                drop(job);
                close_input(conn); // server shutting down
            }
        }
    }

    /// Answer a request the queue had no room for with a typed
    /// `"overloaded"` error, queued straight onto the connection's write
    /// queue (the shed never touched a worker).
    fn shed(&self, conn: &mut Connection, request_id: u64) {
        let depth = self.state.queue_depth.fetch_sub(1, Ordering::SeqCst) - 1;
        conn.outstanding.fetch_sub(1, Ordering::SeqCst);
        let shed = ScoreResponse::overloaded(request_id, depth as usize);
        conn.out.push_back(OutSegment::line(encode_line(&shed)));
    }

    /// Read until the socket would block, a request parks, or the write
    /// backlog says to stop; decode and admit frames as they complete.
    fn read_ready(&mut self, token: usize, conn: &mut Connection) {
        if conn.read_closed || conn.pending.is_some() {
            // Still drain frames already buffered (EOF tails included).
            self.process_frames(token, conn);
            return;
        }
        loop {
            match (&conn.stream).read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(count) => {
                    let chunk = &self.scratch[..count];
                    conn.decoder.push(chunk);
                    self.process_frames(token, conn);
                    if conn.dead || conn.pending.is_some() || conn.read_closed {
                        break;
                    }
                    // Backpressure: a client flooding faster than it reads
                    // (e.g. shed storms) must not grow the write queue
                    // without bound.
                    if conn.out.len() >= self.reply_depth {
                        break;
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        self.process_frames(token, conn);
    }

    /// Decode buffered frames into jobs until the input runs dry, a request
    /// parks on the full queue, or the connection closes.
    fn process_frames(&mut self, token: usize, conn: &mut Connection) {
        loop {
            if conn.dead || conn.pending.is_some() {
                return;
            }
            let frame = match conn.decoder.next_frame() {
                Some(frame) => frame,
                None => {
                    if !conn.read_closed {
                        return;
                    }
                    // EOF: a trailing unterminated line still counts as a
                    // request, exactly as `BufRead::lines` treated it.
                    match conn.decoder.finish() {
                        Some(frame) => frame,
                        None => return,
                    }
                }
            };
            let Ok(line) = std::str::from_utf8(&frame) else {
                // Undecodable bytes end request intake for this connection
                // (the blocking reader's `lines()` did the same); admitted
                // work still drains.
                close_input(conn);
                return;
            };
            if line.trim().is_empty() {
                continue;
            }
            let request = decode_line::<ScoreRequest>(line).map_err(|message| {
                ScoreResponse::failure(
                    salvage_request_id(line),
                    format!("invalid request: {message}"),
                )
            });
            let request_id = match &request {
                Ok(request) => request.id,
                Err(failure) => failure.id,
            };
            let job = Job {
                request,
                reply: conn.reply_tx.clone(),
                peer: Arc::clone(&conn.peer),
                admitted: Instant::now(),
                completion: CompletionHandle {
                    io_loop: Arc::clone(&self.handle),
                    token,
                    outstanding: Arc::clone(&conn.outstanding),
                },
            };
            // Count the job before handing it over so the depth can never
            // read negative: increment → enqueue → (worker dequeues →
            // decrement). Parked jobs stay counted while they wait, exactly
            // as the blocking reader counted them across `send_timeout`.
            self.state.queue_depth.fetch_add(1, Ordering::SeqCst);
            conn.outstanding.fetch_add(1, Ordering::SeqCst);
            match self.job_tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    if self.admission_timeout.is_zero() {
                        self.shed(conn, request_id);
                    } else {
                        conn.pending = Some(PendingJob {
                            job,
                            request_id,
                            deadline: Instant::now() + self.admission_timeout,
                        });
                        self.shared.parked.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    conn.outstanding.fetch_sub(1, Ordering::SeqCst);
                    close_input(conn); // server shutting down
                    return;
                }
            }
        }
    }

    /// Close a fully drained connection: the client hung up, every admitted
    /// job has been answered, and every reply byte is on the wire.
    fn try_close(&mut self, conn: &mut Connection) {
        let input_done =
            conn.read_closed && conn.pending.is_none() && conn.decoder.buffered_len() == 0;
        if !input_done {
            return;
        }
        // Reading `outstanding == 0` *before* pumping means every reply this
        // connection will ever get is already in the channel (workers push
        // the reply before decrementing), so the pump below drains all of it.
        if conn.outstanding.load(Ordering::SeqCst) != 0 {
            return;
        }
        self.pump_and_flush(conn);
        if conn.dead {
            return;
        }
        if conn.out.is_empty() {
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.dead = true;
        }
    }

    fn update_interest(&self, token: usize, conn: &mut Connection) {
        let want = Interest {
            readable: !conn.read_closed
                && conn.pending.is_none()
                && conn.out.len() < self.reply_depth,
            writable: !conn.out.is_empty(),
        };
        if want != conn.registered {
            match self
                .handle
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
            {
                Ok(()) => conn.registered = want,
                Err(_) => conn.dead = true,
            }
        }
    }

    /// Remove a connection: deregister, roll back any parked request's
    /// counters, and drop the state (closing the socket and disconnecting
    /// the reply channel, so in-flight workers drop their replies).
    fn finalize(&mut self, mut conn: Connection) {
        let _ = self.handle.poller.delete(conn.stream.as_raw_fd());
        if let Some(pending) = conn.pending.take() {
            self.shared.parked.fetch_sub(1, Ordering::SeqCst);
            self.state.queue_depth.fetch_sub(1, Ordering::SeqCst);
            conn.outstanding.fetch_sub(1, Ordering::SeqCst);
            drop(pending.job);
        }
        self.shared.live_connections.fetch_sub(1, Ordering::SeqCst);
    }

    /// Forced shutdown: disconnect every remaining connection and exit.
    fn teardown_all(&mut self) {
        self.close_listener();
        let conns = std::mem::take(&mut self.conns);
        for (_, conn) in conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.finalize(conn);
        }
    }
}

/// Expand one reply into write-queue segments, applying its wire fault.
fn enqueue_reply(conn: &mut Connection, reply: Reply) {
    let bytes = reply.line.into_bytes();
    match reply.fault {
        // Two segments flushed with separate writes exercise the client's
        // frame reassembly; the bytes on the wire are identical.
        Some(WriteFault::Torn { split_percent }) => {
            let split = fault_offset(bytes.len(), split_percent);
            conn.out.push_back(OutSegment {
                bytes: Bytes::copy_from_slice(&bytes[..split]),
                shutdown_after: false,
            });
            conn.out.push_back(OutSegment {
                bytes: Bytes::copy_from_slice(&bytes[split..]),
                shutdown_after: false,
            });
        }
        // A torn frame with no continuation: partial bytes, then a
        // mid-request disconnect.
        Some(WriteFault::Disconnect { truncate_percent }) => {
            let cut =
                fault_offset(bytes.len(), truncate_percent).min(bytes.len().saturating_sub(1));
            conn.out.push_back(OutSegment {
                bytes: Bytes::copy_from_slice(&bytes[..cut]),
                shutdown_after: true,
            });
        }
        // Delay and Drop are applied worker-side (a sleep / no reply); a
        // reply carrying them here is flushed clean.
        None | Some(WriteFault::Delay { .. }) | Some(WriteFault::Drop) => {
            conn.out.push_back(OutSegment {
                bytes: Bytes::from(bytes),
                shutdown_after: false,
            });
        }
    }
}

/// Stop reading requests from a connection (server shutdown or undecodable
/// input) while letting its admitted work drain; any bytes still buffered
/// are discarded so they are never parsed as requests.
fn close_input(conn: &mut Connection) {
    conn.read_closed = true;
    conn.decoder = FrameDecoder::new();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TaskKind;

    #[test]
    fn state_scores_match_direct_prepared_scoring() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest::by_text(
            5,
            "tasks:\n  - func: producer",
            vec!["tasks:\n  - func: producer".into(), "tasks: []".into()],
        );
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(response.id, 5);
        assert_eq!(response.scores.len(), 2);
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        for (hypothesis, score) in request.hypotheses.iter().zip(&response.scores) {
            assert_eq!(
                score.bleu.to_bits(),
                bleu.score(hypothesis, "tasks:\n  - func: producer")
                    .to_bits()
            );
            assert_eq!(
                score.chrf.to_bits(),
                chrf.score(hypothesis, "tasks:\n  - func: producer")
                    .to_bits()
            );
        }
    }

    #[test]
    fn state_counts_requests_hypotheses_and_cache_traffic() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest::by_id(
            1,
            TaskKind::Configuration,
            "Henson",
            vec!["a".into(), "b".into(), "c".into()],
        );
        assert!(state.handle(&request).ok);
        assert!(state.handle(&request).ok);
        let stats = state.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.hypotheses, 6);
        assert_eq!(stats.cache_misses, 1, "reference prepared exactly once");
        assert_eq!(stats.cache_hits, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reference_cache_respects_the_configured_cap() {
        let state = ServiceState::new(&ServiceConfig {
            max_cached_references: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(
            state
                .handle(&ScoreRequest::by_text(1, "ref a", vec!["x".into()]))
                .ok
        );
        // Distinct text beyond the cap: still scored, never retained.
        assert!(
            state
                .handle(&ScoreRequest::by_text(2, "ref b", vec!["x".into()]))
                .ok
        );
        assert!(
            state
                .handle(&ScoreRequest::by_text(3, "ref b", vec!["x".into()]))
                .ok
        );
        // The capped entry keeps hitting.
        assert!(
            state
                .handle(&ScoreRequest::by_text(4, "ref a", vec!["x".into()]))
                .ok
        );
        let stats = state.stats();
        assert_eq!(stats.cache_misses, 3, "a once, uncacheable b twice");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn state_reports_failures_without_counting_them() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let response = state.handle(&ScoreRequest::by_id(
            3,
            TaskKind::Configuration,
            "NoSuchSystem",
            vec!["x".into()],
        ));
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("NoSuchSystem"));
        assert_eq!(state.stats().requests, 0);
    }

    #[test]
    fn evaluate_mode_runs_full_pipeline_bit_identically() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let reference = "henson_save_int(\"t\", t);\nhenson_yield();";
        let responses = vec![
            "Here is the code:\n```c\nhenson_put(\"t\", t);\nhenson_yield();\n```".to_owned(),
            reference.to_owned(),
        ];
        let request = ScoreRequest::evaluate_text(7, reference, "Henson", responses.clone());
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert!(response.scores.is_empty());
        assert_eq!(response.evaluations.len(), 2);
        assert_eq!(
            response.evaluations[0].hallucinated,
            vec!["henson_put".to_owned()]
        );
        assert_eq!(response.evaluations[1].call_recall, 1.0);

        // Bit-identical to running the pipeline in-process.
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        let cache = ReferenceCache::default();
        let prepared = cache.get_or_prepare(&bleu, &chrf, reference);
        let profile = SystemProfile::by_name("Henson").unwrap();
        for (sent, served) in responses.iter().zip(&response.evaluations) {
            let direct = evaluate_prepared(&bleu, &chrf, &prepared, &profile, sent);
            assert_eq!(served.bleu.to_bits(), direct.bleu.to_bits());
            assert_eq!(served.chrf.to_bits(), direct.chrf.to_bits());
            assert_eq!(served.matched, direct.calls.matched);
            assert_eq!(served.missing, direct.calls.missing);
            assert_eq!(served.extra, direct.calls.extra);
            assert_eq!(served.hallucinated, direct.calls.hallucinated);
        }
    }

    #[test]
    fn evaluate_mode_requires_a_known_system() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let missing = state.handle(&ScoreRequest {
            id: 1,
            reference_text: Some("ref".into()),
            mode: "evaluate".into(),
            hypotheses: vec!["x".into()],
            ..ScoreRequest::default()
        });
        assert!(!missing.ok);
        assert!(missing.error.unwrap().contains("workflow system"));

        let unknown = state.handle(&ScoreRequest::evaluate_text(
            2,
            "ref",
            "Slurm",
            vec!["x".into()],
        ));
        assert!(!unknown.ok);
        assert!(unknown.error.unwrap().contains("Slurm"));
        assert_eq!(state.stats().requests, 0, "failures are not counted");
    }

    #[test]
    fn evaluate_via_reference_id_uses_that_system_for_the_catalogue() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest {
            id: 3,
            reference_id: Some("annotation/Henson".into()),
            mode: "EVALUATE".into(),
            hypotheses: vec!["henson_put();".into()],
            ..ScoreRequest::default()
        };
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(
            response.evaluations[0].hallucinated,
            vec!["henson_put".to_owned()]
        );
    }

    #[test]
    fn unknown_mode_is_rejected() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let response = state.handle(&ScoreRequest {
            id: 4,
            mode: "translate".into(),
            ..ScoreRequest::default()
        });
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("translate"));
    }

    #[test]
    fn evaluate_requests_share_the_cache_with_score_requests() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let reference = "henson_yield();";
        assert!(
            state
                .handle(&ScoreRequest::by_text(1, reference, vec!["x".into()]))
                .ok
        );
        assert!(
            state
                .handle(&ScoreRequest::evaluate_text(
                    2,
                    reference,
                    "Henson",
                    vec!["x".into()]
                ))
                .ok
        );
        let stats = state.stats();
        assert_eq!(stats.cache_misses, 1, "one shared preparation");
        assert_eq!(stats.cache_hits, 1, "the evaluate request hit it");
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn execute_mode_runs_artifacts_bit_identically() {
        use wfspeak_core::exec::{execute_artifact, ExecutionPipeline};
        use wfspeak_corpus::references::configuration_reference;

        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let reference = configuration_reference(WorkflowSystemId::Wilkins).unwrap();
        let responses = vec![
            reference.to_owned(),
            "Here is the configuration:\n\ntasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n".to_owned(),
            "I cannot help with that.".to_owned(),
        ];
        let request = ScoreRequest::execute(7, "Wilkins", responses.clone());
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert!(response.scores.is_empty() && response.evaluations.is_empty());
        assert_eq!(response.executions.len(), 3);
        assert_eq!(response.executions[0].runnability, 100.0);
        assert_eq!(response.executions[0].trace_fidelity, 100.0);
        assert!(response.executions[1].parsed && !response.executions[1].valid);
        assert!(!response.executions[2].parsed);

        // Bit-identical to running the pipeline in-process.
        let pipeline = ExecutionPipeline::default();
        let summary = pipeline
            .reference_summary(WorkflowSystemId::Wilkins, reference)
            .unwrap();
        for (sent, served) in responses.iter().zip(&response.executions) {
            let direct = execute_artifact(
                pipeline.sandbox(),
                WorkflowSystemId::Wilkins,
                sent,
                &summary,
            );
            assert_eq!(served.runnability.to_bits(), direct.runnability.to_bits());
            assert_eq!(
                served.trace_fidelity.to_bits(),
                direct.trace_fidelity.to_bits()
            );
            assert_eq!(
                (served.parsed, served.valid, served.ran, served.completed),
                (direct.parsed, direct.valid, direct.ran, direct.completed)
            );
            assert_eq!(served.published, direct.published);
            assert_eq!(served.received, direct.received);
            assert_eq!(served.error, direct.error);
        }
        assert_eq!(state.stats().requests, 1);
        assert_eq!(state.stats().hypotheses, 3);
    }

    #[test]
    fn execute_mode_rejects_non_executable_references_without_counting() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        // Annotation references are task codes, not configurations.
        let request = ScoreRequest {
            id: 5,
            reference_id: Some("annotation/Henson".into()),
            mode: "execute".into(),
            hypotheses: vec!["x".into()],
            ..ScoreRequest::default()
        };
        let response = state.handle(&request);
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("reference"));
        assert_eq!(state.stats().requests, 0);

        let missing_system = state.handle(&ScoreRequest {
            id: 6,
            reference_text: Some("tasks: []".into()),
            mode: "execute".into(),
            ..ScoreRequest::default()
        });
        assert!(!missing_system.ok);
        assert!(missing_system.error.unwrap().contains("workflow system"));
    }

    #[test]
    fn execute_batches_beyond_the_cap_are_rejected_without_running() {
        let state = ServiceState::new(&ServiceConfig {
            max_execute_batch: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let oversized = ScoreRequest::execute(9, "Wilkins", vec!["x".into(); 3]);
        let response = state.handle(&oversized);
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("cap"));
        assert_eq!(state.stats().requests, 0, "rejected batches are uncounted");

        let at_cap = ScoreRequest::execute(10, "Wilkins", vec!["x".into(); 2]);
        assert!(state.handle(&at_cap).ok);
    }

    #[test]
    fn execute_reference_runs_are_cached_across_requests() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest::execute(1, "Henson", vec!["x".into()]);
        assert!(state.handle(&request).ok);
        assert!(state.handle(&request).ok);
        assert_eq!(state.executor.cached_references(), 1);
    }

    /// A connected-but-idle loopback socket for building test [`Job`]s.
    fn loopback_peer() -> Arc<TcpStream> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let _accepted = listener.accept().unwrap();
        Arc::new(stream)
    }

    fn test_completion() -> CompletionHandle {
        CompletionHandle {
            io_loop: Arc::new(IoLoopHandle::new().unwrap()),
            token: 0,
            outstanding: Arc::new(AtomicU64::new(1)),
        }
    }

    fn test_job(request: ScoreRequest, reply: Sender<Reply>) -> Job {
        Job {
            request: Ok(request),
            reply,
            peer: loopback_peer(),
            admitted: Instant::now(),
            completion: test_completion(),
        }
    }

    #[test]
    fn expired_deadlines_are_dropped_before_scoring() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let (reply_tx, _reply_rx) = bounded::<Reply>(1);
        // deadline_ms = 0 is expired the instant a worker dequeues it.
        let job = test_job(
            ScoreRequest::by_text(9, "ref", vec!["x".into()]).with_deadline(0),
            reply_tx,
        );
        let response = respond_to_job(&state, &job, FaultAction::None);
        assert!(!response.ok);
        assert_eq!(response.error_kind.as_deref(), Some("deadline"));
        assert_eq!(response.id, 9);
        assert_eq!(state.stats().requests, 0, "expired jobs are never scored");
    }

    #[test]
    fn generous_deadlines_do_not_interfere_with_scoring() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let (reply_tx, _reply_rx) = bounded::<Reply>(1);
        let job = test_job(
            ScoreRequest::by_text(3, "ref", vec!["ref".into()]).with_deadline(60_000),
            reply_tx,
        );
        let response = respond_to_job(&state, &job, FaultAction::None);
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(response.scores.len(), 1);
    }

    #[test]
    fn panicking_jobs_yield_typed_internal_errors_and_count_a_restart() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let (reply_tx, _reply_rx) = bounded::<Reply>(2);
        let job = test_job(
            ScoreRequest::by_text(4, "ref", vec!["x".into()]),
            reply_tx.clone(),
        );
        let response = respond_to_job(&state, &job, FaultAction::WorkerPanic);
        assert!(!response.ok);
        assert_eq!(response.id, 4);
        assert_eq!(response.error_kind.as_deref(), Some("internal"));
        assert!(response.error.unwrap().contains("panicked"));
        assert_eq!(state.stats().worker_restarts, 1);

        // The pool state survives the unwind: the next job scores cleanly.
        let next = test_job(
            ScoreRequest::by_text(5, "ref", vec!["ref".into()]),
            reply_tx,
        );
        let response = respond_to_job(&state, &next, FaultAction::None);
        assert!(response.ok, "{:?}", response.error);
    }

    #[test]
    fn fault_offsets_stay_within_the_line() {
        assert_eq!(fault_offset(0, 50), 0);
        assert_eq!(fault_offset(100, 0), 0);
        assert_eq!(fault_offset(100, 99), 99);
        assert_eq!(fault_offset(7, 50), 3);
    }

    #[test]
    fn invalid_fault_plans_fail_spawn_with_invalid_input() {
        let result = ScoringServer::spawn(
            "127.0.0.1:0",
            ServiceConfig {
                faults: Some(FaultPlan {
                    worker_panic_per_1024: 1024,
                    torn_frame_per_1024: 1024,
                    ..FaultPlan::chaos(0)
                }),
                ..ServiceConfig::default()
            },
        );
        let error = match result {
            Err(error) => error,
            Ok(_) => panic!("an oversubscribed fault plan must fail spawn"),
        };
        assert_eq!(error.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn stats_requests_do_not_inflate_request_counters() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let response = state.handle(&ScoreRequest::stats(8));
        assert!(response.ok);
        assert_eq!(response.stats.unwrap().requests, 0);
        assert_eq!(state.stats().requests, 0);
    }

    #[test]
    fn io_thread_zero_is_clamped_to_one_loop() {
        let config = ServiceConfig {
            io_threads: 0,
            ..ServiceConfig::default()
        };
        assert_eq!(config.effective_io_threads(), 1);
        assert_eq!(
            ServiceConfig {
                io_threads: 4,
                ..ServiceConfig::default()
            }
            .effective_io_threads(),
            4
        );
    }

    #[test]
    fn torn_replies_split_into_two_segments_with_identical_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let peer = Arc::new(stream.try_clone().unwrap());
        let (reply_tx, reply_rx) = bounded::<Reply>(1);
        let mut conn = Connection {
            stream,
            peer,
            decoder: FrameDecoder::new(),
            reply_tx,
            reply_rx,
            out: VecDeque::new(),
            out_pos: 0,
            pending: None,
            outstanding: Arc::new(AtomicU64::new(0)),
            read_closed: false,
            registered: Interest::readable(),
            dead: false,
        };
        enqueue_reply(
            &mut conn,
            Reply {
                line: "0123456789\n".to_owned(),
                fault: Some(WriteFault::Torn { split_percent: 40 }),
            },
        );
        assert_eq!(conn.out.len(), 2);
        let joined: Vec<u8> = conn
            .out
            .iter()
            .flat_map(|segment| segment.bytes.iter().copied())
            .collect();
        assert_eq!(joined, b"0123456789\n");
        assert!(conn.out.iter().all(|segment| !segment.shutdown_after));

        conn.out.clear();
        enqueue_reply(
            &mut conn,
            Reply {
                line: "0123456789\n".to_owned(),
                fault: Some(WriteFault::Disconnect {
                    truncate_percent: 99,
                }),
            },
        );
        assert_eq!(conn.out.len(), 1);
        let segment = conn.out.front().unwrap();
        assert!(segment.shutdown_after);
        assert!(
            segment.bytes.len() < b"0123456789\n".len(),
            "a disconnect fault never writes the full frame"
        );
    }
}
