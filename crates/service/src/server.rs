//! The scoring server: accept loop, per-connection I/O threads and the
//! shared worker pool.
//!
//! ```text
//!                    ┌───────────────────────────────────────────┐
//!                    │               ScoringServer               │
//!  client A ──TCP──▶ │ reader A ─┐                 ┌─ writer A   │ ──▶ client A
//!                    │           ├▶ bounded queue ─┤             │
//!  client B ──TCP──▶ │ reader B ─┘   (backpressure)└─ writer B   │ ──▶ client B
//!                    │                 │   │                     │
//!                    │              worker pool ──▶ ServiceState │
//!                    │              (N threads)    (scorers +    │
//!                    │                              shared cache)│
//!                    └───────────────────────────────────────────┘
//! ```
//!
//! * Each connection gets a **reader** thread (parses request lines, pushes
//!   jobs) and a **writer** thread (serialises responses). Readers wait up
//!   to [`ServiceConfig::admission_timeout`] for space in the bounded job
//!   queue; while they wait, backpressure propagates to the client's TCP
//!   window instead of buffering without bound. When the queue stays full
//!   past the timeout the request is **shed** with a typed `"overloaded"`
//!   protocol error ([`ScoreResponse::overloaded`]) so clients can back off
//!   and retry instead of guessing at a stalled TCP window. A client that
//!   pipelines requests but stops reading responses is disconnected after
//!   [`ServiceConfig::reply_stall_timeout`] so it cannot wedge the shared
//!   pool.
//! * The **worker pool** is shared across connections; each job carries a
//!   handle to its connection's writer, so responses route back to the right
//!   client no matter which worker scored them.
//! * All workers share one [`ReferenceCache`]: the first request against a
//!   reference prepares it (tokenise + intern + count), every later request
//!   from *any* connection reuses the prepared form.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use wfspeak_core::eval::{evaluate_prepared, SystemProfile};
use wfspeak_core::exec::ExecutionPipeline;
use wfspeak_core::{ReferenceCache, WorkflowSystemId};
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};

use crate::faults::{FaultAction, FaultInjector, FaultPlan, WriteFault};
use crate::protocol::{
    decode_line, encode_line, salvage_request_id, EvaluationScore, ExecutionScore, HypothesisScore,
    RequestMode, ScoreRequest, ScoreResponse, ServiceStats,
};

/// Tunables for [`ScoringServer::spawn`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Scoring worker threads. `0` means one per available core.
    pub workers: usize,
    /// Bounded job-queue depth; readers block (backpressure) when full.
    pub queue_depth: usize,
    /// Cap on distinct references kept prepared in the shared cache. The
    /// built-in corpus references always fit; the cap bounds memory when
    /// clients stream arbitrary `reference_text` values — beyond it, unseen
    /// references are prepared per request without being retained.
    pub max_cached_references: usize,
    /// How long a worker waits to hand a response to a connection whose
    /// reply buffer is full before disconnecting that client (a client that
    /// pipelines heavily but never reads would otherwise wedge the shared
    /// pool).
    pub reply_stall_timeout: std::time::Duration,
    /// Per-connection reply-buffer depth: responses queued between the
    /// worker pool and the connection's writer thread.  When a client stops
    /// reading, this buffer (plus the kernel's socket buffers) is all the
    /// slack it gets before workers start hitting
    /// [`reply_stall_timeout`](ServiceConfig::reply_stall_timeout).
    pub reply_queue_depth: usize,
    /// How long a reader waits for space in the bounded job queue before
    /// shedding the request with a typed `"overloaded"` error. Zero sheds
    /// immediately whenever the queue is full.
    pub admission_timeout: std::time::Duration,
    /// Maximum hypotheses per `mode: "execute"` request.  Unlike scoring
    /// (sub-millisecond per hypothesis), each execution can legitimately
    /// cost threads and — for stalling-but-valid specs — seconds of
    /// sandbox timeout, so one oversized batch must not pin a shared
    /// worker indefinitely; larger batches are rejected with an error and
    /// should be split across pipelined requests.
    pub max_execute_batch: usize,
    /// How long [`shutdown`](ScoringServer::shutdown) waits for admitted
    /// work to finish (queue drained, in-flight jobs replied) before
    /// force-disconnecting the remaining connections.
    pub drain_timeout: std::time::Duration,
    /// Deterministic fault-injection plan for chaos testing; `None` (the
    /// default) disables injection entirely and the fault plumbing is
    /// invisible (the golden snapshot tests pin this).
    pub faults: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_depth: 256,
            max_cached_references: 4096,
            reply_stall_timeout: std::time::Duration::from_secs(10),
            reply_queue_depth: 256,
            admission_timeout: std::time::Duration::from_millis(250),
            max_execute_batch: 64,
            drain_timeout: std::time::Duration::from_secs(5),
            faults: None,
        }
    }
}

impl ServiceConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Scorers, the shared prepared-reference cache and lifetime counters —
/// everything the worker pool needs, shared across all connections.
#[derive(Debug)]
struct ServiceState {
    bleu: BleuScorer,
    chrf: ChrfScorer,
    cache: ReferenceCache,
    executor: ExecutionPipeline,
    max_cached_references: usize,
    max_execute_batch: usize,
    requests: AtomicU64,
    hypotheses: AtomicU64,
    /// Jobs admitted to the bounded queue and not yet picked up by a
    /// worker. Incremented at admission, decremented at dequeue, so a
    /// `stats` snapshot can report live queue pressure.
    queue_depth: AtomicU64,
    /// Jobs a worker has dequeued and not yet replied to. Together with
    /// `queue_depth` this is the shutdown drain condition: both at zero
    /// means every admitted job has been answered.
    inflight: AtomicU64,
    /// Panicking jobs caught and answered as `"internal"`; each one stands
    /// for a worker the pool had to replace.
    worker_restarts: AtomicU64,
    /// The deterministic fault schedule, when chaos testing is enabled.
    injector: Option<FaultInjector>,
}

impl ServiceState {
    fn new(config: &ServiceConfig) -> Result<Self, String> {
        let injector = match &config.faults {
            Some(plan) => Some(FaultInjector::new(plan.clone())?),
            None => None,
        };
        Ok(ServiceState {
            bleu: BleuScorer::default(),
            chrf: ChrfScorer::default(),
            cache: ReferenceCache::default(),
            // The same cap bounds both caches: arbitrary client-supplied
            // reference text must not grow server memory without limit.
            executor: ExecutionPipeline::default().with_cache_cap(config.max_cached_references),
            max_cached_references: config.max_cached_references,
            max_execute_batch: config.max_execute_batch,
            requests: AtomicU64::new(0),
            hypotheses: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            injector,
        })
    }

    fn stats(&self) -> ServiceStats {
        let cache = self.cache.stats();
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            hypotheses: self.hypotheses.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            faults_injected: self.injector.as_ref().map_or(0, FaultInjector::injected),
        }
    }

    /// Execute one request. Both modes funnel through exactly the code the
    /// in-process paths use — `Scorer::score_prepared` for scoring,
    /// `wfspeak_core::eval::evaluate_prepared` for the full pipeline — so
    /// served results are bit-identical to direct composition.
    fn handle(&self, request: &ScoreRequest) -> ScoreResponse {
        let mode = match request.resolve_mode() {
            Ok(mode) => mode,
            Err(message) => return ScoreResponse::failure(request.id, message),
        };
        let reference = match request.resolve_reference() {
            Ok(Some(reference)) => reference,
            Ok(None) => return ScoreResponse::stats(request.id, self.stats()),
            Err(message) => return ScoreResponse::failure(request.id, message),
        };
        // Evaluate needs a workflow system for API-call comparison; execute
        // needs one to pick the configuration dialect — even when the
        // reference text arrives inline.
        let system_id = match mode {
            RequestMode::Score => None,
            RequestMode::Evaluate | RequestMode::Execute => {
                let Some(name) = request.resolve_system_name() else {
                    return ScoreResponse::failure(
                        request.id,
                        "evaluate/execute requests must name a workflow system \
                         (`system` or `reference_id`)",
                    );
                };
                match WorkflowSystemId::from_name(name) {
                    Some(id) => Some(id),
                    None => {
                        return ScoreResponse::failure(
                            request.id,
                            format!("unknown workflow system `{name}`"),
                        )
                    }
                }
            }
        };
        if mode == RequestMode::Execute {
            // `system_id` is always `Some` here (resolved just above for
            // execute mode), but the invariant is guarded by a typed
            // protocol error rather than an `expect`: no request shape may
            // ever panic a worker, even without the `catch_unwind` backstop.
            let Some(system) = system_id else {
                return ScoreResponse::failure(
                    request.id,
                    "execute requests must name a workflow system \
                     (`system` or `reference_id`)",
                );
            };
            // Executions cost real threads and (for stalling specs) real
            // sandbox-timeout seconds each; bound what one request can pin
            // a worker with.
            if request.hypotheses.len() > self.max_execute_batch {
                return ScoreResponse::failure(
                    request.id,
                    format!(
                        "execute batch of {} exceeds the per-request cap of {}; \
                         split it across pipelined requests",
                        request.hypotheses.len(),
                        self.max_execute_batch
                    ),
                );
            }
            // Resolve the reference run first so a bad reference is a
            // failure (uncounted), matching every other addressing error.
            let summary = match self.executor.reference_summary(system, reference) {
                Ok(summary) => summary,
                Err(message) => return ScoreResponse::failure(request.id, message),
            };
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.hypotheses
                .fetch_add(request.hypotheses.len() as u64, Ordering::Relaxed);
            let executions: Vec<ExecutionScore> = request
                .hypotheses
                .iter()
                .map(|response| {
                    ExecutionScore::from_execution(&wfspeak_core::exec::execute_artifact(
                        self.executor.sandbox(),
                        system,
                        response,
                        &summary,
                    ))
                })
                .collect();
            return ScoreResponse::executed(request.id, executions);
        }
        let profile = system_id.map(SystemProfile::for_system);
        // Counted at admission, before the cache lookup, so a concurrent
        // `stats` snapshot never shows more cache traffic than the request
        // count can explain.
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.hypotheses
            .fetch_add(request.hypotheses.len() as u64, Ordering::Relaxed);
        let prepared = self.cache.get_or_prepare_bounded(
            &self.bleu,
            &self.chrf,
            reference,
            self.max_cached_references,
        );
        match profile {
            None => {
                let scores: Vec<HypothesisScore> = request
                    .hypotheses
                    .iter()
                    .map(|hypothesis| HypothesisScore {
                        bleu: self.bleu.score_prepared(hypothesis, &prepared.bleu),
                        chrf: self.chrf.score_prepared(hypothesis, &prepared.chrf),
                    })
                    .collect();
                ScoreResponse::success(request.id, scores)
            }
            Some(profile) => {
                let evaluations: Vec<EvaluationScore> = request
                    .hypotheses
                    .iter()
                    .map(|response| {
                        EvaluationScore::from_evaluation(&evaluate_prepared(
                            &self.bleu, &self.chrf, &prepared, &profile, response,
                        ))
                    })
                    .collect();
                ScoreResponse::evaluated(request.id, evaluations)
            }
        }
    }
}

/// One unit of work for the pool: a parsed (or unparsable) request line,
/// the sender that routes the response line back to the right connection,
/// and the connection's socket so a stalled connection can be disconnected.
struct Job {
    request: Result<ScoreRequest, ScoreResponse>,
    reply: Sender<Reply>,
    peer: Arc<TcpStream>,
    /// When the reader admitted this job to the queue; the worker checks
    /// the request's `deadline_ms` against it before scoring.
    admitted: Instant,
}

/// One response line on its way to a connection's writer thread, plus the
/// write-path fault (if any) the writer must apply to it.
struct Reply {
    line: String,
    fault: Option<WriteFault>,
}

impl Reply {
    fn clean(line: String) -> Self {
        Reply { line, fault: None }
    }
}

/// Live connections, so shutdown can force-disconnect stragglers instead of
/// waiting forever on a client that never hangs up.
#[derive(Default)]
struct ConnectionRegistry {
    next_id: AtomicU64,
    stopping: AtomicBool,
    sockets: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnectionRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(id, clone);
        // A connection registering after `disconnect_all` scanned the map
        // (accepted moments before shutdown) closes itself.
        if self.stopping.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.sockets.lock().remove(&id);
    }

    fn disconnect_all(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        for socket in self.sockets.lock().values() {
            let _ = socket.shutdown(Shutdown::Both);
        }
    }
}

/// A running scoring server.
///
/// Bind with [`ScoringServer::spawn`]; the returned handle reports the bound
/// address ([`addr`](ScoringServer::addr)), exposes live statistics
/// ([`stats`](ScoringServer::stats)) and shuts the listener down on
/// [`shutdown`](ScoringServer::shutdown) (or on drop).
pub struct ScoringServer {
    addr: std::net::SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    connections: Arc<ConnectionRegistry>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    drain_timeout: Duration,
}

impl ScoringServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the accept
    /// loop plus the worker pool.
    pub fn spawn(addr: impl ToSocketAddrs, config: ServiceConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = ServiceState::new(&config)
            .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidInput, message))?;
        let state = Arc::new(state);
        let stop = Arc::new(AtomicBool::new(false));

        let (job_tx, job_rx) = bounded::<Job>(config.queue_depth.max(1));
        // The vendored channel's receiver is single-consumer; workers take
        // turns holding the lock while blocked in `recv`, which serialises
        // dequeueing only — scoring itself runs in parallel.
        let job_rx = Arc::new(Mutex::new(job_rx));

        let worker_handles = (0..config.effective_workers())
            .map(|_| {
                let state = Arc::clone(&state);
                let job_rx = Arc::clone(&job_rx);
                let stall_timeout = config.reply_stall_timeout;
                std::thread::spawn(move || worker_loop(&state, &job_rx, stall_timeout))
            })
            .collect();

        let connections = Arc::new(ConnectionRegistry::default());
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let state = Arc::clone(&state);
            let reply_depth = config.reply_queue_depth.max(1);
            let admission_timeout = config.admission_timeout;
            std::thread::spawn(move || {
                accept_loop(
                    &listener,
                    job_tx,
                    &stop,
                    &connections,
                    &state,
                    reply_depth,
                    admission_timeout,
                )
            })
        };

        Ok(ScoringServer {
            addr,
            state,
            stop,
            connections,
            accept_handle: Some(accept_handle),
            worker_handles,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A live snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.state.stats()
    }

    /// Block the calling thread for the server's lifetime (the accept loop
    /// only exits on shutdown). `repro serve` parks on this.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    /// Shut down as a drain: stop accepting connections, let admitted work
    /// finish and its replies flush, then force-disconnect stragglers past
    /// [`ServiceConfig::drain_timeout`] and join every server thread.
    ///
    /// Queued work is still scored (responses to disconnected clients are
    /// dropped at the writer), so counters in [`stats`](ScoringServer::stats)
    /// reflect all accepted work.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Drain phase: wait (bounded by the drain deadline) until every
        // admitted job has left the queue and been replied to, so clients
        // that are reading receive everything they were promised. Clients
        // may still submit new work on live connections during the drain;
        // the deadline bounds how long they can prolong it.
        let deadline = Instant::now() + self.drain_timeout;
        loop {
            let quiesced = self.state.queue_depth.load(Ordering::SeqCst) == 0
                && self.state.inflight.load(Ordering::SeqCst) == 0;
            if quiesced || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Brief grace so connection writers can flush replies that are
        // queued but not yet on the wire; best-effort only — the
        // force-disconnect below is the correctness backstop.
        std::thread::sleep(Duration::from_millis(20).min(self.drain_timeout));
        // Force-disconnect clients that have not hung up; their reader
        // threads exit, releasing the last job senders so workers drain the
        // queue and observe disconnect.
        self.connections.disconnect_all();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ScoringServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn worker_loop(
    state: &ServiceState,
    jobs: &Mutex<Receiver<Job>>,
    stall_timeout: std::time::Duration,
) {
    loop {
        // Holding the lock across `recv` parks exactly one idle worker on the
        // channel; it wakes, releases the lock, and scores while the next
        // idle worker moves into the waiting slot.
        let job = match jobs.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // queue disconnected: server shutting down
        };
        // Mark in-flight *before* leaving the queue so the shutdown drain
        // never observes queue_depth and inflight both zero while a job is
        // mid-handoff.
        state.inflight.fetch_add(1, Ordering::SeqCst);
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        // One schedule draw per dequeued job: the Nth job a server handles
        // always gets the Nth fault decision, so chaos runs replay.
        let action = state
            .injector
            .as_ref()
            .map_or(FaultAction::None, FaultInjector::next_action);
        let response = respond_to_job(state, &job, action);
        // A disconnected error means the connection writer is gone (client
        // hung up mid-flight); the response is dropped, matching TCP
        // semantics. A timeout means the client's reply buffer stayed full
        // for the whole stall window — it is pipelining without reading —
        // so disconnect it rather than let one slow reader wedge the shared
        // pool.
        use crossbeam_channel::SendTimeoutError;
        let reply = Reply {
            line: encode_line(&response),
            fault: action.write_fault(),
        };
        if let Err(SendTimeoutError::Timeout) = job.reply.send_timeout(reply, stall_timeout) {
            let _ = job.peer.shutdown(Shutdown::Both);
        }
        state.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Produce the response for one dequeued job: enforce the request deadline,
/// then run the handler under `catch_unwind` so a panicking job — injected
/// by the fault plan or a genuine bug — yields a typed
/// `error_kind: "internal"` response instead of a hung connection.
///
/// The unwind poisons nothing: all per-job state lives on the unwound
/// stack, the shared caches use panic-safe locks, and the worker re-enters
/// its loop with a clean frame — the pool's "respawn", counted in
/// [`ServiceStats::worker_restarts`].
fn respond_to_job(state: &ServiceState, job: &Job, action: FaultAction) -> ScoreResponse {
    let request = match &job.request {
        Ok(request) => request,
        Err(failure) => return failure.clone(),
    };
    if let Some(deadline_ms) = request.deadline_ms {
        let waited_ms = job.admitted.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        if waited_ms >= deadline_ms {
            // Expired while queued: drop it before scoring so a backlogged
            // server stops burning workers on answers nobody waits for.
            return ScoreResponse::deadline_exceeded(request.id, deadline_ms, waited_ms);
        }
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if action == FaultAction::WorkerPanic {
            panic!("injected fault: worker panic");
        }
        state.handle(request)
    }));
    match outcome {
        Ok(response) => response,
        Err(payload) => {
            state.worker_restarts.fetch_add(1, Ordering::Relaxed);
            ScoreResponse::internal_error(request.id, panic_detail(payload.as_ref()))
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "opaque panic payload"
    }
}

fn accept_loop(
    listener: &TcpListener,
    job_tx: Sender<Job>,
    stop: &AtomicBool,
    connections: &Arc<ConnectionRegistry>,
    state: &Arc<ServiceState>,
    reply_depth: usize,
    admission_timeout: std::time::Duration,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return; // drops job_tx; workers drain and exit
        }
        let Ok(stream) = stream else { continue };
        let job_tx = job_tx.clone();
        let connections = Arc::clone(connections);
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            let Some(id) = connections.register(&stream) else {
                return;
            };
            handle_connection(stream, job_tx, &state, reply_depth, admission_timeout);
            connections.deregister(id);
        });
    }
}

/// Per-connection plumbing: spawn the writer, then parse request lines and
/// feed the shared job queue until the client disconnects.
fn handle_connection(
    stream: TcpStream,
    job_tx: Sender<Job>,
    state: &ServiceState,
    reply_depth: usize,
    admission_timeout: std::time::Duration,
) {
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let peer = Arc::new(peer);
    // Writer capacity is independent of the job queue: it only buffers
    // responses the client has not read yet.
    let (reply_tx, reply_rx) = bounded::<Reply>(reply_depth);
    let writer_handle = std::thread::spawn(move || writer_loop(write_stream, &reply_rx));

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = decode_line::<ScoreRequest>(&line).map_err(|message| {
            ScoreResponse::failure(
                salvage_request_id(&line),
                format!("invalid request: {message}"),
            )
        });
        let request_id = match &request {
            Ok(request) => request.id,
            Err(failure) => failure.id,
        };
        let job = Job {
            request,
            reply: reply_tx.clone(),
            peer: Arc::clone(&peer),
            admitted: Instant::now(),
        };
        // Count the job before handing it over so the depth can never read
        // negative: increment → enqueue → (worker dequeues → decrement).
        state.queue_depth.fetch_add(1, Ordering::SeqCst);
        use crossbeam_channel::SendTimeoutError;
        match job_tx.send_timeout(job, admission_timeout) {
            Ok(()) => {}
            Err(SendTimeoutError::Timeout) => {
                // Queue stayed full for the whole admission window: shed the
                // request with a typed error instead of stalling the reader
                // (and with it the client's TCP window) indefinitely.
                let depth = state.queue_depth.fetch_sub(1, Ordering::SeqCst) - 1;
                let shed = ScoreResponse::overloaded(request_id, depth as usize);
                if reply_tx.send(Reply::clean(encode_line(&shed))).is_err() {
                    break;
                }
            }
            Err(SendTimeoutError::Disconnected) => {
                state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                break; // server shutting down
            }
        }
    }
    // Dropping our reply sender lets the writer exit once in-flight workers
    // (each holding a clone) finish sending their responses.
    drop(reply_tx);
    let _ = writer_handle.join();
}

fn writer_loop(stream: TcpStream, replies: &Receiver<Reply>) {
    let mut writer = BufWriter::new(&stream);
    while let Ok(reply) = replies.recv() {
        let bytes = reply.line.as_bytes();
        let written = match reply.fault {
            None => writer.write_all(bytes).and_then(|()| writer.flush()),
            Some(WriteFault::Delay { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                writer.write_all(bytes).and_then(|()| writer.flush())
            }
            // The response evaporates; clients need deadlines + retries.
            Some(WriteFault::Drop) => Ok(()),
            // Two flushes exercise the client's frame reassembly; the bytes
            // on the wire are identical.
            Some(WriteFault::Torn { split_percent }) => {
                let split = fault_offset(bytes.len(), split_percent);
                writer
                    .write_all(&bytes[..split])
                    .and_then(|()| writer.flush())
                    .and_then(|()| writer.write_all(&bytes[split..]))
                    .and_then(|()| writer.flush())
            }
            // A torn frame with no continuation: partial bytes, then a
            // mid-request disconnect (both directions, so the reader tears
            // the connection down too).
            Some(WriteFault::Disconnect { truncate_percent }) => {
                let cut =
                    fault_offset(bytes.len(), truncate_percent).min(bytes.len().saturating_sub(1));
                let _ = writer.write_all(&bytes[..cut]);
                let _ = writer.flush();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        if written.is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// Scale a 0–99 fault percentage to a byte offset within a response line.
fn fault_offset(len: usize, percent: u8) -> usize {
    len * usize::from(percent % 100) / 100
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TaskKind;

    #[test]
    fn state_scores_match_direct_prepared_scoring() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest::by_text(
            5,
            "tasks:\n  - func: producer",
            vec!["tasks:\n  - func: producer".into(), "tasks: []".into()],
        );
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(response.id, 5);
        assert_eq!(response.scores.len(), 2);
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        for (hypothesis, score) in request.hypotheses.iter().zip(&response.scores) {
            assert_eq!(
                score.bleu.to_bits(),
                bleu.score(hypothesis, "tasks:\n  - func: producer")
                    .to_bits()
            );
            assert_eq!(
                score.chrf.to_bits(),
                chrf.score(hypothesis, "tasks:\n  - func: producer")
                    .to_bits()
            );
        }
    }

    #[test]
    fn state_counts_requests_hypotheses_and_cache_traffic() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest::by_id(
            1,
            TaskKind::Configuration,
            "Henson",
            vec!["a".into(), "b".into(), "c".into()],
        );
        assert!(state.handle(&request).ok);
        assert!(state.handle(&request).ok);
        let stats = state.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.hypotheses, 6);
        assert_eq!(stats.cache_misses, 1, "reference prepared exactly once");
        assert_eq!(stats.cache_hits, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reference_cache_respects_the_configured_cap() {
        let state = ServiceState::new(&ServiceConfig {
            max_cached_references: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(
            state
                .handle(&ScoreRequest::by_text(1, "ref a", vec!["x".into()]))
                .ok
        );
        // Distinct text beyond the cap: still scored, never retained.
        assert!(
            state
                .handle(&ScoreRequest::by_text(2, "ref b", vec!["x".into()]))
                .ok
        );
        assert!(
            state
                .handle(&ScoreRequest::by_text(3, "ref b", vec!["x".into()]))
                .ok
        );
        // The capped entry keeps hitting.
        assert!(
            state
                .handle(&ScoreRequest::by_text(4, "ref a", vec!["x".into()]))
                .ok
        );
        let stats = state.stats();
        assert_eq!(stats.cache_misses, 3, "a once, uncacheable b twice");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn state_reports_failures_without_counting_them() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let response = state.handle(&ScoreRequest::by_id(
            3,
            TaskKind::Configuration,
            "NoSuchSystem",
            vec!["x".into()],
        ));
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("NoSuchSystem"));
        assert_eq!(state.stats().requests, 0);
    }

    #[test]
    fn evaluate_mode_runs_full_pipeline_bit_identically() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let reference = "henson_save_int(\"t\", t);\nhenson_yield();";
        let responses = vec![
            "Here is the code:\n```c\nhenson_put(\"t\", t);\nhenson_yield();\n```".to_owned(),
            reference.to_owned(),
        ];
        let request = ScoreRequest::evaluate_text(7, reference, "Henson", responses.clone());
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert!(response.scores.is_empty());
        assert_eq!(response.evaluations.len(), 2);
        assert_eq!(
            response.evaluations[0].hallucinated,
            vec!["henson_put".to_owned()]
        );
        assert_eq!(response.evaluations[1].call_recall, 1.0);

        // Bit-identical to running the pipeline in-process.
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        let cache = ReferenceCache::default();
        let prepared = cache.get_or_prepare(&bleu, &chrf, reference);
        let profile = SystemProfile::by_name("Henson").unwrap();
        for (sent, served) in responses.iter().zip(&response.evaluations) {
            let direct = evaluate_prepared(&bleu, &chrf, &prepared, &profile, sent);
            assert_eq!(served.bleu.to_bits(), direct.bleu.to_bits());
            assert_eq!(served.chrf.to_bits(), direct.chrf.to_bits());
            assert_eq!(served.matched, direct.calls.matched);
            assert_eq!(served.missing, direct.calls.missing);
            assert_eq!(served.extra, direct.calls.extra);
            assert_eq!(served.hallucinated, direct.calls.hallucinated);
        }
    }

    #[test]
    fn evaluate_mode_requires_a_known_system() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let missing = state.handle(&ScoreRequest {
            id: 1,
            reference_text: Some("ref".into()),
            mode: "evaluate".into(),
            hypotheses: vec!["x".into()],
            ..ScoreRequest::default()
        });
        assert!(!missing.ok);
        assert!(missing.error.unwrap().contains("workflow system"));

        let unknown = state.handle(&ScoreRequest::evaluate_text(
            2,
            "ref",
            "Slurm",
            vec!["x".into()],
        ));
        assert!(!unknown.ok);
        assert!(unknown.error.unwrap().contains("Slurm"));
        assert_eq!(state.stats().requests, 0, "failures are not counted");
    }

    #[test]
    fn evaluate_via_reference_id_uses_that_system_for_the_catalogue() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest {
            id: 3,
            reference_id: Some("annotation/Henson".into()),
            mode: "EVALUATE".into(),
            hypotheses: vec!["henson_put();".into()],
            ..ScoreRequest::default()
        };
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(
            response.evaluations[0].hallucinated,
            vec!["henson_put".to_owned()]
        );
    }

    #[test]
    fn unknown_mode_is_rejected() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let response = state.handle(&ScoreRequest {
            id: 4,
            mode: "translate".into(),
            ..ScoreRequest::default()
        });
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("translate"));
    }

    #[test]
    fn evaluate_requests_share_the_cache_with_score_requests() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let reference = "henson_yield();";
        assert!(
            state
                .handle(&ScoreRequest::by_text(1, reference, vec!["x".into()]))
                .ok
        );
        assert!(
            state
                .handle(&ScoreRequest::evaluate_text(
                    2,
                    reference,
                    "Henson",
                    vec!["x".into()]
                ))
                .ok
        );
        let stats = state.stats();
        assert_eq!(stats.cache_misses, 1, "one shared preparation");
        assert_eq!(stats.cache_hits, 1, "the evaluate request hit it");
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn execute_mode_runs_artifacts_bit_identically() {
        use wfspeak_core::exec::{execute_artifact, ExecutionPipeline};
        use wfspeak_corpus::references::configuration_reference;

        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let reference = configuration_reference(WorkflowSystemId::Wilkins).unwrap();
        let responses = vec![
            reference.to_owned(),
            "Here is the configuration:\n\ntasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n".to_owned(),
            "I cannot help with that.".to_owned(),
        ];
        let request = ScoreRequest::execute(7, "Wilkins", responses.clone());
        let response = state.handle(&request);
        assert!(response.ok, "{:?}", response.error);
        assert!(response.scores.is_empty() && response.evaluations.is_empty());
        assert_eq!(response.executions.len(), 3);
        assert_eq!(response.executions[0].runnability, 100.0);
        assert_eq!(response.executions[0].trace_fidelity, 100.0);
        assert!(response.executions[1].parsed && !response.executions[1].valid);
        assert!(!response.executions[2].parsed);

        // Bit-identical to running the pipeline in-process.
        let pipeline = ExecutionPipeline::default();
        let summary = pipeline
            .reference_summary(WorkflowSystemId::Wilkins, reference)
            .unwrap();
        for (sent, served) in responses.iter().zip(&response.executions) {
            let direct = execute_artifact(
                pipeline.sandbox(),
                WorkflowSystemId::Wilkins,
                sent,
                &summary,
            );
            assert_eq!(served.runnability.to_bits(), direct.runnability.to_bits());
            assert_eq!(
                served.trace_fidelity.to_bits(),
                direct.trace_fidelity.to_bits()
            );
            assert_eq!(
                (served.parsed, served.valid, served.ran, served.completed),
                (direct.parsed, direct.valid, direct.ran, direct.completed)
            );
            assert_eq!(served.published, direct.published);
            assert_eq!(served.received, direct.received);
            assert_eq!(served.error, direct.error);
        }
        assert_eq!(state.stats().requests, 1);
        assert_eq!(state.stats().hypotheses, 3);
    }

    #[test]
    fn execute_mode_rejects_non_executable_references_without_counting() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        // Annotation references are task codes, not configurations.
        let request = ScoreRequest {
            id: 5,
            reference_id: Some("annotation/Henson".into()),
            mode: "execute".into(),
            hypotheses: vec!["x".into()],
            ..ScoreRequest::default()
        };
        let response = state.handle(&request);
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("reference"));
        assert_eq!(state.stats().requests, 0);

        let missing_system = state.handle(&ScoreRequest {
            id: 6,
            reference_text: Some("tasks: []".into()),
            mode: "execute".into(),
            ..ScoreRequest::default()
        });
        assert!(!missing_system.ok);
        assert!(missing_system.error.unwrap().contains("workflow system"));
    }

    #[test]
    fn execute_batches_beyond_the_cap_are_rejected_without_running() {
        let state = ServiceState::new(&ServiceConfig {
            max_execute_batch: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let oversized = ScoreRequest::execute(9, "Wilkins", vec!["x".into(); 3]);
        let response = state.handle(&oversized);
        assert!(!response.ok);
        assert!(response.error.unwrap().contains("cap"));
        assert_eq!(state.stats().requests, 0, "rejected batches are uncounted");

        let at_cap = ScoreRequest::execute(10, "Wilkins", vec!["x".into(); 2]);
        assert!(state.handle(&at_cap).ok);
    }

    #[test]
    fn execute_reference_runs_are_cached_across_requests() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let request = ScoreRequest::execute(1, "Henson", vec!["x".into()]);
        assert!(state.handle(&request).ok);
        assert!(state.handle(&request).ok);
        assert_eq!(state.executor.cached_references(), 1);
    }

    /// A connected-but-idle loopback socket for building test [`Job`]s.
    fn loopback_peer() -> Arc<TcpStream> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let _accepted = listener.accept().unwrap();
        Arc::new(stream)
    }

    fn test_job(request: ScoreRequest, reply: Sender<Reply>) -> Job {
        Job {
            request: Ok(request),
            reply,
            peer: loopback_peer(),
            admitted: Instant::now(),
        }
    }

    #[test]
    fn expired_deadlines_are_dropped_before_scoring() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let (reply_tx, _reply_rx) = bounded::<Reply>(1);
        // deadline_ms = 0 is expired the instant a worker dequeues it.
        let job = test_job(
            ScoreRequest::by_text(9, "ref", vec!["x".into()]).with_deadline(0),
            reply_tx,
        );
        let response = respond_to_job(&state, &job, FaultAction::None);
        assert!(!response.ok);
        assert_eq!(response.error_kind.as_deref(), Some("deadline"));
        assert_eq!(response.id, 9);
        assert_eq!(state.stats().requests, 0, "expired jobs are never scored");
    }

    #[test]
    fn generous_deadlines_do_not_interfere_with_scoring() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let (reply_tx, _reply_rx) = bounded::<Reply>(1);
        let job = test_job(
            ScoreRequest::by_text(3, "ref", vec!["ref".into()]).with_deadline(60_000),
            reply_tx,
        );
        let response = respond_to_job(&state, &job, FaultAction::None);
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(response.scores.len(), 1);
    }

    #[test]
    fn panicking_jobs_yield_typed_internal_errors_and_count_a_restart() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let (reply_tx, _reply_rx) = bounded::<Reply>(2);
        let job = test_job(
            ScoreRequest::by_text(4, "ref", vec!["x".into()]),
            reply_tx.clone(),
        );
        let response = respond_to_job(&state, &job, FaultAction::WorkerPanic);
        assert!(!response.ok);
        assert_eq!(response.id, 4);
        assert_eq!(response.error_kind.as_deref(), Some("internal"));
        assert!(response.error.unwrap().contains("panicked"));
        assert_eq!(state.stats().worker_restarts, 1);

        // The pool state survives the unwind: the next job scores cleanly.
        let next = test_job(
            ScoreRequest::by_text(5, "ref", vec!["ref".into()]),
            reply_tx,
        );
        let response = respond_to_job(&state, &next, FaultAction::None);
        assert!(response.ok, "{:?}", response.error);
    }

    #[test]
    fn fault_offsets_stay_within_the_line() {
        assert_eq!(fault_offset(0, 50), 0);
        assert_eq!(fault_offset(100, 0), 0);
        assert_eq!(fault_offset(100, 99), 99);
        assert_eq!(fault_offset(7, 50), 3);
    }

    #[test]
    fn invalid_fault_plans_fail_spawn_with_invalid_input() {
        let result = ScoringServer::spawn(
            "127.0.0.1:0",
            ServiceConfig {
                faults: Some(FaultPlan {
                    worker_panic_per_1024: 1024,
                    torn_frame_per_1024: 1024,
                    ..FaultPlan::chaos(0)
                }),
                ..ServiceConfig::default()
            },
        );
        let error = match result {
            Err(error) => error,
            Ok(_) => panic!("an oversubscribed fault plan must fail spawn"),
        };
        assert_eq!(error.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn stats_requests_do_not_inflate_request_counters() {
        let state = ServiceState::new(&ServiceConfig::default()).unwrap();
        let response = state.handle(&ScoreRequest::stats(8));
        assert!(response.ok);
        assert_eq!(response.stats.unwrap().requests, 0);
        assert_eq!(state.stats().requests, 0);
    }
}
