//! Extracting code from LLM responses.
//!
//! The paper notes that models sometimes wrap code in markdown fences,
//! prepend explanations, or return configuration snippets inside prose.  The
//! evaluation pipeline therefore extracts the code payload before scoring,
//! exactly once, for every model identically.

/// Remove markdown code fences, returning the concatenated contents of all
/// **non-empty** fenced blocks.  An empty fence pair (e.g. a stray
/// ```` ``` ``` ```` before the real payload) carries no code and is
/// skipped; if no fenced block holds any code the response is returned
/// unchanged, exactly as when it has no fences at all.
pub fn strip_markdown_fences(response: &str) -> String {
    if !response.contains("```") {
        return response.to_owned();
    }
    let mut blocks: Vec<String> = Vec::new();
    let mut in_block = false;
    let mut current = String::new();
    for line in response.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            if in_block {
                if !current.trim().is_empty() {
                    blocks.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
                in_block = false;
            } else {
                in_block = true;
            }
            continue;
        }
        if in_block {
            current.push_str(line);
            current.push('\n');
        }
    }
    // Unterminated final fence: keep what we collected.
    if in_block && !current.trim().is_empty() {
        blocks.push(current);
    }
    if blocks.is_empty() {
        response.to_owned()
    } else {
        blocks.join("\n").trim_end().to_owned() + "\n"
    }
}

/// Extract the code payload from an LLM response: strips markdown fences and
/// drops leading/trailing prose paragraphs that contain no code-like lines.
pub fn extract_code(response: &str) -> String {
    let fenced = strip_markdown_fences(response);
    if fenced != response {
        return fenced;
    }
    // No usable fenced blocks.  Drop fence-marker lines (an empty fence
    // pair contributes no code) and obvious prose lines at the start and
    // end (sentences ending with a period that contain no code punctuation).
    let lines: Vec<&str> = response
        .lines()
        .filter(|l| !l.trim_start().starts_with("```"))
        .collect();
    let is_prose = |line: &str| {
        let t = line.trim();
        if t.is_empty() {
            return false;
        }
        let has_code_chars = t.contains(['{', '}', '(', ')', ';', '=', ':', '#', '@']);
        let looks_like_sentence = t.ends_with('.') || t.ends_with('!');
        let starts_capital_word = t.chars().next().map(|c| c.is_uppercase()).unwrap_or(false)
            && t.split_whitespace().count() > 4;
        !has_code_chars && (looks_like_sentence || starts_capital_word)
    };
    let start = match lines
        .iter()
        .position(|l| !is_prose(l) && !l.trim().is_empty())
    {
        Some(i) => i,
        // Entirely prose: nothing to extract, return as-is.
        None => return response.to_owned(),
    };
    let end = lines
        .iter()
        .rposition(|l| !is_prose(l) && !l.trim().is_empty())
        .map(|i| i + 1)
        .unwrap_or(lines.len());
    if start >= end {
        return response.to_owned();
    }
    let mut out = lines[start..end].join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fences_passthrough() {
        let src = "tasks:\n  - func: producer\n";
        assert_eq!(strip_markdown_fences(src), src);
    }

    #[test]
    fn single_fenced_block_extracted() {
        let resp =
            "Here is the configuration:\n```yaml\ntasks:\n  - func: producer\n```\nLet me know!";
        let code = strip_markdown_fences(resp);
        assert_eq!(code, "tasks:\n  - func: producer\n");
    }

    #[test]
    fn multiple_fenced_blocks_concatenated() {
        let resp = "```c\nint a;\n```\ntext\n```c\nint b;\n```";
        let code = strip_markdown_fences(resp);
        assert!(code.contains("int a;"));
        assert!(code.contains("int b;"));
        assert!(!code.contains("text"));
    }

    #[test]
    fn unterminated_fence_still_extracts() {
        let resp = "```yaml\ntasks:\n  - func: producer\n";
        let code = strip_markdown_fences(resp);
        assert!(code.contains("func: producer"));
    }

    #[test]
    fn fence_with_language_tag_and_indent() {
        let resp = "  ```python\n@task(returns=1)\ndef f():\n    pass\n  ```";
        let code = strip_markdown_fences(resp);
        assert!(code.starts_with("@task"));
    }

    #[test]
    fn empty_fence_pair_before_code_does_not_swallow_payload() {
        // Regression: an empty ``` ``` pair used to make the whole response
        // collapse to "\n", discarding the real payload that followed.
        let resp = "```\n```\ntasks:\n  - func: producer\n";
        assert_eq!(strip_markdown_fences(resp), resp, "no usable block");
        let code = extract_code(resp);
        assert_eq!(code, "tasks:\n  - func: producer\n");
    }

    #[test]
    fn empty_fence_pair_skipped_in_favour_of_real_block() {
        let resp = "```\n```\nintro text\n```c\nint a;\n```";
        assert_eq!(strip_markdown_fences(resp), "int a;\n");
        assert_eq!(extract_code(resp), "int a;\n");
    }

    #[test]
    fn whitespace_only_block_treated_as_empty() {
        let resp = "```\n   \n```\nhenson_yield();\n";
        assert_eq!(extract_code(resp), "henson_yield();\n");
    }

    #[test]
    fn empty_fences_with_prose_margins_still_extract_code() {
        let resp =
            "Sure, here is the file.\n```\n```\ntasks:\n  - func: producer\n\nHope this helps!";
        let code = extract_code(resp);
        assert!(code.starts_with("tasks:"), "got: {code}");
        assert!(!code.contains("```"));
        assert!(!code.contains("Hope this helps"));
    }

    #[test]
    fn fence_only_response_returned_unchanged() {
        let resp = "```\n```";
        assert_eq!(extract_code(resp), resp);
    }

    #[test]
    fn extract_code_drops_leading_and_trailing_prose() {
        let resp = "Sure, I can help with that configuration request.\n\ntasks:\n  - func: producer\n    nprocs: 3\n\nThis file defines a three node workflow.";
        let code = extract_code(resp);
        assert!(code.starts_with("tasks:"), "got: {code}");
        assert!(!code.contains("Sure, I can help"));
        assert!(!code.contains("This file defines"));
    }

    #[test]
    fn extract_code_keeps_pure_code_untouched() {
        let src = "int main() {\n    return 0;\n}\n";
        assert_eq!(extract_code(src), src);
    }

    #[test]
    fn extract_code_prefers_fences_when_present() {
        let resp = "Explanation first.\n```\nconfig: 1\n```";
        assert_eq!(extract_code(resp), "config: 1\n");
    }

    #[test]
    fn all_prose_response_returned_unchanged() {
        let resp = "I could not generate a configuration for that system.";
        assert_eq!(extract_code(resp), resp);
    }
}
