//! Extracting code from LLM responses.
//!
//! The paper notes that models sometimes wrap code in markdown fences,
//! prepend explanations, or return configuration snippets inside prose.  The
//! evaluation pipeline therefore extracts the code payload before scoring,
//! exactly once, for every model identically.

/// Remove markdown code fences, returning the concatenated contents of all
/// **non-empty** fenced blocks.  An empty fence pair (e.g. a stray
/// ```` ``` ``` ```` before the real payload) carries no code and is
/// skipped; if no fenced block holds any code the response is returned
/// unchanged, exactly as when it has no fences at all.
pub fn strip_markdown_fences(response: &str) -> String {
    if !response.contains("```") {
        return response.to_owned();
    }
    let mut blocks: Vec<String> = Vec::new();
    let mut in_block = false;
    let mut current = String::new();
    for line in response.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            if in_block {
                if !current.trim().is_empty() {
                    blocks.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
                in_block = false;
            } else {
                in_block = true;
            }
            continue;
        }
        if in_block {
            current.push_str(line);
            current.push('\n');
        }
    }
    // Unterminated final fence: keep what we collected.
    if in_block && !current.trim().is_empty() {
        blocks.push(current);
    }
    if blocks.is_empty() {
        response.to_owned()
    } else {
        blocks.join("\n").trim_end().to_owned() + "\n"
    }
}

/// Extract the code payload from an LLM response: strips markdown fences and
/// drops leading/trailing prose paragraphs that contain no code-like lines.
pub fn extract_code(response: &str) -> String {
    let fenced = strip_markdown_fences(response);
    if fenced != response {
        return fenced;
    }
    // No usable fenced blocks.  Drop fence-marker lines (an empty fence
    // pair contributes no code) and obvious prose lines at the start and
    // end (sentences ending with a period that contain no code punctuation).
    let lines: Vec<&str> = response
        .lines()
        .filter(|l| !l.trim_start().starts_with("```"))
        .collect();
    let indent_of = |l: &str| l.len() - l.trim_start().len();
    // `leading` enables the colon-lead-in rule, which only applies at the
    // *top* margin: a trailing line ending in `:` is plausibly a suspended
    // code statement (`if x is None:` in a truncated payload), never worth
    // the risk of stripping.
    let is_prose = |idx: usize, leading: bool| {
        let line = lines[idx];
        let t = line.trim();
        if t.is_empty() {
            return false;
        }
        // A lead-in like "Here is the configuration:" ends in a colon but is
        // prose, not a YAML key.  Three signals must agree before a colon
        // line is stripped — it reads as a multi-word *sentence* (contains
        // an English function word no key name would), its only code-like
        // character is that final colon, and nothing is nested under it (a
        // real mapping key's value block follows at deeper indentation).
        // Multi-word keys ("output file list:", "Simulation Output
        // Settings:") fail the function-word test and stay code.
        let has_function_word = t.split_whitespace().any(|w| {
            let w = w
                .trim_matches(|c: char| !c.is_ascii_alphanumeric())
                .to_ascii_lowercase();
            matches!(
                w.as_str(),
                "here" | "is" | "are" | "the" | "this" | "your" | "below" | "following"
            )
        });
        let colon_only_sentence = leading
            && t.ends_with(':')
            && t.split_whitespace().count() > 2
            && has_function_word
            && !t[..t.len() - 1].contains(['{', '}', '(', ')', ';', '=', ':', '#', '@'])
            && lines[idx + 1..]
                .iter()
                .find(|l| !l.trim().is_empty())
                .map(|next| indent_of(next) <= indent_of(line))
                .unwrap_or(true);
        let has_code_chars =
            t.contains(['{', '}', '(', ')', ';', '=', ':', '#', '@']) && !colon_only_sentence;
        let looks_like_sentence = t.ends_with('.') || t.ends_with('!') || colon_only_sentence;
        let starts_capital_word = t.chars().next().map(|c| c.is_uppercase()).unwrap_or(false)
            && t.split_whitespace().count() > 4;
        !has_code_chars && (looks_like_sentence || starts_capital_word)
    };
    let start = match (0..lines.len()).find(|&i| !is_prose(i, true) && !lines[i].trim().is_empty())
    {
        Some(i) => i,
        // Entirely prose: nothing to extract, return as-is.
        None => return response.to_owned(),
    };
    let end = (0..lines.len())
        .rev()
        .find(|&i| !is_prose(i, false) && !lines[i].trim().is_empty())
        .map(|i| i + 1)
        .unwrap_or(lines.len());
    if start >= end {
        return response.to_owned();
    }
    let mut out = lines[start..end].join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fences_passthrough() {
        let src = "tasks:\n  - func: producer\n";
        assert_eq!(strip_markdown_fences(src), src);
    }

    #[test]
    fn single_fenced_block_extracted() {
        let resp =
            "Here is the configuration:\n```yaml\ntasks:\n  - func: producer\n```\nLet me know!";
        let code = strip_markdown_fences(resp);
        assert_eq!(code, "tasks:\n  - func: producer\n");
    }

    #[test]
    fn multiple_fenced_blocks_concatenated() {
        let resp = "```c\nint a;\n```\ntext\n```c\nint b;\n```";
        let code = strip_markdown_fences(resp);
        assert!(code.contains("int a;"));
        assert!(code.contains("int b;"));
        assert!(!code.contains("text"));
    }

    #[test]
    fn unterminated_fence_still_extracts() {
        let resp = "```yaml\ntasks:\n  - func: producer\n";
        let code = strip_markdown_fences(resp);
        assert!(code.contains("func: producer"));
    }

    #[test]
    fn fence_with_language_tag_and_indent() {
        let resp = "  ```python\n@task(returns=1)\ndef f():\n    pass\n  ```";
        let code = strip_markdown_fences(resp);
        assert!(code.starts_with("@task"));
    }

    #[test]
    fn empty_fence_pair_before_code_does_not_swallow_payload() {
        // Regression: an empty ``` ``` pair used to make the whole response
        // collapse to "\n", discarding the real payload that followed.
        let resp = "```\n```\ntasks:\n  - func: producer\n";
        assert_eq!(strip_markdown_fences(resp), resp, "no usable block");
        let code = extract_code(resp);
        assert_eq!(code, "tasks:\n  - func: producer\n");
    }

    #[test]
    fn empty_fence_pair_skipped_in_favour_of_real_block() {
        let resp = "```\n```\nintro text\n```c\nint a;\n```";
        assert_eq!(strip_markdown_fences(resp), "int a;\n");
        assert_eq!(extract_code(resp), "int a;\n");
    }

    #[test]
    fn whitespace_only_block_treated_as_empty() {
        let resp = "```\n   \n```\nhenson_yield();\n";
        assert_eq!(extract_code(resp), "henson_yield();\n");
    }

    #[test]
    fn empty_fences_with_prose_margins_still_extract_code() {
        let resp =
            "Sure, here is the file.\n```\n```\ntasks:\n  - func: producer\n\nHope this helps!";
        let code = extract_code(resp);
        assert!(code.starts_with("tasks:"), "got: {code}");
        assert!(!code.contains("```"));
        assert!(!code.contains("Hope this helps"));
    }

    #[test]
    fn fence_only_response_returned_unchanged() {
        let resp = "```\n```";
        assert_eq!(extract_code(resp), resp);
    }

    #[test]
    fn extract_code_drops_leading_and_trailing_prose() {
        let resp = "Sure, I can help with that configuration request.\n\ntasks:\n  - func: producer\n    nprocs: 3\n\nThis file defines a three node workflow.";
        let code = extract_code(resp);
        assert!(code.starts_with("tasks:"), "got: {code}");
        assert!(!code.contains("Sure, I can help"));
        assert!(!code.contains("This file defines"));
    }

    #[test]
    fn extract_code_keeps_pure_code_untouched() {
        let src = "int main() {\n    return 0;\n}\n";
        assert_eq!(extract_code(src), src);
    }

    #[test]
    fn extract_code_prefers_fences_when_present() {
        let resp = "Explanation first.\n```\nconfig: 1\n```";
        assert_eq!(extract_code(resp), "config: 1\n");
    }

    #[test]
    fn all_prose_response_returned_unchanged() {
        let resp = "I could not generate a configuration for that system.";
        assert_eq!(extract_code(resp), resp);
    }

    #[test]
    fn colon_terminated_lead_in_stripped_as_prose() {
        // Regression: "Here is the configuration:" used to count as code
        // (its colon looked like a mapping key), so the extracted payload
        // started with a prose line that then parsed as a bogus YAML key.
        let resp = "Here is the configuration:\n\ntasks:\n  - func: producer\n    nprocs: 3\n";
        let code = extract_code(resp);
        assert!(code.starts_with("tasks:"), "got: {code}");
        assert!(!code.contains("Here is"));
    }

    #[test]
    fn mapping_keys_are_not_mistaken_for_prose() {
        // Short keys, capitalised single-word keys, and multi-word keys
        // (lowercase or capitalised) must all survive at the payload
        // margins: their value block is nested under them, which is the
        // structural difference from a prose lead-in.
        for line in [
            "tasks:",
            "Engine:",
            "my key:",
            "  Variables:",
            "output file list:",
            "Simulation Output Settings:",
        ] {
            let resp = format!("{line}\n  - x\n");
            assert_eq!(extract_code(&resp), resp, "`{line}` must stay code");
        }
    }

    #[test]
    fn colon_lead_in_before_flush_left_payload_is_still_stripped() {
        // The lead-in owns nothing: the payload that follows (after a blank
        // line or not) starts at the same column, so the line is prose.
        for resp in [
            "Here is the configuration:\n\ntasks:\n  - func: producer\n",
            "Here is the configuration:\ntasks:\n  - func: producer\n",
            "The following file defines your workflow:\n\ntasks: []\n",
        ] {
            let code = extract_code(resp);
            assert!(
                code.starts_with("tasks:"),
                "lead-in survived in: {code:?} (from {resp:?})"
            );
        }
    }

    #[test]
    fn null_valued_multi_word_keys_survive_at_the_margins() {
        // A multi-word key with a null value has a same-indent follower —
        // structurally like a lead-in — but contains no English function
        // word, so it must stay code.
        let resp = "output file list:\nother: 1\n";
        assert_eq!(extract_code(resp), resp);
    }

    #[test]
    fn trailing_colon_statements_are_never_stripped() {
        // Suspended code statements at the end of a (possibly truncated)
        // payload end in `:` and may contain English function words; the
        // colon-lead-in rule must not apply at the trailing margin.
        let resp = "y = 1\nif x is None:\n";
        assert_eq!(extract_code(resp), resp);
    }
}
