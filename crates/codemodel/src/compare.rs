//! API-call level comparison between a hypothesis and a reference artifact.
//!
//! Beyond BLEU/ChrF the paper analyses *why* models lose points: required
//! API calls that are missing, calls that do not exist in the target system
//! (hallucinations), and redundant boilerplate.  [`compare_calls`] produces
//! those categories from two source texts plus the system's known API
//! surface.

use std::collections::BTreeSet;

use crate::calls::call_names;
use crate::lexer::Language;

/// Result of comparing hypothesis calls against reference calls and a known
/// API surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallComparison {
    /// Calls present in both hypothesis and reference.
    pub matched: Vec<String>,
    /// Reference calls absent from the hypothesis (missing required calls).
    pub missing: Vec<String>,
    /// Hypothesis calls absent from the reference (redundant or wrong).
    pub extra: Vec<String>,
    /// Hypothesis calls that belong to the system's API prefix family but do
    /// not exist in the API catalogue — i.e. hallucinated API functions.
    pub hallucinated: Vec<String>,
}

impl CallComparison {
    /// Fraction of reference calls that the hypothesis reproduced (recall);
    /// 1.0 when the reference has no calls.
    pub fn call_recall(&self) -> f64 {
        let total = self.matched.len() + self.missing.len();
        if total == 0 {
            1.0
        } else {
            self.matched.len() as f64 / total as f64
        }
    }

    /// Fraction of hypothesis calls that also appear in the reference
    /// (precision); 1.0 when the hypothesis has no calls.
    pub fn call_precision(&self) -> f64 {
        let total = self.matched.len() + self.extra.len();
        if total == 0 {
            1.0
        } else {
            self.matched.len() as f64 / total as f64
        }
    }

    /// True when the hypothesis invokes at least one nonexistent API
    /// function — the hallucination failure mode highlighted in the paper.
    pub fn has_hallucinations(&self) -> bool {
        !self.hallucinated.is_empty()
    }
}

/// Compare hypothesis call names against reference call names.
///
/// `api_prefixes` identifies the system's API family (e.g. `["henson_"]`,
/// `["adios2_"]`); `known_api` is the catalogue of real functions.  A
/// hypothesis call that matches a prefix but is not in the catalogue is
/// classified as hallucinated.
pub fn compare_calls(
    hypothesis: &str,
    reference: &str,
    language: Language,
    api_prefixes: &[&str],
    known_api: &[&str],
) -> CallComparison {
    let hyp_calls: BTreeSet<String> = call_names(hypothesis, language).into_iter().collect();
    let ref_calls: BTreeSet<String> = call_names(reference, language).into_iter().collect();
    let known: BTreeSet<&str> = known_api.iter().copied().collect();

    let matched = hyp_calls.intersection(&ref_calls).cloned().collect();
    let missing = ref_calls.difference(&hyp_calls).cloned().collect();
    let extra: Vec<String> = hyp_calls.difference(&ref_calls).cloned().collect();
    let hallucinated = hyp_calls
        .iter()
        .filter(|c| api_prefixes.iter().any(|p| c.starts_with(p)) && !known.contains(c.as_str()))
        .cloned()
        .collect();

    CallComparison {
        matched,
        missing,
        extra,
        hallucinated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HENSON_API: &[&str] = &[
        "henson_save_int",
        "henson_save_float",
        "henson_save_array",
        "henson_load_int",
        "henson_yield",
        "henson_stop",
    ];

    #[test]
    fn perfect_match_full_recall_and_precision() {
        let code = "henson_save_int(\"t\", t);\nhenson_yield();";
        let cmp = compare_calls(code, code, Language::C, &["henson_"], HENSON_API);
        assert_eq!(cmp.matched.len(), 2);
        assert!(cmp.missing.is_empty());
        assert!(cmp.extra.is_empty());
        assert!(!cmp.has_hallucinations());
        assert_eq!(cmp.call_recall(), 1.0);
        assert_eq!(cmp.call_precision(), 1.0);
    }

    #[test]
    fn missing_required_call_detected() {
        let reference = "henson_save_int(\"t\", t);\nhenson_yield();";
        let hypothesis = "henson_save_int(\"t\", t);";
        let cmp = compare_calls(hypothesis, reference, Language::C, &["henson_"], HENSON_API);
        assert_eq!(cmp.missing, vec!["henson_yield".to_string()]);
        assert!(cmp.call_recall() < 1.0);
    }

    #[test]
    fn hallucinated_api_call_detected() {
        // The paper reports o3 inventing `henson_put` and Gemini inventing
        // `henson_declare_variable`.
        let reference = "henson_save_int(\"t\", t);\nhenson_yield();";
        let hypothesis = "henson_put(\"t\", t);\nhenson_declare_variable(\"t\");\nhenson_yield();";
        let cmp = compare_calls(hypothesis, reference, Language::C, &["henson_"], HENSON_API);
        assert!(cmp.hallucinated.contains(&"henson_put".to_string()));
        assert!(cmp
            .hallucinated
            .contains(&"henson_declare_variable".to_string()));
        assert!(cmp.has_hallucinations());
    }

    #[test]
    fn extra_non_api_calls_not_hallucinated() {
        let reference = "henson_yield();";
        let hypothesis = "printf(\"x\");\nhenson_yield();";
        let cmp = compare_calls(hypothesis, reference, Language::C, &["henson_"], HENSON_API);
        assert_eq!(cmp.extra, vec!["printf".to_string()]);
        assert!(cmp.hallucinated.is_empty());
    }

    #[test]
    fn empty_inputs_have_unit_scores() {
        let cmp = compare_calls("", "", Language::C, &["henson_"], HENSON_API);
        assert_eq!(cmp.call_recall(), 1.0);
        assert_eq!(cmp.call_precision(), 1.0);
    }

    #[test]
    fn python_comparison_with_pycompss_api() {
        let api = &["compss_wait_on", "compss_wait_on_file", "compss_barrier"];
        let reference = "compss_wait_on_file(out)\nprocess(out)";
        let hypothesis = "compss_wait_on(out)\nprocess(out)";
        let cmp = compare_calls(hypothesis, reference, Language::Python, &["compss_"], api);
        assert!(cmp.missing.contains(&"compss_wait_on_file".to_string()));
        assert!(cmp.extra.contains(&"compss_wait_on".to_string()));
        // compss_wait_on exists in the API, so it is wrong-but-real, not
        // hallucinated.
        assert!(cmp.hallucinated.is_empty());
    }
}
