//! A small tokenizer good enough for the producer/consumer task codes used
//! in the benchmark (C with MPI calls, Python with decorators).

/// Source language of a task code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// C (the paper's producer code emulating an HPC simulation).
    C,
    /// Python (the equivalent producer used for Parsl / PyCOMPSs).
    Python,
}

impl Language {
    /// Guess the language from source text (crude but effective for the
    /// benchmark's two shapes of task code).
    pub fn detect(source: &str) -> Language {
        let c_signals = ["#include", "int main(", "printf(", "MPI_Init(", "->", ";\n"];
        let py_signals = ["def ", "import ", "print(", "@", "__main__", "self."];
        let c_score: usize = c_signals.iter().filter(|s| source.contains(*s)).count();
        let py_score: usize = py_signals.iter().filter(|s| source.contains(*s)).count();
        if py_score > c_score {
            Language::Python
        } else {
            Language::C
        }
    }

    /// Comment prefix for single-line comments in this language.
    pub fn line_comment(&self) -> &'static str {
        match self {
            Language::C => "//",
            Language::Python => "#",
        }
    }
}

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Number,
    /// String or char literal (quotes included).
    Str,
    /// Single punctuation/operator character (`(`, `)`, `;`, `=`, ...).
    Punct,
    /// Preprocessor directive line (C) — `#include <mpi.h>` etc.
    Preprocessor,
    /// Decorator line marker (Python `@`), emitted as its own token.
    At,
    /// Comment text (single-line or block), content included.
    Comment,
    /// Newline (significant for Python and for line-based heuristics).
    Newline,
}

/// A lexed token with its text and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token category.
    pub kind: TokenKind,
    /// Raw token text.
    pub text: String,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenize `source` according to `language`.
///
/// The tokenizer is intentionally forgiving: unknown characters become
/// punctuation tokens and unterminated strings extend to the end of the
/// line, so LLM-generated (possibly malformed) code can still be analysed.
pub fn tokenize(source: &str, language: Language) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                tokens.push(Token {
                    kind: TokenKind::Newline,
                    text: "\n".to_owned(),
                    line,
                });
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
            }
            '#' if language == Language::C => {
                // Preprocessor directive: consume to end of line.
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Preprocessor,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            '#' if language == Language::Python => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            '@' if language == Language::Python => {
                tokens.push(Token {
                    kind: TokenKind::At,
                    text: "@".to_owned(),
                    line,
                });
                i += 1;
            }
            '/' if language == Language::C && i + 1 < chars.len() && chars[i + 1] == '/' => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            '/' if language == Language::C && i + 1 < chars.len() && chars[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(chars.len());
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line: start_line,
                });
            }
            '"' | '\'' => {
                let quote = c;
                let start = i;
                i += 1;
                while i < chars.len() && chars[i] != quote && chars[i] != '\n' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                if i < chars.len() && chars[i] == quote {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '.' || chars[i] == '_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// Identifiers appearing in the token stream, in order, without duplicates.
pub fn identifiers(tokens: &[Token]) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for t in tokens {
        if t.kind == TokenKind::Ident && seen.insert(t.text.clone()) {
            out.push(t.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_c_vs_python() {
        assert_eq!(
            Language::detect("#include <mpi.h>\nint main() {}"),
            Language::C
        );
        assert_eq!(
            Language::detect("import numpy\ndef producer(n):\n    return n"),
            Language::Python
        );
    }

    #[test]
    fn line_comment_prefixes() {
        assert_eq!(Language::C.line_comment(), "//");
        assert_eq!(Language::Python.line_comment(), "#");
    }

    #[test]
    fn tokenizes_c_call_statement() {
        let toks = tokenize("MPI_Init(&argc, &argv);", Language::C);
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(toks[0].text, "MPI_Init");
        assert_eq!(kinds[0], TokenKind::Ident);
        assert!(kinds.contains(&TokenKind::Punct));
    }

    #[test]
    fn c_preprocessor_lines_are_single_tokens() {
        let toks = tokenize("#include <mpi.h>\nint x;", Language::C);
        assert_eq!(toks[0].kind, TokenKind::Preprocessor);
        assert_eq!(toks[0].text, "#include <mpi.h>");
        assert_eq!(toks[0].line, 1);
    }

    #[test]
    fn python_hash_is_comment_not_preprocessor() {
        let toks = tokenize("# a comment\nx = 1", Language::Python);
        assert_eq!(toks[0].kind, TokenKind::Comment);
    }

    #[test]
    fn python_decorator_at_token() {
        let toks = tokenize("@task(returns=1)\ndef f():\n    pass", Language::Python);
        assert_eq!(toks[0].kind, TokenKind::At);
        assert_eq!(toks[1].text, "task");
    }

    #[test]
    fn string_literals_keep_quotes_and_dont_leak() {
        let toks = tokenize("printf(\"sum = %f\\n\", sum);", Language::C);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(s.text.starts_with('"') && s.text.ends_with('"'));
        // Identifiers inside the string must not appear as Ident tokens.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "sum" && t.line != 1));
    }

    #[test]
    fn c_line_and_block_comments() {
        let toks = tokenize("// hello\n/* multi\nline */\nint x;", Language::C);
        assert_eq!(toks[0].kind, TokenKind::Comment);
        let block = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .nth(1)
            .unwrap();
        assert!(block.text.contains("multi"));
        let x = toks.iter().find(|t| t.text == "int").unwrap();
        assert_eq!(x.line, 4);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\nc", Language::C);
        let idents: Vec<(usize, &str)> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.line, t.text.as_str()))
            .collect();
        assert_eq!(idents, vec![(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn numbers_including_floats() {
        let toks = tokenize("x = 3.5 + 42", Language::Python);
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["3.5", "42"]);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = tokenize("printf(\"oops", Language::C);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn identifiers_deduplicated_in_order() {
        let toks = tokenize("foo(bar); foo(baz);", Language::C);
        assert_eq!(identifiers(&toks), vec!["foo", "bar", "baz"]);
    }

    #[test]
    fn empty_source_gives_no_tokens() {
        assert!(tokenize("", Language::C).is_empty());
        assert!(tokenize("   ", Language::Python).is_empty());
    }
}
