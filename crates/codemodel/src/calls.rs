//! Function-call, decorator, include and import extraction.

use crate::lexer::{tokenize, Language, Token, TokenKind};

/// A function call found in source code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Called function name (the identifier immediately before `(`).
    pub name: String,
    /// 1-based source line of the call.
    pub line: usize,
    /// Receiver for method-style calls (`engine.Put(...)` → `Some("engine")`).
    pub receiver: Option<String>,
}

impl Call {
    /// Fully qualified display name (`receiver.name` or just `name`).
    pub fn qualified(&self) -> String {
        match &self.receiver {
            Some(r) => format!("{r}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A Python decorator (e.g. `@task(returns=1)` or `@python_app`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decorator {
    /// Decorator name without the `@` (dotted names joined, e.g. `parsl.python_app`).
    pub name: String,
    /// 1-based source line.
    pub line: usize,
    /// Whether the decorator had an argument list.
    pub has_args: bool,
}

/// Extract every function call from `source`.
///
/// Control-flow keywords (`if`, `while`, `for`, ...) followed by `(` are not
/// reported as calls.
pub fn extract_calls(source: &str, language: Language) -> Vec<Call> {
    let tokens = tokenize(source, language);
    let keywords: &[&str] = match language {
        Language::C => &[
            "if", "while", "for", "switch", "return", "sizeof", "int", "float", "double", "char",
            "void", "size_t",
        ],
        Language::Python => &[
            "if", "while", "for", "return", "print", "def", "class", "with", "lambda",
        ],
    };
    let mut calls = Vec::new();
    let significant: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Newline | TokenKind::Comment | TokenKind::Preprocessor
            )
        })
        .collect();
    for i in 0..significant.len() {
        let t = significant[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next = significant.get(i + 1);
        let is_call = matches!(next, Some(n) if n.kind == TokenKind::Punct && n.text == "(");
        if !is_call || keywords.contains(&t.text.as_str()) {
            continue;
        }
        // `def name(` and `class name(` are definitions, not calls.
        if i >= 1 {
            let prev = significant[i - 1];
            if prev.kind == TokenKind::Ident && (prev.text == "def" || prev.text == "class") {
                continue;
            }
            // A decorator name followed by `(` is reported by
            // `extract_decorators`, not as a call.
            if prev.kind == TokenKind::At {
                continue;
            }
        }
        let receiver = if i >= 2
            && significant[i - 1].kind == TokenKind::Punct
            && significant[i - 1].text == "."
            && significant[i - 2].kind == TokenKind::Ident
        {
            Some(significant[i - 2].text.clone())
        } else {
            None
        };
        calls.push(Call {
            name: t.text.clone(),
            line: t.line,
            receiver,
        });
    }
    calls
}

/// Extract Python decorators from `source` (returns an empty list for C).
pub fn extract_decorators(source: &str) -> Vec<Decorator> {
    let tokens = tokenize(source, Language::Python);
    let significant: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment))
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < significant.len() {
        if significant[i].kind == TokenKind::At {
            let line = significant[i].line;
            let mut name_parts = Vec::new();
            let mut j = i + 1;
            while j < significant.len() {
                match significant[j].kind {
                    TokenKind::Ident => name_parts.push(significant[j].text.clone()),
                    TokenKind::Punct if significant[j].text == "." => {}
                    _ => break,
                }
                j += 1;
            }
            let has_args = significant
                .get(j)
                .map(|t| t.kind == TokenKind::Punct && t.text == "(")
                .unwrap_or(false);
            if !name_parts.is_empty() {
                out.push(Decorator {
                    name: name_parts.join("."),
                    line,
                    has_args,
                });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Extract `#include` targets (C) or imported module names (Python).
pub fn extract_imports(source: &str, language: Language) -> Vec<String> {
    match language {
        Language::C => source
            .lines()
            .filter_map(|l| {
                let l = l.trim();
                l.strip_prefix("#include").map(|rest| {
                    rest.trim()
                        .trim_matches(|c| c == '<' || c == '>' || c == '"')
                        .to_owned()
                })
            })
            .collect(),
        Language::Python => {
            let mut out = Vec::new();
            for line in source.lines() {
                let l = line.trim();
                if let Some(rest) = l.strip_prefix("import ") {
                    for part in rest.split(',') {
                        let module = part.split_whitespace().next().unwrap_or("");
                        if !module.is_empty() {
                            out.push(module.to_owned());
                        }
                    }
                } else if let Some(rest) = l.strip_prefix("from ") {
                    if let Some(module) = rest.split_whitespace().next() {
                        out.push(module.to_owned());
                    }
                }
            }
            out
        }
    }
}

/// Unique call names in source order (convenience for validation).
pub fn call_names(source: &str, language: Language) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    extract_calls(source, language)
        .into_iter()
        .filter(|c| seen.insert(c.name.clone()))
        .map(|c| c.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const C_SNIPPET: &str = r#"
#include <mpi.h>
#include "henson.h"

int main(int argc, char** argv) {
    MPI_Init(&argc, &argv);
    if (rank == 0) printf("hello\n");
    for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;
    henson_save_int("t", t);
    henson_yield();
    MPI_Finalize();
    return 0;
}
"#;

    const PY_SNIPPET: &str = r#"
import numpy as np
from pycompss.api.task import task
from pycompss.api.api import compss_wait_on_file

@task(returns=1)
def producer(n):
    data = np.random.rand(n)
    save(data)
    return data

@python_app
def consumer(x):
    return sum(x)

result = producer(50)
compss_wait_on_file("out.txt")
"#;

    #[test]
    fn extracts_c_calls_without_keywords() {
        let names = call_names(C_SNIPPET, Language::C);
        assert!(names.contains(&"MPI_Init".to_string()));
        assert!(names.contains(&"henson_save_int".to_string()));
        assert!(names.contains(&"henson_yield".to_string()));
        assert!(names.contains(&"MPI_Finalize".to_string()));
        assert!(!names.contains(&"if".to_string()));
        assert!(!names.contains(&"for".to_string()));
    }

    #[test]
    fn c_calls_report_lines() {
        let calls = extract_calls("foo();\nbar();\n", Language::C);
        assert_eq!(calls[0].line, 1);
        assert_eq!(calls[1].line, 2);
    }

    #[test]
    fn python_def_is_not_a_call() {
        // `def producer(` must not be reported; the later call `producer(50)` is.
        let calls = extract_calls(PY_SNIPPET, Language::Python);
        let producer_calls: Vec<&Call> = calls.iter().filter(|c| c.name == "producer").collect();
        assert_eq!(producer_calls.len(), 1);
    }

    #[test]
    fn python_detects_api_calls() {
        let names = call_names(PY_SNIPPET, Language::Python);
        assert!(names.contains(&"compss_wait_on_file".to_string()));
        assert!(names.contains(&"save".to_string()));
    }

    #[test]
    fn method_calls_capture_receiver() {
        let calls = extract_calls(
            "engine.Put(var, data);\nbpIO.DefineVariable(name);",
            Language::C,
        );
        assert_eq!(calls[0].receiver.as_deref(), Some("engine"));
        assert_eq!(calls[0].qualified(), "engine.Put");
        assert_eq!(calls[1].receiver.as_deref(), Some("bpIO"));
    }

    #[test]
    fn decorators_extracted_with_args_flag() {
        let decs = extract_decorators(PY_SNIPPET);
        let names: Vec<&str> = decs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["task", "python_app"]);
        assert!(decs[0].has_args);
        assert!(!decs[1].has_args);
    }

    #[test]
    fn dotted_decorator_name_joined() {
        let decs = extract_decorators("@parsl.python_app\ndef f():\n    pass\n");
        assert_eq!(decs[0].name, "parsl.python_app");
    }

    #[test]
    fn decorator_not_reported_as_call() {
        let calls = extract_calls("@task(returns=1)\ndef f():\n    pass\n", Language::Python);
        assert!(calls.iter().all(|c| c.name != "task"));
    }

    #[test]
    fn c_includes_extracted() {
        let incs = extract_imports(C_SNIPPET, Language::C);
        assert_eq!(incs, vec!["mpi.h", "henson.h"]);
    }

    #[test]
    fn python_imports_extracted() {
        let imports = extract_imports(PY_SNIPPET, Language::Python);
        assert!(imports.contains(&"numpy".to_string()));
        assert!(imports.contains(&"pycompss.api.task".to_string()));
        assert!(imports.contains(&"pycompss.api.api".to_string()));
    }

    #[test]
    fn calls_inside_comments_and_strings_ignored() {
        let src = "// henson_yield();\nprintf(\"henson_save_int()\");\nreal_call();";
        let names = call_names(src, Language::C);
        assert!(!names.contains(&"henson_yield".to_string()));
        assert!(!names.contains(&"henson_save_int".to_string()));
        assert!(names.contains(&"real_call".to_string()));
    }

    #[test]
    fn empty_source_no_calls() {
        assert!(extract_calls("", Language::C).is_empty());
        assert!(extract_decorators("").is_empty());
        assert!(extract_imports("", Language::Python).is_empty());
    }
}
