//! `wfspeak-codemodel` — lightweight source-code models for the benchmark.
//!
//! The annotation and translation experiments operate on small C and Python
//! task codes.  To build reference artifacts, validate LLM output against a
//! workflow system's API surface, and analyse the kinds of errors models
//! make (nonexistent API calls, missing required calls, redundant
//! boilerplate), the harness needs a structural view of those programs that
//! is cheaper and more robust than full parsing:
//!
//! * [`lexer`] — a tokenizer for C-like and Python-like source,
//! * [`calls`] — function-call, decorator, include and import extraction,
//! * [`extract`] — pulling code out of LLM responses (markdown fences,
//!   leading prose),
//! * [`compare`] — API-call level comparison of a hypothesis against a
//!   reference (missing / extra / hallucinated calls).
//!
//! # Example
//!
//! ```
//! use wfspeak_codemodel::{calls::extract_calls, lexer::Language};
//!
//! let code = "henson_save_int(\"t\", t);\nhenson_yield();";
//! let calls = extract_calls(code, Language::C);
//! let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
//! assert_eq!(names, vec!["henson_save_int", "henson_yield"]);
//! ```

pub mod calls;
pub mod compare;
pub mod extract;
pub mod lexer;

pub use calls::{extract_calls, extract_decorators, extract_imports, Call, Decorator};
pub use compare::{compare_calls, CallComparison};
pub use extract::{extract_code, strip_markdown_fences};
pub use lexer::{tokenize, Language, Token, TokenKind};
