//! A neutral, system-agnostic workflow specification.
//!
//! The paper's benchmark scenario — a producer feeding datasets to one or
//! more consumers with given process counts — is captured here once, and
//! each system model renders it into its own configuration format.  The
//! runtime crate executes the same specification directly.

/// Direction of a task's relationship to a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataRole {
    /// The task writes the dataset.
    Produces,
    /// The task reads the dataset.
    Consumes,
}

/// A dataset requirement of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRequirement {
    /// Dataset name (e.g. `grid`, `particles`).
    pub dataset: String,
    /// Whether the task produces or consumes it.
    pub role: DataRole,
    /// Backing file name for file-based exchange.
    pub filename: String,
    /// HDF5-style group path used by Wilkins-style configs.
    pub group_path: String,
}

impl DataRequirement {
    /// Convenience constructor with the benchmark's default file/group names.
    pub fn new(dataset: &str, role: DataRole) -> Self {
        DataRequirement {
            dataset: dataset.to_owned(),
            role,
            filename: "outfile.h5".to_owned(),
            group_path: format!("/group1/{dataset}"),
        }
    }
}

/// One task in the workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task (function) name, e.g. `producer`, `consumer1`.
    pub name: String,
    /// Number of MPI processes the task requires.
    pub nprocs: usize,
    /// Datasets the task produces or consumes.
    pub data: Vec<DataRequirement>,
}

impl TaskSpec {
    /// Create a task with no data requirements.
    pub fn new(name: &str, nprocs: usize) -> Self {
        TaskSpec {
            name: name.to_owned(),
            nprocs,
            data: Vec::new(),
        }
    }

    /// Add a produced dataset.
    pub fn produces(mut self, dataset: &str) -> Self {
        self.data
            .push(DataRequirement::new(dataset, DataRole::Produces));
        self
    }

    /// Add a consumed dataset.
    pub fn consumes(mut self, dataset: &str) -> Self {
        self.data
            .push(DataRequirement::new(dataset, DataRole::Consumes));
        self
    }

    /// Datasets this task produces.
    pub fn produced_datasets(&self) -> Vec<&str> {
        self.data
            .iter()
            .filter(|d| d.role == DataRole::Produces)
            .map(|d| d.dataset.as_str())
            .collect()
    }

    /// Datasets this task consumes.
    pub fn consumed_datasets(&self) -> Vec<&str> {
        self.data
            .iter()
            .filter(|d| d.role == DataRole::Consumes)
            .map(|d| d.dataset.as_str())
            .collect()
    }
}

/// A whole workflow: an ordered list of tasks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkflowSpec {
    /// Workflow name (used for display and runtime tracing).
    pub name: String,
    /// Tasks in definition order (producers typically first).
    pub tasks: Vec<TaskSpec>,
}

impl WorkflowSpec {
    /// Create an empty workflow.
    pub fn new(name: &str) -> Self {
        WorkflowSpec {
            name: name.to_owned(),
            tasks: Vec::new(),
        }
    }

    /// Add a task.
    pub fn with_task(mut self, task: TaskSpec) -> Self {
        self.tasks.push(task);
        self
    }

    /// The paper's 3-node workflow: producer (3 procs) generating `grid` and
    /// `particles`; consumer1 (1 proc) reading `grid`; consumer2 (1 proc)
    /// reading `particles`.
    pub fn paper_3node() -> Self {
        WorkflowSpec::new("paper-3node")
            .with_task(
                TaskSpec::new("producer", 3)
                    .produces("grid")
                    .produces("particles"),
            )
            .with_task(TaskSpec::new("consumer1", 1).consumes("grid"))
            .with_task(TaskSpec::new("consumer2", 1).consumes("particles"))
    }

    /// The 2-node exemplar used in few-shot prompting: one producer and one
    /// consumer exchanging a single `particles` dataset.
    pub fn fewshot_2node() -> Self {
        WorkflowSpec::new("fewshot-2node")
            .with_task(TaskSpec::new("producer", 1).produces("particles"))
            .with_task(TaskSpec::new("consumer", 1).consumes("particles"))
    }

    /// Total number of MPI processes across all tasks.
    pub fn total_procs(&self) -> usize {
        self.tasks.iter().map(|t| t.nprocs).sum()
    }

    /// Names of every dataset appearing in the workflow (deduplicated, in
    /// first-appearance order).
    pub fn datasets(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for task in &self.tasks {
            for d in &task.data {
                if seen.insert(d.dataset.clone()) {
                    out.push(d.dataset.clone());
                }
            }
        }
        out
    }

    /// Look up a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Producer/consumer edges: `(producer task, consumer task, dataset)`
    /// for every dataset produced by one task and consumed by another.
    pub fn edges(&self) -> Vec<(String, String, String)> {
        let mut edges = Vec::new();
        for producer in &self.tasks {
            for dataset in producer.produced_datasets() {
                for consumer in &self.tasks {
                    if consumer.name != producer.name
                        && consumer.consumed_datasets().contains(&dataset)
                    {
                        edges.push((
                            producer.name.clone(),
                            consumer.name.clone(),
                            dataset.to_owned(),
                        ));
                    }
                }
            }
        }
        edges
    }

    /// Structural sanity checks: every consumed dataset has a producer, task
    /// names are unique, and every task has at least one process.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = std::collections::HashSet::new();
        for task in &self.tasks {
            if !names.insert(&task.name) {
                return Err(format!("duplicate task name `{}`", task.name));
            }
            if task.nprocs == 0 {
                return Err(format!("task `{}` has zero processes", task.name));
            }
        }
        let produced: std::collections::HashSet<&str> = self
            .tasks
            .iter()
            .flat_map(|t| t.produced_datasets())
            .collect();
        for task in &self.tasks {
            for d in task.consumed_datasets() {
                if !produced.contains(d) {
                    return Err(format!(
                        "task `{}` consumes dataset `{}` which no task produces",
                        task.name, d
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_3node_structure() {
        let spec = WorkflowSpec::paper_3node();
        assert_eq!(spec.tasks.len(), 3);
        assert_eq!(spec.total_procs(), 5);
        assert_eq!(spec.datasets(), vec!["grid", "particles"]);
        assert_eq!(spec.task("producer").unwrap().nprocs, 3);
        assert_eq!(
            spec.task("consumer1").unwrap().consumed_datasets(),
            vec!["grid"]
        );
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn paper_3node_edges() {
        let spec = WorkflowSpec::paper_3node();
        let edges = spec.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&("producer".into(), "consumer1".into(), "grid".into())));
        assert!(edges.contains(&("producer".into(), "consumer2".into(), "particles".into())));
    }

    #[test]
    fn fewshot_2node_structure() {
        let spec = WorkflowSpec::fewshot_2node();
        assert_eq!(spec.tasks.len(), 2);
        assert_eq!(spec.edges().len(), 1);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_task_names() {
        let spec = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("a", 1))
            .with_task(TaskSpec::new("a", 1));
        assert!(spec.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn validate_rejects_zero_procs() {
        let spec = WorkflowSpec::new("w").with_task(TaskSpec::new("a", 0));
        assert!(spec.validate().unwrap_err().contains("zero processes"));
    }

    #[test]
    fn validate_rejects_orphan_consumer() {
        let spec = WorkflowSpec::new("w").with_task(TaskSpec::new("c", 1).consumes("grid"));
        assert!(spec.validate().unwrap_err().contains("no task produces"));
    }

    #[test]
    fn data_requirement_defaults() {
        let d = DataRequirement::new("grid", DataRole::Produces);
        assert_eq!(d.filename, "outfile.h5");
        assert_eq!(d.group_path, "/group1/grid");
    }

    #[test]
    fn produced_and_consumed_listing() {
        let t = TaskSpec::new("x", 2)
            .produces("a")
            .consumes("b")
            .produces("c");
        assert_eq!(t.produced_datasets(), vec!["a", "c"]);
        assert_eq!(t.consumed_datasets(), vec!["b"]);
    }
}
