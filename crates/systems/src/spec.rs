//! A neutral, system-agnostic workflow specification.
//!
//! The paper's benchmark scenario — a producer feeding datasets to one or
//! more consumers with given process counts — is captured here once, and
//! each system model renders it into its own configuration format.  The
//! runtime crate executes the same specification directly.
//!
//! Specs move through a lifecycle: parse (a system model builds a spec from
//! an artifact), [`WorkflowSpec::validate`] (structural checks returning
//! typed diagnostics), [`WorkflowSpec::normalize`] (canonical ordering and
//! defaulted fields, so downstream scoring is order-insensitive), and
//! finally execution on the runtime engine.

use crate::diagnostics::{Diagnostic, DiagnosticKind, Severity};

/// Largest per-task or total process count `validate` accepts.  The sandbox
/// enforces far tighter caps at execution time; this bound only rejects
/// counts no deployment could ever satisfy.
pub const MAX_REASONABLE_PROCS: usize = 65_536;

/// Largest task count `validate` accepts.
pub const MAX_REASONABLE_TASKS: usize = 4_096;

/// Direction of a task's relationship to a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataRole {
    /// The task writes the dataset.
    Produces,
    /// The task reads the dataset.
    Consumes,
}

/// A dataset requirement of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRequirement {
    /// Dataset name (e.g. `grid`, `particles`).
    pub dataset: String,
    /// Whether the task produces or consumes it.
    pub role: DataRole,
    /// Backing file name for file-based exchange.
    pub filename: String,
    /// HDF5-style group path used by Wilkins-style configs.
    pub group_path: String,
}

impl DataRequirement {
    /// Convenience constructor with the benchmark's default file/group names.
    pub fn new(dataset: &str, role: DataRole) -> Self {
        DataRequirement {
            dataset: dataset.to_owned(),
            role,
            filename: "outfile.h5".to_owned(),
            group_path: format!("/group1/{dataset}"),
        }
    }
}

/// One task in the workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task (function) name, e.g. `producer`, `consumer1`.
    pub name: String,
    /// Number of MPI processes the task requires.
    pub nprocs: usize,
    /// Datasets the task produces or consumes.
    pub data: Vec<DataRequirement>,
}

impl TaskSpec {
    /// Create a task with no data requirements.
    pub fn new(name: &str, nprocs: usize) -> Self {
        TaskSpec {
            name: name.to_owned(),
            nprocs,
            data: Vec::new(),
        }
    }

    /// Add a produced dataset.
    pub fn produces(mut self, dataset: &str) -> Self {
        self.data
            .push(DataRequirement::new(dataset, DataRole::Produces));
        self
    }

    /// Add a consumed dataset.
    pub fn consumes(mut self, dataset: &str) -> Self {
        self.data
            .push(DataRequirement::new(dataset, DataRole::Consumes));
        self
    }

    /// Datasets this task produces.
    pub fn produced_datasets(&self) -> Vec<&str> {
        self.data
            .iter()
            .filter(|d| d.role == DataRole::Produces)
            .map(|d| d.dataset.as_str())
            .collect()
    }

    /// Datasets this task consumes.
    pub fn consumed_datasets(&self) -> Vec<&str> {
        self.data
            .iter()
            .filter(|d| d.role == DataRole::Consumes)
            .map(|d| d.dataset.as_str())
            .collect()
    }
}

/// A whole workflow: an ordered list of tasks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkflowSpec {
    /// Workflow name (used for display and runtime tracing).
    pub name: String,
    /// Tasks in definition order (producers typically first).
    pub tasks: Vec<TaskSpec>,
}

impl WorkflowSpec {
    /// Create an empty workflow.
    pub fn new(name: &str) -> Self {
        WorkflowSpec {
            name: name.to_owned(),
            tasks: Vec::new(),
        }
    }

    /// Add a task.
    pub fn with_task(mut self, task: TaskSpec) -> Self {
        self.tasks.push(task);
        self
    }

    /// The paper's 3-node workflow: producer (3 procs) generating `grid` and
    /// `particles`; consumer1 (1 proc) reading `grid`; consumer2 (1 proc)
    /// reading `particles`.
    pub fn paper_3node() -> Self {
        WorkflowSpec::new("paper-3node")
            .with_task(
                TaskSpec::new("producer", 3)
                    .produces("grid")
                    .produces("particles"),
            )
            .with_task(TaskSpec::new("consumer1", 1).consumes("grid"))
            .with_task(TaskSpec::new("consumer2", 1).consumes("particles"))
    }

    /// The 2-node exemplar used in few-shot prompting: one producer and one
    /// consumer exchanging a single `particles` dataset.
    pub fn fewshot_2node() -> Self {
        WorkflowSpec::new("fewshot-2node")
            .with_task(TaskSpec::new("producer", 1).produces("particles"))
            .with_task(TaskSpec::new("consumer", 1).consumes("particles"))
    }

    /// Total number of MPI processes across all tasks.
    pub fn total_procs(&self) -> usize {
        self.tasks.iter().map(|t| t.nprocs).sum()
    }

    /// Names of every dataset appearing in the workflow (deduplicated, in
    /// first-appearance order).
    pub fn datasets(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for task in &self.tasks {
            for d in &task.data {
                if seen.insert(d.dataset.clone()) {
                    out.push(d.dataset.clone());
                }
            }
        }
        out
    }

    /// Look up a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Producer/consumer edges: `(producer task, consumer task, dataset)`
    /// for every dataset produced by one task and consumed by another.
    pub fn edges(&self) -> Vec<(String, String, String)> {
        let mut edges = Vec::new();
        for producer in &self.tasks {
            for dataset in producer.produced_datasets() {
                for consumer in &self.tasks {
                    if consumer.name != producer.name
                        && consumer.consumed_datasets().contains(&dataset)
                    {
                        edges.push((
                            producer.name.clone(),
                            consumer.name.clone(),
                            dataset.to_owned(),
                        ));
                    }
                }
            }
        }
        edges
    }

    /// Structural validation pass: every finding is a typed [`Diagnostic`]
    /// so callers can tell a duplicate task from a dangling edge from a
    /// cycle without parsing prose.
    ///
    /// Error-severity findings (duplicate/empty/absurd tasks, dangling
    /// consumes, cycles) make the spec structurally invalid; a produced
    /// dataset nobody consumes is only a warning (a solo producer is a
    /// legitimate, runnable workflow).
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.tasks.is_empty() {
            diags.push(Diagnostic::error(
                DiagnosticKind::EmptyWorkflow,
                "the workflow defines no tasks",
            ));
            return diags;
        }
        if self.tasks.len() > MAX_REASONABLE_TASKS {
            diags.push(Diagnostic::error(
                DiagnosticKind::TaskBounds,
                format!(
                    "{} tasks exceeds the plausible bound of {MAX_REASONABLE_TASKS}",
                    self.tasks.len()
                ),
            ));
        }
        let mut names = std::collections::HashSet::new();
        for task in &self.tasks {
            if task.name.is_empty()
                || task
                    .name
                    .chars()
                    .any(|c| c.is_whitespace() || c.is_control())
            {
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::InvalidTaskName,
                        format!("task name `{}` is empty or contains whitespace", task.name),
                    )
                    .at_path(&task.name),
                );
            }
            if !names.insert(task.name.as_str()) {
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::DuplicateTask,
                        format!("duplicate task name `{}`", task.name),
                    )
                    .at_path(&task.name),
                );
            }
            if task.nprocs == 0 {
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::ZeroProcs,
                        format!("task `{}` has zero processes", task.name),
                    )
                    .at_path(&task.name),
                );
            } else if task.nprocs > MAX_REASONABLE_PROCS {
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::ProcBounds,
                        format!(
                            "task `{}` requests {} processes, beyond the plausible bound of \
                             {MAX_REASONABLE_PROCS}",
                            task.name, task.nprocs
                        ),
                    )
                    .at_path(&task.name),
                );
            }
            let mut seen_reqs = std::collections::HashSet::new();
            for d in &task.data {
                if d.dataset.is_empty() {
                    diags.push(
                        Diagnostic::error(
                            DiagnosticKind::InvalidDataset,
                            format!("task `{}` references a dataset with no name", task.name),
                        )
                        .at_path(&task.name),
                    );
                }
                if !seen_reqs.insert((d.dataset.as_str(), d.role)) {
                    diags.push(
                        Diagnostic::warning(
                            DiagnosticKind::DuplicateEdge,
                            format!(
                                "task `{}` lists dataset `{}` twice with the same role",
                                task.name, d.dataset
                            ),
                        )
                        .at_path(&task.name),
                    );
                }
            }
            let produced_here = task.produced_datasets();
            for d in task.consumed_datasets() {
                if produced_here.contains(&d) {
                    diags.push(
                        Diagnostic::error(
                            DiagnosticKind::SelfLoop,
                            format!(
                                "task `{}` both produces and consumes dataset `{d}`",
                                task.name
                            ),
                        )
                        .at_path(&task.name),
                    );
                }
            }
        }
        if self.total_procs() > MAX_REASONABLE_PROCS {
            diags.push(Diagnostic::error(
                DiagnosticKind::ProcBounds,
                format!(
                    "{} total processes exceeds the plausible bound of {MAX_REASONABLE_PROCS}",
                    self.total_procs()
                ),
            ));
        }
        let produced: std::collections::HashSet<&str> = self
            .tasks
            .iter()
            .flat_map(|t| t.produced_datasets())
            .collect();
        let consumed: std::collections::HashSet<&str> = self
            .tasks
            .iter()
            .flat_map(|t| t.consumed_datasets())
            .collect();
        for task in &self.tasks {
            for d in task.consumed_datasets() {
                if !produced.contains(d) {
                    diags.push(
                        Diagnostic::error(
                            DiagnosticKind::DanglingConsume,
                            format!(
                                "task `{}` consumes dataset `{d}` which no task produces",
                                task.name
                            ),
                        )
                        .at_path(&task.name),
                    );
                }
            }
            for d in task.produced_datasets() {
                if !consumed.contains(d) {
                    diags.push(
                        Diagnostic::warning(
                            DiagnosticKind::UnconsumedProduce,
                            format!(
                                "task `{}` produces dataset `{d}` which no task consumes",
                                task.name
                            ),
                        )
                        .at_path(&task.name),
                    );
                }
            }
        }
        if let Some(cycle_tasks) = self.find_cycle() {
            diags.push(Diagnostic::error(
                DiagnosticKind::Cycle,
                format!(
                    "the producer/consumer graph contains a dependency cycle through: {}",
                    cycle_tasks.join(", ")
                ),
            ));
        }
        diags
    }

    /// True when [`validate`](WorkflowSpec::validate) reports no
    /// error-severity findings.
    pub fn is_structurally_valid(&self) -> bool {
        self.validate()
            .iter()
            .all(|d| d.severity != Severity::Error)
    }

    /// Tasks caught in a dependency cycle (Kahn's algorithm leftovers), in
    /// definition order, or `None` when the graph is acyclic.  Self-loops
    /// count: a task consuming its own output can never start.
    fn find_cycle(&self) -> Option<Vec<String>> {
        // predecessor counts per task index, from producer → consumer edges
        let mut indegree = vec![0usize; self.tasks.len()];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (pi, producer) in self.tasks.iter().enumerate() {
            let produced = producer.produced_datasets();
            for (ci, consumer) in self.tasks.iter().enumerate() {
                let depends = consumer
                    .consumed_datasets()
                    .iter()
                    .any(|d| produced.contains(d));
                if depends {
                    successors[pi].push(ci);
                    indegree[ci] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..self.tasks.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut resolved = 0;
        while let Some(i) = ready.pop() {
            resolved += 1;
            for &s in &successors[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if resolved == self.tasks.len() {
            return None;
        }
        Some(
            self.tasks
                .iter()
                .enumerate()
                .filter(|&(i, _)| indegree[i] > 0)
                .map(|(_, t)| t.name.clone())
                .collect(),
        )
    }

    /// Normalization pass: canonical task ordering (dependency rank, then
    /// name), sorted and deduplicated data requirements, and defaulted
    /// fields — so two specs describing the same workflow compare and score
    /// identically regardless of artifact ordering.  Idempotent, and safe on
    /// invalid specs (bounded work even with dependency cycles).
    pub fn normalize(&mut self) {
        if self.name.is_empty() {
            self.name = "workflow".to_owned();
        }
        for task in &mut self.tasks {
            for d in &mut task.data {
                if d.filename.is_empty() {
                    d.filename = "outfile.h5".to_owned();
                }
                if d.group_path.is_empty() {
                    d.group_path = format!("/group1/{}", d.dataset);
                }
            }
            let mut seen = std::collections::HashSet::new();
            task.data
                .retain(|d| seen.insert((d.dataset.clone(), d.role)));
            task.data.sort_by(|a, b| {
                (a.dataset.as_str(), role_rank(a.role))
                    .cmp(&(b.dataset.as_str(), role_rank(b.role)))
            });
        }
        // Dependency ranks are only canonical on acyclic graphs (the capped
        // relaxation for cycles depends on task order, so rank-sorting a
        // cyclic spec would not be idempotent).  Cyclic specs are invalid
        // anyway; give them a plain name ordering.
        let ranks = if self.find_cycle().is_some() {
            vec![0; self.tasks.len()]
        } else {
            self.dependency_ranks()
        };
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        order.sort_by(|&a, &b| {
            (ranks[a], self.tasks[a].name.as_str()).cmp(&(ranks[b], self.tasks[b].name.as_str()))
        });
        let mut tasks = std::mem::take(&mut self.tasks);
        let mut reordered = Vec::with_capacity(tasks.len());
        for idx in order {
            reordered.push(std::mem::replace(&mut tasks[idx], TaskSpec::new("", 0)));
        }
        self.tasks = reordered;
    }

    /// A normalized copy of this spec.
    pub fn normalized(&self) -> Self {
        let mut copy = self.clone();
        copy.normalize();
        copy
    }

    /// Longest-path depth of each task from the dependency sources.  The
    /// relaxation loop is bounded by the task count, so cyclic (invalid)
    /// specs terminate with a stable, deterministic ranking instead of
    /// hanging.
    fn dependency_ranks(&self) -> Vec<usize> {
        let n = self.tasks.len();
        let mut ranks = vec![0usize; n];
        for _ in 0..n {
            let mut changed = false;
            for (ci, consumer) in self.tasks.iter().enumerate() {
                let consumed = consumer.consumed_datasets();
                for (pi, producer) in self.tasks.iter().enumerate() {
                    if pi == ci {
                        continue;
                    }
                    let feeds = producer
                        .produced_datasets()
                        .iter()
                        .any(|d| consumed.contains(d));
                    if feeds && ranks[ci] < ranks[pi] + 1 && ranks[pi] < n {
                        ranks[ci] = ranks[pi] + 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        ranks
    }
}

/// Produces sorts before Consumes within a task's data list.
fn role_rank(role: DataRole) -> u8 {
    match role {
        DataRole::Produces => 0,
        DataRole::Consumes => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_3node_structure() {
        let spec = WorkflowSpec::paper_3node();
        assert_eq!(spec.tasks.len(), 3);
        assert_eq!(spec.total_procs(), 5);
        assert_eq!(spec.datasets(), vec!["grid", "particles"]);
        assert_eq!(spec.task("producer").unwrap().nprocs, 3);
        assert_eq!(
            spec.task("consumer1").unwrap().consumed_datasets(),
            vec!["grid"]
        );
        assert!(spec.validate().is_empty());
        assert!(spec.is_structurally_valid());
    }

    #[test]
    fn paper_3node_edges() {
        let spec = WorkflowSpec::paper_3node();
        let edges = spec.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&("producer".into(), "consumer1".into(), "grid".into())));
        assert!(edges.contains(&("producer".into(), "consumer2".into(), "particles".into())));
    }

    #[test]
    fn fewshot_2node_structure() {
        let spec = WorkflowSpec::fewshot_2node();
        assert_eq!(spec.tasks.len(), 2);
        assert_eq!(spec.edges().len(), 1);
        assert!(spec.validate().is_empty());
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagnosticKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn validate_rejects_duplicate_task_names() {
        let spec = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("a", 1))
            .with_task(TaskSpec::new("a", 1));
        let diags = spec.validate();
        assert!(kinds(&diags).contains(&DiagnosticKind::DuplicateTask));
        assert!(!spec.is_structurally_valid());
        // The finding names the offending task.
        let dup = diags
            .iter()
            .find(|d| d.kind == DiagnosticKind::DuplicateTask)
            .unwrap();
        assert_eq!(dup.path.as_deref(), Some("a"));
    }

    #[test]
    fn validate_rejects_zero_procs() {
        let spec = WorkflowSpec::new("w").with_task(TaskSpec::new("a", 0));
        assert!(kinds(&spec.validate()).contains(&DiagnosticKind::ZeroProcs));
    }

    #[test]
    fn validate_rejects_orphan_consumer() {
        let spec = WorkflowSpec::new("w").with_task(TaskSpec::new("c", 1).consumes("grid"));
        assert!(kinds(&spec.validate()).contains(&DiagnosticKind::DanglingConsume));
    }

    #[test]
    fn validate_rejects_empty_workflow() {
        let diags = WorkflowSpec::new("w").validate();
        assert_eq!(kinds(&diags), vec![DiagnosticKind::EmptyWorkflow]);
    }

    #[test]
    fn validate_warns_on_unconsumed_produce_but_stays_valid() {
        // A solo producer is runnable; downstream stages must not reject it.
        let spec = WorkflowSpec::new("w").with_task(TaskSpec::new("p", 2).produces("grid"));
        let diags = spec.validate();
        assert!(kinds(&diags).contains(&DiagnosticKind::UnconsumedProduce));
        assert!(spec.is_structurally_valid());
    }

    #[test]
    fn validate_rejects_absurd_proc_counts() {
        let spec = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("p", MAX_REASONABLE_PROCS + 1).produces("g"))
            .with_task(TaskSpec::new("c", 1).consumes("g"));
        assert!(kinds(&spec.validate()).contains(&DiagnosticKind::ProcBounds));
        // Sandbox-sized-but-large counts are fine at this stage.
        let sane = WorkflowSpec::new("w").with_task(TaskSpec::new("p", 5000).produces("g"));
        assert!(sane.is_structurally_valid());
    }

    #[test]
    fn validate_rejects_invalid_names_and_datasets() {
        let spec = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("has space", 1).produces("g"))
            .with_task(TaskSpec::new("c", 1).consumes("g").consumes(""));
        let diags = spec.validate();
        assert!(kinds(&diags).contains(&DiagnosticKind::InvalidTaskName));
        assert!(kinds(&diags).contains(&DiagnosticKind::InvalidDataset));
    }

    #[test]
    fn validate_detects_self_loop_and_cycle() {
        let self_loop =
            WorkflowSpec::new("w").with_task(TaskSpec::new("a", 1).produces("x").consumes("x"));
        let diags = self_loop.validate();
        assert!(kinds(&diags).contains(&DiagnosticKind::SelfLoop));
        assert!(kinds(&diags).contains(&DiagnosticKind::Cycle));

        // a → b → a through two datasets: no self-loop, still a cycle.
        let two_cycle = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("a", 1).produces("x").consumes("y"))
            .with_task(TaskSpec::new("b", 1).produces("y").consumes("x"));
        let diags = two_cycle.validate();
        assert!(!kinds(&diags).contains(&DiagnosticKind::SelfLoop));
        let cycle = diags
            .iter()
            .find(|d| d.kind == DiagnosticKind::Cycle)
            .expect("cycle reported");
        assert!(cycle.message.contains('a') && cycle.message.contains('b'));
        assert!(!two_cycle.is_structurally_valid());
    }

    #[test]
    fn validate_warns_on_duplicate_data_requirements() {
        let spec = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("p", 1).produces("g").produces("g"))
            .with_task(TaskSpec::new("c", 1).consumes("g"));
        let diags = spec.validate();
        assert!(kinds(&diags).contains(&DiagnosticKind::DuplicateEdge));
        assert!(spec.is_structurally_valid());
    }

    #[test]
    fn normalize_orders_tasks_by_dependency_rank_then_name() {
        // Consumers listed before the producer: normalize restores
        // producer-first canonical order.
        let mut spec = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("consumer2", 1).consumes("particles"))
            .with_task(TaskSpec::new("consumer1", 1).consumes("grid"))
            .with_task(
                TaskSpec::new("producer", 3)
                    .produces("particles")
                    .produces("grid"),
            );
        spec.normalize();
        let names: Vec<&str> = spec.tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["producer", "consumer1", "consumer2"]);
        // Data requirements are sorted by dataset.
        assert_eq!(spec.tasks[0].produced_datasets(), vec!["grid", "particles"]);
    }

    #[test]
    fn normalize_is_idempotent_and_preserves_canonical_specs() {
        let canonical = WorkflowSpec::paper_3node();
        let mut once = canonical.clone();
        once.normalize();
        assert_eq!(once, canonical, "paper_3node is already canonical");
        let twice = once.normalized();
        assert_eq!(twice, once);
    }

    #[test]
    fn normalize_dedups_edges_and_defaults_fields() {
        let mut spec = WorkflowSpec::new("")
            .with_task(TaskSpec::new("p", 1).produces("g").produces("g"))
            .with_task(TaskSpec::new("c", 1).consumes("g"));
        spec.tasks[0].data[0].filename.clear();
        spec.tasks[0].data[0].group_path.clear();
        spec.normalize();
        assert_eq!(spec.name, "workflow");
        assert_eq!(spec.tasks[0].data.len(), 1);
        assert_eq!(spec.tasks[0].data[0].filename, "outfile.h5");
        assert_eq!(spec.tasks[0].data[0].group_path, "/group1/g");
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn normalize_terminates_on_cyclic_specs() {
        // Invalid (cyclic) specs must still normalize in bounded time with
        // a deterministic order.
        let mut spec = WorkflowSpec::new("w")
            .with_task(TaskSpec::new("b", 1).produces("y").consumes("x"))
            .with_task(TaskSpec::new("a", 1).produces("x").consumes("y"));
        spec.normalize();
        let again = spec.normalized();
        assert_eq!(again, spec);
        assert_eq!(spec.tasks.len(), 2);
    }

    #[test]
    fn data_requirement_defaults() {
        let d = DataRequirement::new("grid", DataRole::Produces);
        assert_eq!(d.filename, "outfile.h5");
        assert_eq!(d.group_path, "/group1/grid");
    }

    #[test]
    fn produced_and_consumed_listing() {
        let t = TaskSpec::new("x", 2)
            .produces("a")
            .consumes("b")
            .produces("c");
        assert_eq!(t.produced_datasets(), vec!["a", "c"]);
        assert_eq!(t.consumed_datasets(), vec!["b"]);
    }
}
