//! PyCOMPSs: task-based programming model with Python method annotations.
//!
//! Like Parsl, PyCOMPSs is exercised through task-code annotation: the
//! producer function is decorated with `@task`, file dependencies are
//! declared with parameter directions (`FILE_OUT`), and the main program
//! synchronises with `compss_wait_on_file` (the call the paper notes
//! LLaMA-3.3-70B keeps forgetting).

use wfspeak_codemodel::lexer::Language;
use wfspeak_corpus::WorkflowSystemId;

use crate::annotate::validate_task_code;
use crate::api::{catalog_for, ApiCatalog};
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::spec::WorkflowSpec;
use crate::WorkflowSystem;

/// The PyCOMPSs system model.
#[derive(Debug)]
pub struct PyCompssSystem {
    api: ApiCatalog,
}

impl PyCompssSystem {
    /// Create the model.
    pub fn new() -> Self {
        PyCompssSystem {
            api: catalog_for(WorkflowSystemId::PyCompss),
        }
    }
}

impl Default for PyCompssSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowSystem for PyCompssSystem {
    fn id(&self) -> WorkflowSystemId {
        WorkflowSystemId::PyCompss
    }

    fn api(&self) -> &ApiCatalog {
        &self.api
    }

    fn validate_config(&self, _config: &str) -> ValidationReport {
        let mut report = ValidationReport::valid();
        report.push(Diagnostic::info(
            DiagnosticKind::EnvironmentConfig,
            "PyCOMPSs configuration (project/resources XML) describes the execution environment, \
             not the workflow structure; the configuration experiment does not apply",
        ));
        report
    }

    fn validate_task_code(&self, code: &str) -> ValidationReport {
        let mut report = validate_task_code(&self.api, code, Language::Python, &[]);
        if !code.contains("pycompss") {
            report.push(Diagnostic::error(
                DiagnosticKind::MissingImport,
                "the task code never imports the pycompss API modules",
            ));
        }
        // File-based producer/consumer exchange needs a parameter direction.
        if !code.contains("FILE_OUT") && !code.contains("FILE_INOUT") {
            report.push(Diagnostic::warning(
                DiagnosticKind::MissingDirection,
                "no FILE_OUT/FILE_INOUT parameter direction declared for the produced file",
            ));
        }
        report
    }

    fn generate_config(&self, _spec: &WorkflowSpec) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::annotated;

    #[test]
    fn reference_annotation_validates() {
        let system = PyCompssSystem::new();
        let report = system.validate_task_code(annotated::PYCOMPSS_PRODUCER);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn missing_wait_on_file_flagged() {
        // The paper: LLaMA-3.3-70B omits compss_wait_on_file, required for
        // file-based synchronisation.
        let system = PyCompssSystem::new();
        let code = r#"
from pycompss.api.task import task
from pycompss.api.parameter import FILE_OUT

@task(outfile=FILE_OUT)
def produce(n, outfile):
    return outfile

produce(50, "out.txt")
"#;
        let report = system.validate_task_code(code);
        assert!(!report.is_valid());
        assert!(report
            .with_code("missing-call")
            .any(|d| d.message.contains("compss_wait_on_file")));
    }

    #[test]
    fn hallucinated_compss_call_flagged() {
        let system = PyCompssSystem::new();
        let code = r#"
from pycompss.api.task import task
from pycompss.api.parameter import FILE_OUT

@task(outfile=FILE_OUT)
def produce(n, outfile):
    return outfile

produce(50, "out.txt")
compss_wait_on_file("out.txt")
compss_sync_all()
"#;
        let report = system.validate_task_code(code);
        assert!(report.has_code("hallucinated-call"));
    }

    #[test]
    fn missing_import_flagged() {
        let system = PyCompssSystem::new();
        let code = "@task(returns=1)\ndef produce(n):\n    return n\n\nproduce(5)\ncompss_wait_on_file(\"o\")\n";
        let report = system.validate_task_code(code);
        assert!(report.has_code("missing-import"));
    }

    #[test]
    fn missing_file_direction_warned() {
        let system = PyCompssSystem::new();
        let code = "from pycompss.api.task import task\nfrom pycompss.api.api import compss_wait_on_file\n\n@task(returns=1)\ndef produce(n, outfile):\n    return outfile\n\nproduce(5, \"o\")\ncompss_wait_on_file(\"o\")\n";
        let report = system.validate_task_code(code);
        assert!(report.is_valid(), "{report}");
        assert!(report.has_code("missing-direction"));
    }

    #[test]
    fn config_experiment_not_applicable() {
        let system = PyCompssSystem::new();
        assert!(system
            .validate_config("anything")
            .has_code("environment-config"));
        assert!(system
            .generate_config(&WorkflowSpec::paper_3node())
            .is_none());
    }
}
