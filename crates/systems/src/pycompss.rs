//! PyCOMPSs: task-based programming model with Python method annotations.
//!
//! Like Parsl, PyCOMPSs is exercised through task-code annotation: the
//! producer function is decorated with `@task`, file dependencies are
//! declared with parameter directions (`FILE_OUT`), and the main program
//! synchronises with `compss_wait_on_file` (the call the paper notes
//! LLaMA-3.3-70B keeps forgetting).  Those parameter directions are exactly
//! the workflow structure, and [`PyCompssScript`] recovers it for the
//! runtime: `@task` functions become tasks, `FILE_OUT`/`FILE_IN` parameter
//! annotations become produces/consumes edges named after the file bound at
//! the call site, and `@mpi(processes=N)`/`@constraint(computing_units=N)`
//! set the process count.

use std::collections::BTreeMap;

use wfspeak_codemodel::lexer::Language;
use wfspeak_corpus::WorkflowSystemId;

use crate::annotate::validate_task_code;
use crate::api::{catalog_for, ApiCatalog};
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::parsl::dataflow_for;
use crate::pyflow::{scan_functions, scan_invocations, PyInvocation};
use crate::spec::{DataRole, TaskSpec, WorkflowSpec};
use crate::WorkflowSystem;

/// Decorator names that mark a function as a PyCOMPSs task.
const TASK_DECORATORS: &[&str] = &["task", "binary", "mpi", "multinode"];

/// One `@task`-decorated definition recovered from the script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyCompssTask {
    /// Function (task) name.
    pub name: String,
    /// Parameter names in declaration order.
    pub params: Vec<String>,
    /// Parameter direction annotations from the `@task` decorator
    /// (`outfile=FILE_OUT` → `("outfile", Produces)`).
    pub directions: BTreeMap<String, DataRole>,
    /// Processes requested via `@mpi(processes=N)` or
    /// `@constraint(computing_units=N)`; 1 when absent.
    pub nprocs: usize,
}

/// A parsed PyCOMPSs script: task definitions plus their invocations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PyCompssScript {
    /// Task definitions in source order.
    pub tasks: Vec<PyCompssTask>,
    /// Invocations of those tasks in source order.
    pub invocations: Vec<PyInvocation>,
}

/// Map a PyCOMPSs parameter-direction constant to a dataflow role.
/// `FILE_INOUT` is treated as consumes only, so an in-place update never
/// turns into a produces-and-consumes self-loop on the same dataset.
fn direction_constant(value: &str) -> Option<DataRole> {
    match value.trim() {
        "FILE_OUT" | "FILE_OUT_STDOUT" | "DIRECTORY_OUT" | "OUT" => Some(DataRole::Produces),
        "FILE_IN" | "DIRECTORY_IN" | "IN" | "FILE_INOUT" | "DIRECTORY_INOUT" | "INOUT" => {
            Some(DataRole::Consumes)
        }
        _ => None,
    }
}

impl PyCompssScript {
    /// Parse annotated PyCOMPSs task code, reporting missing imports and the
    /// absence of any task definition.
    pub fn parse(source: &str) -> (Option<PyCompssScript>, ValidationReport) {
        let mut report = ValidationReport::valid();
        if !source.contains("pycompss") {
            report.push(Diagnostic::error(
                DiagnosticKind::MissingImport,
                "the script never imports the pycompss API modules",
            ));
        }
        let tasks: Vec<PyCompssTask> = scan_functions(source)
            .into_iter()
            .filter(|f| f.decorator_in(TASK_DECORATORS).is_some())
            .map(|f| {
                let mut directions = BTreeMap::new();
                let mut nprocs = 1usize;
                for decorator in &f.decorators {
                    for (key, value) in &decorator.args {
                        if f.params.contains(key) {
                            if let Some(role) = direction_constant(value) {
                                directions.insert(key.clone(), role);
                            }
                        }
                        if (key == "processes" || key == "computing_units") && nprocs == 1 {
                            if let Ok(n) = value.trim().parse::<usize>() {
                                nprocs = n.max(1);
                            }
                        }
                    }
                }
                PyCompssTask {
                    name: f.name,
                    params: f.params,
                    directions,
                    nprocs,
                }
            })
            .collect();
        if tasks.is_empty() {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                "the script defines no PyCOMPSs tasks (no @task/@binary/@mpi decorated \
                 functions), so no workflow structure can be recovered",
            ));
            return (None, report);
        }
        let names: Vec<&str> = tasks.iter().map(|t| t.name.as_str()).collect();
        let invocations = scan_invocations(source, &names);
        (Some(PyCompssScript { tasks, invocations }), report)
    }

    /// Reconstruct the neutral workflow specification the script describes.
    ///
    /// `@task` functions become tasks; their declared parameter directions
    /// decide which call-site arguments carry dataflow, with the bound file
    /// name (or the parameter name, when no call binds one) as the dataset —
    /// the same naming-convention inference
    /// [`HensonScript::to_spec`](crate::henson::HensonScript::to_spec)
    /// applies to shared-library stems.  Futures passed between tasks become
    /// produces/consumes edges named after the future variable.
    pub fn to_spec(&self, name: &str) -> Result<WorkflowSpec, Diagnostic> {
        if self.tasks.is_empty() {
            return Err(Diagnostic::error(
                DiagnosticKind::EmptyWorkflow,
                "the script defines no PyCOMPSs tasks, so no tasks can be recovered",
            ));
        }
        let mut spec = WorkflowSpec::new(name);
        for task in &self.tasks {
            let mut task_spec = TaskSpec::new(&task.name, task.nprocs);
            for (dataset, role) in dataflow_for(
                &task.name,
                &task.params,
                &self.invocations,
                &|param| task.directions.get(param).copied(),
                &|other| self.tasks.iter().any(|t| t.name == other),
            ) {
                task_spec = match role {
                    DataRole::Produces => task_spec.produces(&dataset),
                    DataRole::Consumes => task_spec.consumes(&dataset),
                };
            }
            spec.tasks.push(task_spec);
        }
        Ok(spec)
    }
}

/// The PyCOMPSs system model.
#[derive(Debug)]
pub struct PyCompssSystem {
    api: ApiCatalog,
}

impl PyCompssSystem {
    /// Create the model.
    pub fn new() -> Self {
        PyCompssSystem {
            api: catalog_for(WorkflowSystemId::PyCompss),
        }
    }
}

impl Default for PyCompssSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowSystem for PyCompssSystem {
    fn id(&self) -> WorkflowSystemId {
        WorkflowSystemId::PyCompss
    }

    fn api(&self) -> &ApiCatalog {
        &self.api
    }

    fn validate_config(&self, _config: &str) -> ValidationReport {
        let mut report = ValidationReport::valid();
        report.push(Diagnostic::info(
            DiagnosticKind::EnvironmentConfig,
            "PyCOMPSs configuration (project/resources XML) describes the execution environment, \
             not the workflow structure; the configuration experiment does not apply",
        ));
        report
    }

    fn validate_task_code(&self, code: &str) -> ValidationReport {
        let mut report = validate_task_code(&self.api, code, Language::Python, &[]);
        if !code.contains("pycompss") {
            report.push(Diagnostic::error(
                DiagnosticKind::MissingImport,
                "the task code never imports the pycompss API modules",
            ));
        }
        // File-based producer/consumer exchange needs a parameter direction.
        if !code.contains("FILE_OUT") && !code.contains("FILE_INOUT") {
            report.push(Diagnostic::warning(
                DiagnosticKind::MissingDirection,
                "no FILE_OUT/FILE_INOUT parameter direction declared for the produced file",
            ));
        }
        report
    }

    fn generate_config(&self, _spec: &WorkflowSpec) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::annotated;

    #[test]
    fn reference_annotation_validates() {
        let system = PyCompssSystem::new();
        let report = system.validate_task_code(annotated::PYCOMPSS_PRODUCER);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn missing_wait_on_file_flagged() {
        // The paper: LLaMA-3.3-70B omits compss_wait_on_file, required for
        // file-based synchronisation.
        let system = PyCompssSystem::new();
        let code = r#"
from pycompss.api.task import task
from pycompss.api.parameter import FILE_OUT

@task(outfile=FILE_OUT)
def produce(n, outfile):
    return outfile

produce(50, "out.txt")
"#;
        let report = system.validate_task_code(code);
        assert!(!report.is_valid());
        assert!(report
            .with_code("missing-call")
            .any(|d| d.message.contains("compss_wait_on_file")));
    }

    #[test]
    fn hallucinated_compss_call_flagged() {
        let system = PyCompssSystem::new();
        let code = r#"
from pycompss.api.task import task
from pycompss.api.parameter import FILE_OUT

@task(outfile=FILE_OUT)
def produce(n, outfile):
    return outfile

produce(50, "out.txt")
compss_wait_on_file("out.txt")
compss_sync_all()
"#;
        let report = system.validate_task_code(code);
        assert!(report.has_code("hallucinated-call"));
    }

    #[test]
    fn missing_import_flagged() {
        let system = PyCompssSystem::new();
        let code = "@task(returns=1)\ndef produce(n):\n    return n\n\nproduce(5)\ncompss_wait_on_file(\"o\")\n";
        let report = system.validate_task_code(code);
        assert!(report.has_code("missing-import"));
    }

    #[test]
    fn missing_file_direction_warned() {
        let system = PyCompssSystem::new();
        let code = "from pycompss.api.task import task\nfrom pycompss.api.api import compss_wait_on_file\n\n@task(returns=1)\ndef produce(n, outfile):\n    return outfile\n\nproduce(5, \"o\")\ncompss_wait_on_file(\"o\")\n";
        let report = system.validate_task_code(code);
        assert!(report.is_valid(), "{report}");
        assert!(report.has_code("missing-direction"));
    }

    #[test]
    fn config_experiment_not_applicable() {
        let system = PyCompssSystem::new();
        assert!(system
            .validate_config("anything")
            .has_code("environment-config"));
        assert!(system
            .generate_config(&WorkflowSpec::paper_3node())
            .is_none());
    }

    #[test]
    fn reference_annotation_reconstructs_the_producer_spec() {
        let (script, report) = PyCompssScript::parse(annotated::PYCOMPSS_PRODUCER);
        assert!(report.is_valid(), "{report}");
        let script = script.expect("reference parses");
        assert_eq!(script.tasks.len(), 1);
        assert_eq!(script.tasks[0].name, "produce");
        assert_eq!(script.tasks[0].nprocs, 1);
        assert_eq!(
            script.tasks[0].directions.get("outfile"),
            Some(&DataRole::Produces)
        );

        let spec = script.to_spec("pycompss-workflow").expect("spec recovered");
        assert_eq!(spec.tasks.len(), 1);
        let task = &spec.tasks[0];
        assert_eq!(task.name, "produce");
        assert_eq!(task.nprocs, 1);
        assert_eq!(task.data.len(), 1);
        assert_eq!(task.data[0].dataset, "output");
        assert_eq!(task.data[0].role, DataRole::Produces);
    }

    #[test]
    fn file_in_and_mpi_processes_are_recovered() {
        let code = r#"
from pycompss.api.task import task
from pycompss.api.mpi import mpi
from pycompss.api.parameter import FILE_OUT, FILE_IN
from pycompss.api.api import compss_wait_on_file

@mpi(runner="mpirun", processes=3)
@task(outfile=FILE_OUT)
def produce(n, outfile):
    return n

@task(infile=FILE_IN)
def consume(infile):
    return infile

produce(50, "grid.h5")
consume("grid.h5")
compss_wait_on_file("grid.h5")
"#;
        let (script, report) = PyCompssScript::parse(code);
        assert!(report.is_valid(), "{report}");
        let spec = script.unwrap().to_spec("pycompss-workflow").unwrap();
        assert_eq!(spec.tasks.len(), 2);
        let produce = spec.task("produce").unwrap();
        assert_eq!(produce.nprocs, 3);
        assert_eq!(produce.data[0].dataset, "grid");
        assert_eq!(produce.data[0].role, DataRole::Produces);
        let consume = spec.task("consume").unwrap();
        assert_eq!(consume.nprocs, 1);
        assert_eq!(consume.data[0].dataset, "grid");
        assert_eq!(consume.data[0].role, DataRole::Consumes);
        assert!(spec.is_structurally_valid(), "{:?}", spec.validate());
    }

    #[test]
    fn direction_free_task_keeps_an_empty_dataflow() {
        // The Poor degradation tier rewrites @task(outfile=FILE_OUT) into
        // @task(returns=1): the task still parses and runs, but the lost
        // direction honestly costs it every data edge (and thus fidelity).
        let code = "from pycompss.api.task import task\n\n@task(returns=1)\ndef produce(n, outfile):\n    return n\n\nproduce(50, \"output.txt\")\n";
        let (script, report) = PyCompssScript::parse(code);
        assert!(report.is_valid(), "{report}");
        let spec = script.unwrap().to_spec("pycompss-workflow").unwrap();
        assert_eq!(spec.tasks.len(), 1);
        assert!(spec.tasks[0].data.is_empty());
    }

    #[test]
    fn undecorated_script_yields_no_spec() {
        let code = "from pycompss.api.api import compss_barrier\n\ndef produce(n):\n    return n\n\nproduce(5)\n";
        let (script, report) = PyCompssScript::parse(code);
        assert!(script.is_none());
        assert!(report.has_code("schema"));
    }

    #[test]
    fn renamed_direction_kwargs_still_bind_to_params() {
        // style_rewrite renames outfile → output_path in both the decorator
        // kwarg and the parameter list; the kwarg-to-param match survives.
        let code = "from pycompss.api.task import task\nfrom pycompss.api.parameter import FILE_OUT\n\n@task(output_path=FILE_OUT)\ndef run_producer(num_values, output_path):\n    return num_values\n\nrun_producer(50, \"output.txt\")\n";
        let (script, report) = PyCompssScript::parse(code);
        assert!(report.is_valid(), "{report}");
        let spec = script.unwrap().to_spec("pycompss-workflow").unwrap();
        assert_eq!(spec.tasks[0].data.len(), 1);
        assert_eq!(spec.tasks[0].data[0].dataset, "output");
        assert_eq!(spec.tasks[0].data[0].role, DataRole::Produces);
    }

    #[test]
    fn parse_never_panics_on_malformed_soup() {
        for soup in [
            "",
            "@task(",
            "@task(x=FILE_OUT\ndef",
            "pycompss @task()\ndef f():\n",
            "\u{0}@task(a=FILE_IN)\ndef f(a):\n",
        ] {
            let (script, _report) = PyCompssScript::parse(soup);
            if let Some(script) = script {
                let _ = script.to_spec("pycompss-workflow");
            }
        }
    }
}
