//! Line-level Python scanning shared by the Parsl and PyCOMPSs front-ends.
//!
//! Both systems describe workflow structure inside annotated task code
//! rather than a configuration file: decorated function definitions are the
//! tasks, and call sites bind concrete file names (or futures from earlier
//! calls) to the parameters that carry the dataflow.  This module recovers
//! exactly that — decorated functions with their parameter lists, and
//! top-level invocations with their argument texts — without attempting to
//! be a general Python parser.  Everything is a total function of the input:
//! malformed text yields fewer findings, never a panic.

/// One decorator applied to a function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyDecorator {
    /// Dotted decorator name with the leading `@` stripped (e.g. `task`,
    /// `python_app`, `parsl.python_app`).
    pub name: String,
    /// Keyword arguments as `(name, raw value text)` pairs; positional
    /// decorator arguments are recorded with an empty name.
    pub args: Vec<(String, String)>,
    /// 1-based source line.
    pub line: usize,
}

impl PyDecorator {
    /// Final segment of the dotted name (`parsl.python_app` → `python_app`).
    pub fn base_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }

    /// The raw value of a keyword argument, if present.
    pub fn kwarg(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One function definition with its decorators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyFunction {
    /// Function name.
    pub name: String,
    /// Parameter names in declaration order (defaults and annotations
    /// stripped; `*args`/`**kwargs` markers dropped).
    pub params: Vec<String>,
    /// Decorators in source order.
    pub decorators: Vec<PyDecorator>,
    /// 1-based line of the `def`.
    pub line: usize,
}

impl PyFunction {
    /// The first decorator whose base name is in `names`, if any.
    pub fn decorator_in<'a>(&'a self, names: &[&str]) -> Option<&'a PyDecorator> {
        self.decorators
            .iter()
            .find(|d| names.contains(&d.base_name()))
    }
}

/// One top-level invocation of a known function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyInvocation {
    /// Name of the invoked function.
    pub callee: String,
    /// Raw argument texts, split on top-level commas.
    pub args: Vec<String>,
    /// Variable the result is assigned to (`future = produce(...)`).
    pub assigned_to: Option<String>,
    /// 1-based source line.
    pub line: usize,
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Split `text` on commas at bracket/quote depth zero.
fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut depth = 0i32;
    let mut quote: Option<char> = None;
    for c in text.chars() {
        match quote {
            Some(q) => {
                current.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '"' | '\'' => {
                    quote = Some(c);
                    current.push(c);
                }
                '(' | '[' | '{' => {
                    depth += 1;
                    current.push(c);
                }
                ')' | ']' | '}' => {
                    depth -= 1;
                    current.push(c);
                }
                ',' if depth == 0 => {
                    parts.push(current.trim().to_owned());
                    current.clear();
                }
                _ => current.push(c),
            },
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_owned());
    }
    parts
}

/// Extract the balanced-paren argument text starting just after an opening
/// `(` at byte offset `open` in `line`, bounded to the line.  Returns the
/// inner text (possibly unterminated at end of line).
fn paren_args(line: &str, open: usize) -> &str {
    let inner = &line[open + 1..];
    let mut depth = 1i32;
    let mut quote: Option<char> = None;
    for (i, c) in inner.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '"' | '\'' => quote = Some(c),
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return &inner[..i];
                    }
                }
                _ => {}
            },
        }
    }
    inner
}

/// Scan decorated function definitions.  Decorators accumulate until the
/// `def` they annotate; comments and blank lines between them are tolerated,
/// any other statement resets the pending list.
pub fn scan_functions(source: &str) -> Vec<PyFunction> {
    let mut functions = Vec::new();
    let mut pending: Vec<PyDecorator> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('@') {
            let (name, args) = match rest.find('(') {
                Some(open) => {
                    let name = rest[..open].trim().to_owned();
                    let args = split_top_level(paren_args(rest, open))
                        .into_iter()
                        .map(|arg| match arg.split_once('=') {
                            Some((k, v)) if is_ident(k.trim()) && !v.starts_with('=') => {
                                (k.trim().to_owned(), v.trim().to_owned())
                            }
                            _ => (String::new(), arg),
                        })
                        .collect();
                    (name, args)
                }
                None => (rest.trim().to_owned(), Vec::new()),
            };
            if !name.is_empty() {
                pending.push(PyDecorator {
                    name,
                    args,
                    line: line_no,
                });
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("def ") {
            if let Some(open) = rest.find('(') {
                let name = rest[..open].trim().to_owned();
                let params = split_top_level(paren_args(rest, open))
                    .into_iter()
                    .filter_map(|p| {
                        let p = p.split(['=', ':']).next().unwrap_or("").trim();
                        let p = p.trim_start_matches('*').trim();
                        is_ident(p).then(|| p.to_owned())
                    })
                    .collect();
                if is_ident(&name) {
                    functions.push(PyFunction {
                        name,
                        params,
                        decorators: std::mem::take(&mut pending),
                        line: line_no,
                    });
                }
            }
            pending.clear();
            continue;
        }
        pending.clear();
    }
    functions
}

/// Scan invocations of the named functions outside `def` and decorator
/// lines, recording raw argument texts and any simple assignment target.
pub fn scan_invocations(source: &str, names: &[&str]) -> Vec<PyInvocation> {
    let mut invocations = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim_end();
        let trimmed = line.trim_start();
        if trimmed.starts_with("def ") || trimmed.starts_with('@') || trimmed.starts_with('#') {
            continue;
        }
        for &name in names {
            let mut search_from = 0;
            while let Some(found) = line[search_from..].find(name) {
                let start = search_from + found;
                search_from = start + name.len();
                let before_ok = line[..start]
                    .chars()
                    .next_back()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != '.');
                let after = &line[start + name.len()..];
                if !before_ok || !after.starts_with('(') {
                    continue;
                }
                let args = split_top_level(paren_args(line, start + name.len()));
                let prefix = line[..start].trim();
                let assigned_to = prefix
                    .strip_suffix('=')
                    .map(str::trim)
                    .filter(|v| is_ident(v) && !prefix.ends_with("==") && !prefix.ends_with("!="))
                    .map(str::to_owned);
                invocations.push(PyInvocation {
                    callee: name.to_owned(),
                    args,
                    assigned_to,
                    line: idx + 1,
                });
            }
        }
    }
    invocations
}

/// The inner text of a quoted string literal, if `text` is one.
pub fn string_literal(text: &str) -> Option<&str> {
    let text = text.trim();
    for quote in ['"', '\''] {
        if text.len() >= 2 && text.starts_with(quote) && text.ends_with(quote) {
            let inner = &text[1..text.len() - 1];
            if !inner.contains(quote) {
                return Some(inner);
            }
        }
    }
    None
}

/// Dataset name derived from a file path: basename with the extension
/// stripped (`"output.txt"` → `output`, `"runs/grid.h5"` → `grid`).
pub fn dataset_from_path(path: &str) -> String {
    let base = path.rsplit('/').next().unwrap_or(path);
    let stem = match base.rsplit_once('.') {
        Some((stem, _)) if !stem.is_empty() => stem,
        _ => base,
    };
    if stem.is_empty() {
        path.to_owned()
    } else {
        stem.to_owned()
    }
}

/// Dataflow direction a parameter name implies, from its `_`-separated
/// tokens (`outfile`, `output_path` → produces; `infile`, `input_path` →
/// consumes; anything else carries no direction).
pub fn param_direction(param: &str) -> Option<crate::spec::DataRole> {
    let lower = param.to_ascii_lowercase();
    for token in lower.split('_') {
        match token {
            "out" | "outfile" | "output" | "outputs" | "outpath" => {
                return Some(crate::spec::DataRole::Produces)
            }
            "in" | "infile" | "input" | "inputs" | "inpath" => {
                return Some(crate::spec::DataRole::Consumes)
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DataRole;

    #[test]
    fn scans_decorated_functions_with_params() {
        let src = "import parsl\n\n@python_app\ndef produce(n, iterations, sleep_interval, outfile):\n    pass\n";
        let funcs = scan_functions(src);
        assert_eq!(funcs.len(), 1);
        assert_eq!(funcs[0].name, "produce");
        assert_eq!(
            funcs[0].params,
            vec!["n", "iterations", "sleep_interval", "outfile"]
        );
        assert_eq!(funcs[0].decorators.len(), 1);
        assert_eq!(funcs[0].decorators[0].base_name(), "python_app");
    }

    #[test]
    fn decorator_kwargs_are_recovered() {
        let src = "@task(outfile=FILE_OUT, returns=1)\ndef produce(n, outfile):\n    pass\n";
        let funcs = scan_functions(src);
        let task = funcs[0].decorator_in(&["task"]).unwrap();
        assert_eq!(task.kwarg("outfile"), Some("FILE_OUT"));
        assert_eq!(task.kwarg("returns"), Some("1"));
        assert_eq!(task.kwarg("missing"), None);
    }

    #[test]
    fn dotted_decorators_and_defaults() {
        let src = "@parsl.python_app\ndef f(a=1, b=\"x\", *args, **kwargs):\n    pass\n";
        let funcs = scan_functions(src);
        assert_eq!(funcs[0].decorators[0].base_name(), "python_app");
        assert_eq!(funcs[0].params, vec!["a", "b", "args", "kwargs"]);
    }

    #[test]
    fn statements_between_decorator_and_def_reset_pending() {
        let src = "@python_app\nx = 1\ndef f(a):\n    pass\n";
        let funcs = scan_functions(src);
        assert!(funcs[0].decorators.is_empty());
    }

    #[test]
    fn scans_invocations_with_assignment_targets() {
        let src = "future = produce(n, iterations, 0, \"output.txt\")\nfuture.result()\nconsume(future)\n";
        let invocations = scan_invocations(src, &["produce", "consume"]);
        assert_eq!(invocations.len(), 2);
        assert_eq!(invocations[0].callee, "produce");
        assert_eq!(invocations[0].assigned_to.as_deref(), Some("future"));
        assert_eq!(invocations[0].args[3], "\"output.txt\"");
        assert_eq!(invocations[1].callee, "consume");
        assert_eq!(invocations[1].args, vec!["future"]);
        assert_eq!(invocations[1].assigned_to, None);
    }

    #[test]
    fn definition_lines_are_not_invocations() {
        let src = "def produce(n):\n    pass\n\nproduce(5)\n";
        let invocations = scan_invocations(src, &["produce"]);
        assert_eq!(invocations.len(), 1);
        assert_eq!(invocations[0].line, 4);
    }

    #[test]
    fn attribute_calls_are_not_invocations_of_the_bare_name() {
        let src = "module.produce(5)\n";
        assert!(scan_invocations(src, &["produce"]).is_empty());
    }

    #[test]
    fn string_literals_and_dataset_stems() {
        assert_eq!(string_literal("\"output.txt\""), Some("output.txt"));
        assert_eq!(string_literal("'grid.h5'"), Some("grid.h5"));
        assert_eq!(string_literal("future"), None);
        assert_eq!(string_literal("f(\"x\")"), None);
        assert_eq!(dataset_from_path("output.txt"), "output");
        assert_eq!(dataset_from_path("runs/grid.h5"), "grid");
        assert_eq!(dataset_from_path("plain"), "plain");
        assert_eq!(dataset_from_path(".hidden"), ".hidden");
    }

    #[test]
    fn parameter_directions() {
        assert_eq!(param_direction("outfile"), Some(DataRole::Produces));
        assert_eq!(param_direction("output_path"), Some(DataRole::Produces));
        assert_eq!(param_direction("infile"), Some(DataRole::Consumes));
        assert_eq!(param_direction("input_path"), Some(DataRole::Consumes));
        assert_eq!(param_direction("sleep_interval"), None);
        assert_eq!(param_direction("num_values"), None);
        assert_eq!(param_direction("delay"), None);
    }

    #[test]
    fn malformed_text_never_panics() {
        for src in [
            "@",
            "def (",
            "def f(((",
            "@x(((\ndef f(a:\n",
            "f(\"unclosed",
        ] {
            let _ = scan_functions(src);
            let _ = scan_invocations(src, &["f"]);
        }
    }
}
