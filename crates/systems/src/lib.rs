//! `wfspeak-systems` — from-scratch models of the five workflow systems the
//! paper evaluates LLMs against.
//!
//! The paper treats the real systems (ADIOS2, Henson, Parsl, PyCOMPSs,
//! Wilkins) as ground truth: a generated configuration or annotated task
//! code is good when it uses the fields and API calls those systems actually
//! define.  This crate reproduces exactly the part of each system the
//! benchmark needs:
//!
//! * an **API catalogue** ([`api::ApiCatalog`]) of real function names /
//!   decorators / configuration fields, used to classify hallucinations;
//! * a **configuration schema + validating parser** for the systems whose
//!   config files describe workflow structure (Wilkins YAML, ADIOS2 YAML,
//!   Henson scripts);
//! * a **reference generator** that produces the ground-truth artifact for a
//!   neutral [`spec::WorkflowSpec`];
//! * an **annotation checker** that verifies a task code contains the
//!   system's required calls;
//! * a rule-based **translator** between coupled system pairs
//!   (ADIOS2 ↔ Henson, Parsl ↔ PyCOMPSs).
//!
//! The [`WorkflowSystem`] trait ties these together so the evaluation
//! harness can treat all five systems uniformly.
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_systems::api::catalog_for;
//! use wfspeak_systems::WorkflowSystemId;
//!
//! let henson = catalog_for(WorkflowSystemId::Henson);
//! assert!(henson.is_real_function("henson_save_float"));
//! // In the Henson API family but not a real function: a hallucination.
//! assert!(henson.is_hallucinated("henson_save_matrix"));
//! ```

pub mod adios2;
pub mod annotate;
pub mod api;
pub mod artifact;
pub mod diagnostics;
pub mod henson;
pub mod parsl;
pub mod pycompss;
pub mod pyflow;
pub mod spec;
pub mod topo;
pub mod translate;
pub mod wilkins;

pub use api::ApiCatalog;
pub use artifact::workflow_spec_from_config;
pub use diagnostics::{Diagnostic, DiagnosticKind, Severity, ValidationReport};
pub use spec::{DataRequirement, DataRole, TaskSpec, WorkflowSpec};
pub use wfspeak_corpus::WorkflowSystemId;

/// Uniform interface over the five workflow-system models.
pub trait WorkflowSystem {
    /// Which system this is.
    fn id(&self) -> WorkflowSystemId;

    /// The system's API catalogue (calls, decorators, config fields).
    fn api(&self) -> &ApiCatalog;

    /// Validate a workflow configuration file for this system.  Systems
    /// whose configuration describes the execution environment rather than
    /// the workflow structure (Parsl, PyCOMPSs) report that as an
    /// informational diagnostic.
    fn validate_config(&self, config: &str) -> ValidationReport;

    /// Validate an annotated task code for this system (required calls
    /// present, no hallucinated API functions, no redundant boilerplate).
    fn validate_task_code(&self, code: &str) -> ValidationReport;

    /// Generate the reference configuration file for a workflow spec, if the
    /// system has a structural configuration file.
    fn generate_config(&self, spec: &WorkflowSpec) -> Option<String>;
}

/// Instantiate the model for a given system id.
pub fn system_for(id: WorkflowSystemId) -> Box<dyn WorkflowSystem + Send + Sync> {
    match id {
        WorkflowSystemId::Adios2 => Box::new(adios2::Adios2System::new()),
        WorkflowSystemId::Henson => Box::new(henson::HensonSystem::new()),
        WorkflowSystemId::Parsl => Box::new(parsl::ParslSystem::new()),
        WorkflowSystemId::PyCompss => Box::new(pycompss::PyCompssSystem::new()),
        WorkflowSystemId::Wilkins => Box::new(wilkins::WilkinsSystem::new()),
    }
}

/// All five system models.
pub fn all_systems() -> Vec<Box<dyn WorkflowSystem + Send + Sync>> {
    WorkflowSystemId::ALL
        .iter()
        .map(|id| system_for(*id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_for_returns_matching_ids() {
        for id in WorkflowSystemId::ALL {
            assert_eq!(system_for(id).id(), id);
        }
    }

    #[test]
    fn all_systems_has_five_entries() {
        assert_eq!(all_systems().len(), 5);
    }

    #[test]
    fn reference_configs_validate_cleanly() {
        use wfspeak_corpus::references::configuration_reference;
        for id in WorkflowSystemId::configuration_systems() {
            let system = system_for(id);
            let reference = configuration_reference(id).unwrap();
            let report = system.validate_config(reference);
            assert!(
                report.is_valid(),
                "{id} reference config should validate, got: {report:?}"
            );
        }
    }

    #[test]
    fn reference_annotations_validate_cleanly() {
        use wfspeak_corpus::references::annotation_reference;
        for id in WorkflowSystemId::annotation_systems() {
            let system = system_for(id);
            let reference = annotation_reference(id).unwrap();
            let report = system.validate_task_code(reference);
            assert!(
                report.is_valid(),
                "{id} reference annotation should validate, got: {report:?}"
            );
        }
    }

    #[test]
    fn generated_configs_match_generation_support() {
        let spec = WorkflowSpec::paper_3node();
        for id in WorkflowSystemId::ALL {
            let system = system_for(id);
            let config = system.generate_config(&spec);
            if WorkflowSystemId::configuration_systems().contains(&id) {
                assert!(config.is_some(), "{id} should generate a config");
            } else {
                assert!(config.is_none(), "{id} should not generate a config");
            }
        }
    }
}
