//! Rule-based annotation and translation between workflow systems.
//!
//! This module is the deterministic, non-LLM baseline: it strips one
//! system's API from a task code and re-annotates the remaining simulation
//! logic with another system's API, using structural anchors that the
//! benchmark's producer codes share (initialisation after `srand`/argument
//! parsing, publication after the reduction step, cleanup before
//! `MPI_Finalize` / end of `main`).  EXPERIMENTS.md uses it as an ablation
//! baseline against the simulated LLMs.

use wfspeak_corpus::WorkflowSystemId;

use crate::api::catalog_for;

/// Remove every line that belongs to `system`'s API family: includes /
/// imports, declarations of its handle types, and statements calling its
/// functions or decorators.
pub fn strip_annotations(code: &str, system: WorkflowSystemId) -> String {
    let catalog = catalog_for(system);
    let markers: Vec<String> = {
        let mut m: Vec<String> = catalog
            .prefixes
            .iter()
            .map(|p| p.trim_end_matches('_').to_string())
            .collect();
        match system {
            WorkflowSystemId::Adios2 => m.push("adios2".into()),
            WorkflowSystemId::Henson => m.push("henson".into()),
            WorkflowSystemId::Parsl => {
                m.extend(["parsl".into(), "python_app".into(), "bash_app".into()]);
            }
            WorkflowSystemId::PyCompss => {
                m.extend([
                    "pycompss".into(),
                    "compss_".into(),
                    "@task".into(),
                    "FILE_OUT".into(),
                ]);
            }
            WorkflowSystemId::Wilkins => m.push("wilkins".into()),
        }
        m
    };
    let mut out = String::new();
    let mut skip_decorator_block = false;
    for line in code.lines() {
        let lower = line.to_ascii_lowercase();
        let mentions_system = markers
            .iter()
            .any(|m| lower.contains(&m.to_ascii_lowercase()));
        if mentions_system {
            // Multi-line call statements: if the line opens a call that does
            // not close on the same line, skip until it does.
            let opens = line.matches('(').count();
            let closes = line.matches(')').count();
            skip_decorator_block = opens > closes;
            continue;
        }
        if skip_decorator_block {
            let opens = line.matches('(').count();
            let closes = line.matches(')').count();
            if closes > opens || (closes == opens && closes > 0) || line.trim().ends_with(");") {
                skip_decorator_block = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Annotate a (bare) producer task code with `system`'s API.  Returns `None`
/// for Wilkins, which needs no annotations.
pub fn annotate(code: &str, system: WorkflowSystemId) -> Option<String> {
    match system {
        WorkflowSystemId::Adios2 => Some(annotate_c(code, &Adios2Snippets)),
        WorkflowSystemId::Henson => Some(annotate_c(code, &HensonSnippets)),
        WorkflowSystemId::Parsl => Some(annotate_python_parsl(code)),
        WorkflowSystemId::PyCompss => Some(annotate_python_pycompss(code)),
        WorkflowSystemId::Wilkins => None,
    }
}

/// Translate annotated task code from one system to another by stripping the
/// source API and re-annotating with the target API.
pub fn translate(code: &str, source: WorkflowSystemId, target: WorkflowSystemId) -> Option<String> {
    let bare = strip_annotations(code, source);
    annotate(&bare, target)
}

/// Code snippets a C annotator inserts at each structural anchor.
trait CSnippets {
    fn includes(&self) -> &'static str;
    fn init(&self) -> &'static str;
    fn publish(&self) -> &'static str;
    fn finalize(&self) -> &'static str;
}

struct Adios2Snippets;

impl CSnippets for Adios2Snippets {
    fn includes(&self) -> &'static str {
        "#include <adios2_c.h>"
    }
    fn init(&self) -> &'static str {
        r#"    adios2_adios* adios = adios2_init_mpi(MPI_COMM_WORLD);
    adios2_io* io = adios2_declare_io(adios, "SimulationOutput");
    size_t shape[2] = {(size_t) size, n};
    size_t start[2] = {(size_t) rank, 0};
    size_t count[2] = {1, n};
    adios2_variable* var_array = adios2_define_variable(
        io, "array", adios2_type_float, 2, shape, start, count,
        adios2_constant_dims_true);
    adios2_variable* var_t = adios2_define_variable(
        io, "t", adios2_type_int32_t, 0, NULL, NULL, NULL,
        adios2_constant_dims_true);
    adios2_engine* engine = adios2_open(io, "output.bp", adios2_mode_write);"#
    }
    fn publish(&self) -> &'static str {
        r#"        adios2_step_status status;
        adios2_begin_step(engine, adios2_step_mode_append, -1.0, &status);
        adios2_put(engine, var_array, array, adios2_mode_deferred);
        adios2_put(engine, var_t, &t, adios2_mode_deferred);
        adios2_end_step(engine);"#
    }
    fn finalize(&self) -> &'static str {
        r#"    adios2_close(engine);
    adios2_finalize(adios);"#
    }
}

struct HensonSnippets;

impl CSnippets for HensonSnippets {
    fn includes(&self) -> &'static str {
        "#include <henson/data.h>\n#include <henson/context.h>"
    }
    fn init(&self) -> &'static str {
        ""
    }
    fn publish(&self) -> &'static str {
        r#"        henson_save_array("array", array, sizeof(float), n, sizeof(float));
        henson_save_int("t", t);
        henson_yield();"#
    }
    fn finalize(&self) -> &'static str {
        ""
    }
}

/// Insert C snippets at the producer's structural anchors.
fn annotate_c(code: &str, snippets: &dyn CSnippets) -> String {
    let lines: Vec<&str> = code.lines().collect();
    let mut out: Vec<String> = Vec::with_capacity(lines.len() + 16);

    // Anchor detection.
    let last_include = lines
        .iter()
        .rposition(|l| l.trim_start().starts_with("#include"));
    let srand_line = lines.iter().position(|l| l.contains("srand("));
    let publish_anchor = lines
        .iter()
        .position(|l| l.contains("free(array)"))
        .or_else(|| lines.iter().position(|l| l.contains("total_sum = %f")));
    let finalize_anchor = lines.iter().position(|l| l.contains("MPI_Finalize"));

    for (i, line) in lines.iter().enumerate() {
        if Some(i) == publish_anchor && !snippets.publish().is_empty() {
            out.push(snippets.publish().to_owned());
            if !line.contains("free(array)") {
                // Anchored on the print instead; emit it before the snippet.
                out.pop();
                out.push((*line).to_owned());
                out.push(String::new());
                out.push(snippets.publish().to_owned());
                continue;
            }
        }
        if Some(i) == finalize_anchor && !snippets.finalize().is_empty() {
            out.push(snippets.finalize().to_owned());
            out.push(String::new());
        }
        out.push((*line).to_owned());
        if Some(i) == last_include {
            out.push(snippets.includes().to_owned());
        }
        if Some(i) == srand_line && !snippets.init().is_empty() {
            out.push(String::new());
            out.push(snippets.init().to_owned());
        }
    }
    let mut text = out.join("\n");
    if !text.ends_with('\n') {
        text.push('\n');
    }
    text
}

/// Annotate the Python producer as a Parsl app.
fn annotate_python_parsl(code: &str) -> String {
    let mut out = String::new();
    let mut inserted_imports = false;
    let mut in_main = false;
    for line in code.lines() {
        let trimmed = line.trim_start();
        if !inserted_imports && trimmed.starts_with("def ") {
            out.push_str("import parsl\nfrom parsl import python_app\n\n\n");
            inserted_imports = true;
        }
        if trimmed.starts_with("def produce(") {
            out.push_str("@python_app\n");
        }
        if trimmed.starts_with("def main(") {
            in_main = true;
        }
        if in_main && (trimmed.starts_with("produce(") || trimmed.contains("= produce(")) {
            let indent = &line[..line.len() - trimmed.len()];
            out.push_str(&format!("{indent}parsl.load()\n\n"));
            let call = trimmed.trim_start_matches(|c: char| c != 'p').trim_end();
            out.push_str(&format!("{indent}future = {call}\n"));
            out.push_str(&format!("{indent}future.result()\n"));
            in_main = false;
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    if !inserted_imports {
        out = format!("import parsl\nfrom parsl import python_app\n\n{out}");
    }
    out
}

/// Annotate the Python producer as a PyCOMPSs task.
fn annotate_python_pycompss(code: &str) -> String {
    let mut out = String::new();
    let mut inserted_imports = false;
    let mut in_main = false;
    for line in code.lines() {
        let trimmed = line.trim_start();
        if !inserted_imports && trimmed.starts_with("def ") {
            out.push_str(
                "from pycompss.api.task import task\nfrom pycompss.api.parameter import FILE_OUT\nfrom pycompss.api.api import compss_wait_on_file\n\n\n",
            );
            inserted_imports = true;
        }
        if trimmed.starts_with("def produce(") {
            out.push_str("@task(outfile=FILE_OUT)\n");
        }
        if trimmed.starts_with("def main(") {
            in_main = true;
        }
        if in_main && (trimmed.starts_with("produce(") || trimmed.contains("= produce(")) {
            let indent = &line[..line.len() - trimmed.len()];
            let call = trimmed.trim_end();
            let call = call.strip_prefix("future = ").unwrap_or(call);
            out.push_str(&format!("{indent}{call}\n"));
            out.push_str(&format!("{indent}compss_wait_on_file(\"output.txt\")\n"));
            in_main = false;
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    if !inserted_imports {
        out = format!(
            "from pycompss.api.task import task\nfrom pycompss.api.api import compss_wait_on_file\n\n{out}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system_for;
    use wfspeak_codemodel::calls::call_names;
    use wfspeak_codemodel::lexer::Language;
    use wfspeak_corpus::references::annotated;
    use wfspeak_corpus::task_codes;

    #[test]
    fn strip_removes_all_henson_calls_but_keeps_simulation() {
        let bare = strip_annotations(annotated::HENSON_PRODUCER, WorkflowSystemId::Henson);
        assert!(!bare.contains("henson"));
        assert!(bare.contains("MPI_Reduce"));
        assert!(bare.contains("free(array)"));
    }

    #[test]
    fn strip_removes_multiline_adios2_statements() {
        let bare = strip_annotations(annotated::ADIOS2_PRODUCER, WorkflowSystemId::Adios2);
        assert!(!bare.contains("adios2"), "left over: {bare}");
        assert!(bare.contains("MPI_Init"));
    }

    #[test]
    fn annotate_bare_c_producer_for_henson_validates() {
        let annotated_code = annotate(task_codes::C_PRODUCER, WorkflowSystemId::Henson).unwrap();
        let report = system_for(WorkflowSystemId::Henson).validate_task_code(&annotated_code);
        assert!(report.is_valid(), "{report}\n{annotated_code}");
    }

    #[test]
    fn annotate_bare_c_producer_for_adios2_validates() {
        let annotated_code = annotate(task_codes::C_PRODUCER, WorkflowSystemId::Adios2).unwrap();
        let report = system_for(WorkflowSystemId::Adios2).validate_task_code(&annotated_code);
        assert!(report.is_valid(), "{report}\n{annotated_code}");
    }

    #[test]
    fn annotate_bare_python_producer_for_parsl_validates() {
        let annotated_code = annotate(task_codes::PY_PRODUCER, WorkflowSystemId::Parsl).unwrap();
        let report = system_for(WorkflowSystemId::Parsl).validate_task_code(&annotated_code);
        assert!(report.is_valid(), "{report}\n{annotated_code}");
    }

    #[test]
    fn annotate_bare_python_producer_for_pycompss_validates() {
        let annotated_code = annotate(task_codes::PY_PRODUCER, WorkflowSystemId::PyCompss).unwrap();
        let report = system_for(WorkflowSystemId::PyCompss).validate_task_code(&annotated_code);
        assert!(report.is_valid(), "{report}\n{annotated_code}");
    }

    #[test]
    fn wilkins_needs_no_annotation() {
        assert!(annotate(task_codes::C_PRODUCER, WorkflowSystemId::Wilkins).is_none());
    }

    #[test]
    fn translate_adios2_to_henson_validates_and_drops_adios2() {
        let translated = translate(
            annotated::ADIOS2_PRODUCER,
            WorkflowSystemId::Adios2,
            WorkflowSystemId::Henson,
        )
        .unwrap();
        assert!(!translated.contains("adios2"));
        let names = call_names(&translated, Language::C);
        assert!(names.contains(&"henson_save_int".to_string()));
        assert!(names.contains(&"henson_yield".to_string()));
        let report = system_for(WorkflowSystemId::Henson).validate_task_code(&translated);
        assert!(report.is_valid(), "{report}\n{translated}");
    }

    #[test]
    fn translate_henson_to_adios2_validates() {
        let translated = translate(
            annotated::HENSON_PRODUCER,
            WorkflowSystemId::Henson,
            WorkflowSystemId::Adios2,
        )
        .unwrap();
        assert!(!translated.contains("henson"));
        let report = system_for(WorkflowSystemId::Adios2).validate_task_code(&translated);
        assert!(report.is_valid(), "{report}\n{translated}");
    }

    #[test]
    fn translate_parsl_to_pycompss_validates() {
        let translated = translate(
            annotated::PARSL_PRODUCER,
            WorkflowSystemId::Parsl,
            WorkflowSystemId::PyCompss,
        )
        .unwrap();
        assert!(!translated.contains("parsl"));
        let report = system_for(WorkflowSystemId::PyCompss).validate_task_code(&translated);
        assert!(report.is_valid(), "{report}\n{translated}");
    }

    #[test]
    fn translate_pycompss_to_parsl_validates() {
        let translated = translate(
            annotated::PYCOMPSS_PRODUCER,
            WorkflowSystemId::PyCompss,
            WorkflowSystemId::Parsl,
        )
        .unwrap();
        assert!(!translated.contains("compss"));
        let report = system_for(WorkflowSystemId::Parsl).validate_task_code(&translated);
        assert!(report.is_valid(), "{report}\n{translated}");
    }

    #[test]
    fn translation_keeps_simulation_logic() {
        let translated = translate(
            annotated::ADIOS2_PRODUCER,
            WorkflowSystemId::Adios2,
            WorkflowSystemId::Henson,
        )
        .unwrap();
        assert!(translated.contains("MPI_Reduce"));
        assert!(translated.contains("total_sum"));
        assert!(translated.contains("rand()"));
    }
}
