//! Wilkins: in situ workflow system with a data-centric YAML configuration.
//!
//! Wilkins workflows are described entirely in a YAML file: a `tasks` list
//! where each task has a `func`, `nprocs`, and `inports`/`outports` carrying
//! `filename` + `dsets` entries (`name`, `file`, `memory`).  Task codes need
//! no modification, which is why Wilkins is excluded from the annotation
//! experiment.

use wfspeak_corpus::WorkflowSystemId;
use wfspeak_wyaml::{parse as yaml_parse, Value};

use crate::api::{catalog_for, ApiCatalog};
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::spec::{DataRole, TaskSpec, WorkflowSpec};
use crate::WorkflowSystem;

/// One dataset entry under an inport/outport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WilkinsDset {
    /// Full dataset path (e.g. `/group1/grid`).
    pub name: String,
    /// Whether the dataset is also written to file (0/1).
    pub file: bool,
    /// Whether the dataset is exchanged in memory (0/1).
    pub memory: bool,
}

/// An inport or outport: a backing file plus its datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WilkinsPort {
    /// Backing filename (e.g. `outfile.h5`).
    pub filename: String,
    /// Datasets carried over this port.
    pub dsets: Vec<WilkinsDset>,
}

/// One task in a Wilkins configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WilkinsTask {
    /// Task function name.
    pub func: String,
    /// Number of MPI processes.
    pub nprocs: usize,
    /// Input ports.
    pub inports: Vec<WilkinsPort>,
    /// Output ports.
    pub outports: Vec<WilkinsPort>,
}

/// A parsed Wilkins workflow configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WilkinsConfig {
    /// Tasks in file order.
    pub tasks: Vec<WilkinsTask>,
}

impl WilkinsConfig {
    /// Parse a Wilkins YAML configuration, reporting schema violations.
    ///
    /// Parsing is tolerant: unknown fields are reported as diagnostics (the
    /// hallucination signal of Table 6) but do not abort parsing, so the
    /// valid part of a partially wrong configuration can still be inspected.
    pub fn parse(source: &str) -> (Option<WilkinsConfig>, ValidationReport) {
        let mut report = ValidationReport::valid();
        let doc = match yaml_parse(source) {
            Ok(doc) => doc,
            Err(e) => {
                report.push(
                    Diagnostic::error(
                        DiagnosticKind::from_yaml_error(e.kind),
                        format!("{}: {}", e.kind, e.message),
                    )
                    .at_position(e.line(), Some(e.column())),
                );
                return (None, report);
            }
        };
        let catalog = catalog_for(WorkflowSystemId::Wilkins);

        let root = match doc.as_map() {
            Some(m) => m,
            None => {
                report.push(Diagnostic::error(
                    DiagnosticKind::Schema,
                    format!(
                        "expected a mapping with a `tasks` key, found {}",
                        doc.type_name()
                    ),
                ));
                return (None, report);
            }
        };
        for (key, _) in root.iter() {
            if key != "tasks" {
                let kind = if catalog.is_real_config_field(key) {
                    DiagnosticKind::MisplacedField
                } else {
                    DiagnosticKind::UnknownField
                };
                report.push(Diagnostic::error(
                    kind,
                    format!("top-level field `{key}` is not part of a Wilkins configuration"),
                ));
            }
        }
        let tasks_value = match root.get("tasks") {
            Some(v) => v,
            None => {
                report.push(Diagnostic::error(
                    DiagnosticKind::Schema,
                    "missing top-level `tasks` list",
                ));
                return (None, report);
            }
        };
        let task_list = match tasks_value.as_seq() {
            Some(s) => s,
            None => {
                report.push(Diagnostic::error(
                    DiagnosticKind::Schema,
                    "`tasks` must be a sequence",
                ));
                return (None, report);
            }
        };

        let mut tasks = Vec::new();
        for (idx, entry) in task_list.iter().enumerate() {
            match parse_task(entry, idx, &catalog, &mut report) {
                Some(task) => tasks.push(task),
                None => continue,
            }
        }
        if tasks.is_empty() {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                "configuration defines no valid tasks",
            ));
            return (None, report);
        }
        (Some(WilkinsConfig { tasks }), report)
    }

    /// Render the configuration in the canonical reference layout.
    pub fn render(&self) -> String {
        let mut out = String::from("tasks:\n");
        for task in &self.tasks {
            out.push_str(&format!("  - func: {}\n", task.func));
            out.push_str(&format!("    nprocs: {}\n", task.nprocs));
            for (label, ports) in [("outports", &task.outports), ("inports", &task.inports)] {
                if ports.is_empty() {
                    continue;
                }
                out.push_str(&format!("    {label}:\n"));
                for port in ports {
                    out.push_str(&format!("      - filename: {}\n", port.filename));
                    out.push_str("        dsets:\n");
                    for dset in &port.dsets {
                        out.push_str(&format!("          - name: {}\n", dset.name));
                        out.push_str(&format!("            file: {}\n", u8::from(dset.file)));
                        out.push_str(&format!("            memory: {}\n", u8::from(dset.memory)));
                    }
                }
            }
        }
        out
    }

    /// Convert to the neutral workflow specification (for the runtime).
    pub fn to_spec(&self, name: &str) -> WorkflowSpec {
        let mut spec = WorkflowSpec::new(name);
        for task in &self.tasks {
            let mut t = TaskSpec::new(&task.func, task.nprocs);
            for port in &task.outports {
                for dset in &port.dsets {
                    let mut req = crate::spec::DataRequirement::new(
                        dset.name.rsplit('/').next().unwrap_or(&dset.name),
                        DataRole::Produces,
                    );
                    req.filename = port.filename.clone();
                    req.group_path = dset.name.clone();
                    t.data.push(req);
                }
            }
            for port in &task.inports {
                for dset in &port.dsets {
                    let mut req = crate::spec::DataRequirement::new(
                        dset.name.rsplit('/').next().unwrap_or(&dset.name),
                        DataRole::Consumes,
                    );
                    req.filename = port.filename.clone();
                    req.group_path = dset.name.clone();
                    t.data.push(req);
                }
            }
            spec.tasks.push(t);
        }
        spec
    }

    /// Build the canonical configuration for a neutral workflow spec.
    pub fn from_spec(spec: &WorkflowSpec) -> WilkinsConfig {
        let tasks = spec
            .tasks
            .iter()
            .map(|task| {
                let mut outports: Vec<WilkinsPort> = Vec::new();
                let mut inports: Vec<WilkinsPort> = Vec::new();
                for req in &task.data {
                    let target = match req.role {
                        DataRole::Produces => &mut outports,
                        DataRole::Consumes => &mut inports,
                    };
                    let dset = WilkinsDset {
                        name: req.group_path.clone(),
                        file: false,
                        memory: true,
                    };
                    if let Some(port) = target.iter_mut().find(|p| p.filename == req.filename) {
                        port.dsets.push(dset);
                    } else {
                        target.push(WilkinsPort {
                            filename: req.filename.clone(),
                            dsets: vec![dset],
                        });
                    }
                }
                WilkinsTask {
                    func: task.name.clone(),
                    nprocs: task.nprocs,
                    inports,
                    outports,
                }
            })
            .collect();
        WilkinsConfig { tasks }
    }
}

fn parse_bool_flag(value: &Value) -> Option<bool> {
    match value {
        Value::Int(0) => Some(false),
        Value::Int(1) => Some(true),
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn parse_task(
    entry: &Value,
    idx: usize,
    catalog: &ApiCatalog,
    report: &mut ValidationReport,
) -> Option<WilkinsTask> {
    let map = match entry.as_map() {
        Some(m) => m,
        None => {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                format!("task #{idx} must be a mapping, found {}", entry.type_name()),
            ));
            return None;
        }
    };
    let mut func = None;
    let mut nprocs = 1usize;
    let mut inports = Vec::new();
    let mut outports = Vec::new();
    for (key, value) in map.iter() {
        match key.as_str() {
            "func" => func = value.as_str().map(str::to_owned),
            "nprocs" => match value.as_i64() {
                Some(n) if n > 0 => nprocs = n as usize,
                _ => report.push(Diagnostic::error(
                    DiagnosticKind::Schema,
                    format!("task #{idx}: `nprocs` must be a positive integer"),
                )),
            },
            "inports" => inports = parse_ports(value, idx, "inports", catalog, report),
            "outports" => outports = parse_ports(value, idx, "outports", catalog, report),
            // Optional real Wilkins fields we accept without interpreting.
            "io_freq" | "zerocopy" | "actions" => {}
            other => {
                report.push(Diagnostic::error(
                    DiagnosticKind::UnknownField,
                    format!("task #{idx}: field `{other}` does not exist in Wilkins task entries"),
                ));
            }
        }
    }
    let func = match func {
        Some(f) => f,
        None => {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                format!("task #{idx} is missing the required `func` field"),
            ));
            return None;
        }
    };
    Some(WilkinsTask {
        func,
        nprocs,
        inports,
        outports,
    })
}

fn parse_ports(
    value: &Value,
    task_idx: usize,
    label: &str,
    catalog: &ApiCatalog,
    report: &mut ValidationReport,
) -> Vec<WilkinsPort> {
    let seq = match value.as_seq() {
        Some(s) => s,
        None => {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                format!("task #{task_idx}: `{label}` must be a sequence"),
            ));
            return Vec::new();
        }
    };
    let mut ports = Vec::new();
    for port_value in seq {
        let map = match port_value.as_map() {
            Some(m) => m,
            None => {
                report.push(Diagnostic::error(
                    DiagnosticKind::Schema,
                    format!("task #{task_idx}: `{label}` entries must be mappings"),
                ));
                continue;
            }
        };
        let mut filename = String::new();
        let mut dsets = Vec::new();
        for (key, v) in map.iter() {
            match key.as_str() {
                "filename" => filename = v.as_str().unwrap_or_default().to_owned(),
                "dsets" => {
                    if let Some(list) = v.as_seq() {
                        for d in list {
                            if let Some(dm) = d.as_map() {
                                let mut dset = WilkinsDset {
                                    name: String::new(),
                                    file: false,
                                    memory: true,
                                };
                                for (dk, dv) in dm.iter() {
                                    match dk.as_str() {
                                        "name" => {
                                            dset.name = dv.as_str().unwrap_or_default().to_owned()
                                        }
                                        "file" => {
                                            dset.file = parse_bool_flag(dv).unwrap_or(false)
                                        }
                                        "memory" => {
                                            dset.memory = parse_bool_flag(dv).unwrap_or(true)
                                        }
                                        other => report.push(Diagnostic::error(DiagnosticKind::UnknownField, format!(
                                                "task #{task_idx}: dset field `{other}` does not exist in Wilkins"
                                            ),
                                        )),
                                    }
                                }
                                if dset.name.is_empty() {
                                    report.push(Diagnostic::error(
                                        DiagnosticKind::Schema,
                                        format!("task #{task_idx}: dset entry missing `name`"),
                                    ));
                                } else {
                                    dsets.push(dset);
                                }
                            }
                        }
                    } else {
                        report.push(Diagnostic::error(
                            DiagnosticKind::Schema,
                            format!("task #{task_idx}: `dsets` must be a sequence"),
                        ));
                    }
                }
                other => {
                    let kind = if catalog.is_real_config_field(other) {
                        DiagnosticKind::MisplacedField
                    } else {
                        DiagnosticKind::UnknownField
                    };
                    report.push(Diagnostic::error(
                        kind,
                        format!(
                            "task #{task_idx}: port field `{other}` does not belong in `{label}`"
                        ),
                    ));
                }
            }
        }
        if filename.is_empty() {
            report.push(Diagnostic::warning(
                DiagnosticKind::Schema,
                format!("task #{task_idx}: `{label}` entry has no `filename`"),
            ));
        }
        ports.push(WilkinsPort { filename, dsets });
    }
    ports
}

/// The Wilkins system model.
#[derive(Debug)]
pub struct WilkinsSystem {
    api: ApiCatalog,
}

impl WilkinsSystem {
    /// Create the model.
    pub fn new() -> Self {
        WilkinsSystem {
            api: catalog_for(WorkflowSystemId::Wilkins),
        }
    }
}

impl Default for WilkinsSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowSystem for WilkinsSystem {
    fn id(&self) -> WorkflowSystemId {
        WorkflowSystemId::Wilkins
    }

    fn api(&self) -> &ApiCatalog {
        &self.api
    }

    fn validate_config(&self, config: &str) -> ValidationReport {
        let (_, report) = WilkinsConfig::parse(config);
        report
    }

    fn validate_task_code(&self, _code: &str) -> ValidationReport {
        let mut report = ValidationReport::valid();
        report.push(Diagnostic::info(
            DiagnosticKind::NoAnnotationNeeded,
            "Wilkins does not require modifications to task codes",
        ));
        report
    }

    fn generate_config(&self, spec: &WorkflowSpec) -> Option<String> {
        Some(WilkinsConfig::from_spec(spec).render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::configs::{WILKINS_2NODE, WILKINS_3NODE};

    #[test]
    fn parses_reference_3node_config() {
        let (config, report) = WilkinsConfig::parse(WILKINS_3NODE);
        assert!(report.is_valid(), "{report}");
        let config = config.unwrap();
        assert_eq!(config.tasks.len(), 3);
        assert_eq!(config.tasks[0].func, "producer");
        assert_eq!(config.tasks[0].nprocs, 3);
        assert_eq!(config.tasks[0].outports[0].dsets.len(), 2);
        assert_eq!(config.tasks[1].inports[0].dsets[0].name, "/group1/grid");
        assert!(config.tasks[1].inports[0].dsets[0].memory);
        assert!(!config.tasks[1].inports[0].dsets[0].file);
    }

    #[test]
    fn render_round_trips_reference_exactly() {
        let (config, _) = WilkinsConfig::parse(WILKINS_3NODE);
        assert_eq!(config.unwrap().render(), WILKINS_3NODE);
        let (config2, _) = WilkinsConfig::parse(WILKINS_2NODE);
        assert_eq!(config2.unwrap().render(), WILKINS_2NODE);
    }

    #[test]
    fn generated_config_matches_reference() {
        let system = WilkinsSystem::new();
        let generated = system
            .generate_config(&WorkflowSpec::paper_3node())
            .unwrap();
        assert_eq!(generated, WILKINS_3NODE);
        let generated2 = system
            .generate_config(&WorkflowSpec::fewshot_2node())
            .unwrap();
        assert_eq!(generated2, WILKINS_2NODE);
    }

    #[test]
    fn hallucinated_fields_from_table6_are_flagged() {
        // The zero-shot o3 output in Table 6 (right): workflow/datasets/
        // command/processes/inputs/outputs/dependencies are not Wilkins
        // fields.
        let bad = r#"workflow:
  name: simple_3node_workflow
  tasks:
    - func: producer
      command: ./producer
      processes: 3
      outputs:
        - grid
"#;
        let (_, report) = WilkinsConfig::parse(bad);
        assert!(!report.is_valid());
        assert!(report.has_code("unknown-field") || report.has_code("schema"));
    }

    #[test]
    fn unknown_task_field_reported() {
        let cfg = "tasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n";
        let (config, report) = WilkinsConfig::parse(cfg);
        assert!(config.is_some());
        assert!(report.has_code("unknown-field"));
        assert!(!report.is_valid());
    }

    #[test]
    fn missing_func_is_an_error() {
        let cfg = "tasks:\n  - nprocs: 2\n";
        let (config, report) = WilkinsConfig::parse(cfg);
        assert!(config.is_none());
        assert!(report.has_code("schema"));
    }

    #[test]
    fn invalid_yaml_is_a_typed_parse_error() {
        let (config, report) = WilkinsConfig::parse("tasks:\n\t- func: x\n");
        assert!(config.is_none());
        // A tab in indentation surfaces as its own failure category, with
        // the real source position of the tab.
        assert!(report.has_code("tab-indent"));
        let diag = report.with_code("tab-indent").next().unwrap();
        assert_eq!(diag.line, Some(2));
        assert_eq!(diag.column, Some(1));
        // Duplicate keys and unterminated flow collections are categorised
        // too, rather than folded into a flat parse-error bucket.
        let (_, report) = WilkinsConfig::parse("tasks: 1\ntasks: 2\n");
        assert!(report.has_code("duplicate-key"));
        let (_, report) = WilkinsConfig::parse("tasks: [1, 2\n");
        assert!(report.has_code("unterminated-flow"));
    }

    #[test]
    fn non_mapping_root_is_schema_error() {
        let (config, report) = WilkinsConfig::parse("- just\n- a\n- list\n");
        assert!(config.is_none());
        assert!(report.has_code("schema"));
    }

    #[test]
    fn to_spec_reconstructs_graph() {
        let (config, _) = WilkinsConfig::parse(WILKINS_3NODE);
        let spec = config.unwrap().to_spec("w");
        assert_eq!(spec.tasks.len(), 3);
        assert_eq!(spec.edges().len(), 2);
        assert!(spec.validate().is_empty());
        assert_eq!(
            spec.task("producer").unwrap().produced_datasets(),
            vec!["grid", "particles"]
        );
    }

    #[test]
    fn nprocs_zero_rejected() {
        let cfg = "tasks:\n  - func: p\n    nprocs: 0\n";
        let (_, report) = WilkinsConfig::parse(cfg);
        assert!(!report.is_valid());
    }

    #[test]
    fn validate_task_code_reports_no_changes_needed() {
        let system = WilkinsSystem::new();
        let report = system.validate_task_code("int main() { return 0; }");
        assert!(report.is_valid());
        assert!(report.has_code("no-annotation-needed"));
    }
}
