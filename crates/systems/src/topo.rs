//! Deterministic synthetic workflow topologies for scale testing.
//!
//! The paper's workflows stop at three nodes; the runtime experiments need
//! graphs orders of magnitude larger to say anything about engine scaling.
//! This module generates [`WorkflowSpec`]s of classic dataflow shapes —
//! wide fan-out, deep chains, diamond fan-in, seeded random DAGs — at any
//! task count, plus deliberately-cyclic negatives for exercising the
//! validator.  Generation is a pure function of [`TopoSpec`]: the same
//! shape/size/seed always yields byte-identical specs, which is what lets
//! the scaling benchmark publish determinism checksums and the property
//! tests shrink failures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{TaskSpec, WorkflowSpec};

/// The generated graph shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TopoShape {
    /// One producer feeding `n - 1` independent single-dataset consumers.
    FanOut,
    /// A linear pipeline: every interior task relays its predecessor's
    /// dataset into a fresh one.
    Chain,
    /// Fan-out then fan-in: a source feeds `n - 2` relays that all feed one
    /// sink.
    Diamond,
    /// A seeded random DAG: task `i` consumes 1–3 datasets produced by
    /// earlier tasks, acyclic by construction.
    Random,
    /// A ring — every task consumes its predecessor's dataset, including
    /// the first.  Always rejected by validation with a cycle diagnostic.
    Cyclic,
}

impl TopoShape {
    /// All shapes, acyclic ones first.
    pub const ALL: [TopoShape; 5] = [
        TopoShape::FanOut,
        TopoShape::Chain,
        TopoShape::Diamond,
        TopoShape::Random,
        TopoShape::Cyclic,
    ];

    /// The four shapes that generate valid DAGs.
    pub const ACYCLIC: [TopoShape; 4] = [
        TopoShape::FanOut,
        TopoShape::Chain,
        TopoShape::Diamond,
        TopoShape::Random,
    ];

    /// Stable label used in benchmark reports and test names.
    pub fn label(&self) -> &'static str {
        match self {
            TopoShape::FanOut => "fan-out",
            TopoShape::Chain => "chain",
            TopoShape::Diamond => "diamond",
            TopoShape::Random => "random",
            TopoShape::Cyclic => "cyclic",
        }
    }

    /// Whether this shape generates a DAG (true) or a deliberate cycle.
    pub fn is_acyclic(&self) -> bool {
        !matches!(self, TopoShape::Cyclic)
    }

    /// The smallest task count at which the shape is well-formed.
    pub fn min_tasks(&self) -> usize {
        match self {
            TopoShape::Diamond => 3,
            _ => 2,
        }
    }
}

impl std::fmt::Display for TopoShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A generator specification: shape, task count and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TopoSpec {
    /// Graph shape to generate.
    pub shape: TopoShape,
    /// Total number of tasks (clamped up to [`TopoShape::min_tasks`]).
    pub tasks: usize,
    /// Seed for the shapes that randomise (only [`TopoShape::Random`] uses
    /// it, but it participates in every spec's identity).
    pub seed: u64,
}

/// Task counts the scaling benchmark sweeps.
pub const BENCH_SIZES: [usize; 3] = [10, 100, 1000];

impl TopoSpec {
    /// Create a generator spec, clamping `tasks` to the shape's minimum.
    pub fn new(shape: TopoShape, tasks: usize, seed: u64) -> Self {
        TopoSpec {
            shape,
            tasks: tasks.max(shape.min_tasks()),
            seed,
        }
    }

    /// Stable name, e.g. `topo-fan-out-100`.
    pub fn name(&self) -> String {
        format!("topo-{}-{}", self.shape.label(), self.tasks)
    }

    /// Generate the workflow spec.  Pure: identical inputs yield identical
    /// specs.
    pub fn generate(&self) -> WorkflowSpec {
        let n = self.tasks;
        let mut spec = WorkflowSpec::new(&self.name());
        match self.shape {
            TopoShape::FanOut => {
                let mut source = TaskSpec::new(&task_name(0), 1);
                for i in 1..n {
                    source = source.produces(&dataset_name(i - 1));
                }
                spec.tasks.push(source);
                for i in 1..n {
                    spec.tasks
                        .push(TaskSpec::new(&task_name(i), 1).consumes(&dataset_name(i - 1)));
                }
            }
            TopoShape::Chain => {
                spec.tasks
                    .push(TaskSpec::new(&task_name(0), 1).produces(&dataset_name(0)));
                for i in 1..n - 1 {
                    spec.tasks.push(
                        TaskSpec::new(&task_name(i), 1)
                            .consumes(&dataset_name(i - 1))
                            .produces(&dataset_name(i)),
                    );
                }
                spec.tasks
                    .push(TaskSpec::new(&task_name(n - 1), 1).consumes(&dataset_name(n - 2)));
            }
            TopoShape::Diamond => {
                // One source dataset consumed by every relay; every relay's
                // output consumed by the sink.
                spec.tasks
                    .push(TaskSpec::new(&task_name(0), 1).produces("seed"));
                let mut sink = TaskSpec::new(&task_name(n - 1), 1);
                for i in 1..n - 1 {
                    spec.tasks.push(
                        TaskSpec::new(&task_name(i), 1)
                            .consumes("seed")
                            .produces(&dataset_name(i)),
                    );
                    sink = sink.consumes(&dataset_name(i));
                }
                spec.tasks.push(sink);
            }
            TopoShape::Random => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                spec.tasks
                    .push(TaskSpec::new(&task_name(0), 1).produces(&dataset_name(0)));
                for i in 1..n {
                    let mut task = TaskSpec::new(&task_name(i), 1);
                    // Consume 1..=3 distinct datasets produced by earlier
                    // tasks: acyclic by construction.
                    let fanin = 1 + rng.gen_range(0..3.min(i));
                    let mut picked = std::collections::BTreeSet::new();
                    while picked.len() < fanin {
                        picked.insert(rng.gen_range(0..i));
                    }
                    for j in picked {
                        task = task.consumes(&dataset_name(j));
                    }
                    if i < n - 1 {
                        task = task.produces(&dataset_name(i));
                    }
                    spec.tasks.push(task);
                }
            }
            TopoShape::Cyclic => {
                // A ring: task i consumes dataset (i - 1) mod n and produces
                // dataset i, so validation must report a cycle.
                for i in 0..n {
                    spec.tasks.push(
                        TaskSpec::new(&task_name(i), 1)
                            .consumes(&dataset_name((i + n - 1) % n))
                            .produces(&dataset_name(i)),
                    );
                }
            }
        }
        spec
    }
}

fn task_name(i: usize) -> String {
    format!("t{i:04}")
}

fn dataset_name(i: usize) -> String {
    format!("d{i:04}")
}

/// The generator specs the scaling benchmark sweeps: every acyclic shape at
/// every [`BENCH_SIZES`] tier, all under one seed.
pub fn bench_suite(seed: u64) -> Vec<TopoSpec> {
    let mut suite = Vec::new();
    for &tasks in &BENCH_SIZES {
        for shape in TopoShape::ACYCLIC {
            suite.push(TopoSpec::new(shape, tasks, seed));
        }
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::DiagnosticKind;

    #[test]
    fn generation_is_deterministic() {
        for shape in TopoShape::ALL {
            let a = TopoSpec::new(shape, 100, 7).generate();
            let b = TopoSpec::new(shape, 100, 7).generate();
            assert_eq!(a, b, "{shape} not deterministic");
        }
        let a = TopoSpec::new(TopoShape::Random, 100, 7).generate();
        let c = TopoSpec::new(TopoShape::Random, 100, 8).generate();
        assert_ne!(a, c, "random shape ignores its seed");
    }

    #[test]
    fn acyclic_shapes_validate_without_errors() {
        for shape in TopoShape::ACYCLIC {
            for tasks in [2, 3, 10, 100] {
                let spec = TopoSpec::new(shape, tasks, 42).generate();
                assert!(
                    spec.is_structurally_valid(),
                    "{shape} at {tasks}: {:?}",
                    spec.validate()
                );
            }
        }
    }

    #[test]
    fn cyclic_shape_always_reports_a_cycle() {
        for tasks in [2, 3, 10, 100] {
            let spec = TopoSpec::new(TopoShape::Cyclic, tasks, 42).generate();
            assert!(!spec.is_structurally_valid());
            let diags = spec.validate();
            assert!(
                diags.iter().any(|d| d.kind == DiagnosticKind::Cycle),
                "{diags:?}"
            );
        }
    }

    #[test]
    fn shapes_have_the_announced_structure() {
        let fan = TopoSpec::new(TopoShape::FanOut, 10, 1).generate();
        assert_eq!(fan.tasks.len(), 10);
        assert_eq!(fan.tasks[0].data.len(), 9);
        assert_eq!(fan.edges().len(), 9);

        let chain = TopoSpec::new(TopoShape::Chain, 10, 1).generate();
        assert_eq!(chain.edges().len(), 9);
        assert_eq!(chain.datasets().len(), 9);

        let diamond = TopoSpec::new(TopoShape::Diamond, 10, 1).generate();
        // source -> 8 relays -> sink: 8 seed edges + 8 sink edges.
        assert_eq!(diamond.edges().len(), 16);

        let random = TopoSpec::new(TopoShape::Random, 50, 9).generate();
        assert_eq!(random.tasks.len(), 50);
        assert!(random.edges().len() >= 49);
    }

    #[test]
    fn task_counts_are_clamped_to_shape_minimums() {
        assert_eq!(TopoSpec::new(TopoShape::Diamond, 0, 1).tasks, 3);
        assert_eq!(TopoSpec::new(TopoShape::Chain, 1, 1).tasks, 2);
        let spec = TopoSpec::new(TopoShape::Diamond, 3, 1).generate();
        assert!(spec.is_structurally_valid());
    }

    #[test]
    fn bench_suite_sweeps_every_acyclic_shape_and_size() {
        let suite = bench_suite(42);
        assert_eq!(suite.len(), BENCH_SIZES.len() * TopoShape::ACYCLIC.len());
        assert!(suite.iter().all(|t| t.shape.is_acyclic()));
        assert!(suite.iter().any(|t| t.tasks == 1000));
    }

    #[test]
    fn normalization_is_idempotent_on_generated_specs() {
        for shape in TopoShape::ACYCLIC {
            let spec = TopoSpec::new(shape, 100, 3).generate();
            let once = spec.normalized();
            let twice = once.normalized();
            assert_eq!(once, twice, "{shape}");
        }
    }
}
