//! Shared task-code validation used by the annotation-based systems
//! (ADIOS2, Henson, Parsl, PyCOMPSs).
//!
//! A correct annotation (a) calls every API function the system requires on
//! the producer side, (b) invents no API functions that do not exist, and
//! (c) avoids redundant boilerplate the prompt did not ask for.  These are
//! exactly the three error classes the paper discusses qualitatively.

use wfspeak_codemodel::calls::{call_names, extract_decorators};
use wfspeak_codemodel::lexer::Language;

use crate::api::ApiCatalog;
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};

/// Validate `code` against `catalog`.
///
/// * `language` — C or Python, depending on the system's task codes.
/// * `redundant` — API constructs that are legal but count as unrequested
///   boilerplate (e.g. Parsl executor configuration); reported as warnings.
pub fn validate_task_code(
    catalog: &ApiCatalog,
    code: &str,
    language: Language,
    redundant: &[&str],
) -> ValidationReport {
    let mut report = ValidationReport::valid();
    let mut used: Vec<String> = call_names(code, language);
    if language == Language::Python {
        // Decorators are part of the API surface for the Python systems.
        for d in extract_decorators(code) {
            let name = d.name.rsplit('.').next().unwrap_or(&d.name).to_owned();
            if !used.contains(&name) {
                used.push(name);
            }
        }
    }

    for name in &used {
        if catalog.is_hallucinated(name) {
            report.push(Diagnostic::error(
                DiagnosticKind::HallucinatedCall,
                format!(
                    "`{name}` does not exist in the {} API",
                    catalog.system.name()
                ),
            ));
        }
    }

    for required in catalog.required_producer_calls() {
        if !used.iter().any(|u| u == required) {
            report.push(Diagnostic::error(
                DiagnosticKind::MissingCall,
                format!(
                    "required {} call `{required}` is missing",
                    catalog.system.name()
                ),
            ));
        }
    }

    for extra in redundant {
        if used.iter().any(|u| u == extra) || code.contains(extra) {
            report.push(Diagnostic::warning(
                DiagnosticKind::RedundantCall,
                format!(
                    "`{extra}` is not needed for this workflow and was not requested in the prompt"
                ),
            ));
        }
    }

    if used.is_empty() {
        report.push(Diagnostic::error(
            DiagnosticKind::NoApiUsage,
            format!(
                "no {} API usage found in the task code",
                catalog.system.name()
            ),
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::catalog_for;
    use wfspeak_corpus::references::annotated;
    use wfspeak_corpus::WorkflowSystemId;

    #[test]
    fn henson_reference_is_clean() {
        let catalog = catalog_for(WorkflowSystemId::Henson);
        let report = validate_task_code(&catalog, annotated::HENSON_PRODUCER, Language::C, &[]);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn henson_hallucination_flagged() {
        let catalog = catalog_for(WorkflowSystemId::Henson);
        let code = "int main() { henson_put(\"t\", t); henson_save_array(\"a\", a, 4, n, 4); henson_save_int(\"t\", t); henson_yield(); }";
        let report = validate_task_code(&catalog, code, Language::C, &[]);
        assert!(!report.is_valid());
        assert!(report.has_code("hallucinated-call"));
    }

    #[test]
    fn missing_required_call_flagged() {
        let catalog = catalog_for(WorkflowSystemId::Henson);
        let code = "int main() { henson_save_int(\"t\", t); }";
        let report = validate_task_code(&catalog, code, Language::C, &[]);
        let missing: Vec<String> = report
            .with_code("missing-call")
            .map(|d| d.message.clone())
            .collect();
        assert!(missing.iter().any(|m| m.contains("henson_yield")));
        assert!(missing.iter().any(|m| m.contains("henson_save_array")));
    }

    #[test]
    fn parsl_redundant_executor_is_warning_not_error() {
        let catalog = catalog_for(WorkflowSystemId::Parsl);
        let code = r#"
import parsl
from parsl import python_app
from parsl.config import Config
from parsl.executors import HighThroughputExecutor

config = Config(executors=[HighThroughputExecutor(label="htex")])
parsl.load(config)

@python_app
def produce(n, outfile):
    return outfile

future = produce(50, "out.txt")
future.result()
"#;
        let report = validate_task_code(
            &catalog,
            code,
            Language::Python,
            &["HighThroughputExecutor", "Config"],
        );
        assert!(report.is_valid(), "{report}");
        assert!(report.has_code("redundant-call"));
        assert!(report.warning_count() >= 1);
    }

    #[test]
    fn python_decorators_count_as_api_usage() {
        let catalog = catalog_for(WorkflowSystemId::PyCompss);
        let report = validate_task_code(
            &catalog,
            annotated::PYCOMPSS_PRODUCER,
            Language::Python,
            &[],
        );
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn unannotated_code_reports_missing_and_no_usage() {
        let catalog = catalog_for(WorkflowSystemId::Adios2);
        let report = validate_task_code(
            &catalog,
            wfspeak_corpus::task_codes::C_PRODUCER,
            Language::C,
            &[],
        );
        assert!(!report.is_valid());
        assert!(report.has_code("missing-call"));
    }
}
