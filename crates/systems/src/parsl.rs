//! Parsl: Python parallel scripting with app decorators and futures.
//!
//! Parsl has no workflow-structure configuration file — its `Config` object
//! describes the execution environment (executors, providers), which is why
//! the paper excludes it from the configuration experiment.  The benchmark
//! therefore exercises Parsl through task-code annotation: wrapping the
//! producer in `@python_app`, loading a configuration, and synchronising via
//! futures.

use wfspeak_codemodel::lexer::Language;
use wfspeak_corpus::WorkflowSystemId;

use crate::annotate::validate_task_code;
use crate::api::{catalog_for, ApiCatalog};
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::spec::WorkflowSpec;
use crate::WorkflowSystem;

/// API constructs that are legal Parsl but count as unrequested boilerplate
/// for the benchmark's simple producer (the paper observes models adding
/// executors although the prompt never asks for them).
pub const REDUNDANT_FOR_BENCHMARK: &[&str] = &[
    "HighThroughputExecutor",
    "ThreadPoolExecutor",
    "LocalProvider",
    "SlurmProvider",
    "WorkQueueExecutor",
];

/// The Parsl system model.
#[derive(Debug)]
pub struct ParslSystem {
    api: ApiCatalog,
}

impl ParslSystem {
    /// Create the model.
    pub fn new() -> Self {
        ParslSystem {
            api: catalog_for(WorkflowSystemId::Parsl),
        }
    }
}

impl Default for ParslSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowSystem for ParslSystem {
    fn id(&self) -> WorkflowSystemId {
        WorkflowSystemId::Parsl
    }

    fn api(&self) -> &ApiCatalog {
        &self.api
    }

    fn validate_config(&self, _config: &str) -> ValidationReport {
        let mut report = ValidationReport::valid();
        report.push(Diagnostic::info(
            DiagnosticKind::EnvironmentConfig,
            "Parsl configuration files describe the execution environment, not the workflow \
             structure; the configuration experiment does not apply",
        ));
        report
    }

    fn validate_task_code(&self, code: &str) -> ValidationReport {
        let mut report =
            validate_task_code(&self.api, code, Language::Python, REDUNDANT_FOR_BENCHMARK);
        // A Parsl app without an import of parsl cannot run.
        if !code.contains("import parsl") && !code.contains("from parsl") {
            report.push(Diagnostic::error(
                DiagnosticKind::MissingImport,
                "the task code never imports parsl",
            ));
        }
        report
    }

    fn generate_config(&self, _spec: &WorkflowSpec) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::annotated;

    #[test]
    fn reference_annotation_validates_without_warnings() {
        let system = ParslSystem::new();
        let report = system.validate_task_code(annotated::PARSL_PRODUCER);
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn redundant_executor_config_warned() {
        let system = ParslSystem::new();
        let code = r#"
import parsl
from parsl import python_app
from parsl.config import Config
from parsl.executors import HighThroughputExecutor

parsl.load(Config(executors=[HighThroughputExecutor()]))

@python_app
def produce(n, outfile):
    return outfile

produce(50, "out.txt").result()
"#;
        let report = system.validate_task_code(code);
        assert!(report.is_valid(), "{report}");
        assert!(report.has_code("redundant-call"));
    }

    #[test]
    fn missing_decorator_and_load_flagged() {
        let system = ParslSystem::new();
        let code = "import parsl\n\ndef produce(n):\n    return n\n\nproduce(5)\n";
        let report = system.validate_task_code(code);
        assert!(!report.is_valid());
        let missing: Vec<String> = report
            .with_code("missing-call")
            .map(|d| d.message.clone())
            .collect();
        assert!(missing.iter().any(|m| m.contains("python_app")));
        assert!(missing.iter().any(|m| m.contains("load")));
    }

    #[test]
    fn missing_import_flagged() {
        let system = ParslSystem::new();
        let code = "@python_app\ndef produce(n):\n    return n\n\nproduce(5).result()\nload()\n";
        let report = system.validate_task_code(code);
        assert!(report.has_code("missing-import"));
    }

    #[test]
    fn config_experiment_not_applicable() {
        let system = ParslSystem::new();
        let report = system.validate_config("executors: []");
        assert!(report.is_valid());
        assert!(report.has_code("environment-config"));
        assert!(system
            .generate_config(&WorkflowSpec::paper_3node())
            .is_none());
    }

    #[test]
    fn pycompss_style_code_fails_parsl_validation() {
        let system = ParslSystem::new();
        let code = "from pycompss.api.task import task\n\n@task(returns=1)\ndef produce(n):\n    return n\n";
        let report = system.validate_task_code(code);
        assert!(!report.is_valid());
    }
}
