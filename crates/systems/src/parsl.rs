//! Parsl: Python parallel scripting with app decorators and futures.
//!
//! Parsl has no workflow-structure configuration file — its `Config` object
//! describes the execution environment (executors, providers), which is why
//! the paper excludes it from the configuration experiment.  The benchmark
//! exercises Parsl through task-code annotation: wrapping the producer in
//! `@python_app`, loading a configuration, and synchronising via futures.
//! The workflow *structure* lives in that annotated code, and
//! [`ParslScript`] recovers it for the runtime: app definitions become
//! tasks, and the dataflow is read from call sites (file-name literals bound
//! to `out`/`in` parameters, and futures passed from one app to another).

use std::collections::BTreeSet;

use wfspeak_codemodel::lexer::Language;
use wfspeak_corpus::WorkflowSystemId;

use crate::annotate::validate_task_code;
use crate::api::{catalog_for, ApiCatalog};
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::pyflow::{
    dataset_from_path, param_direction, scan_functions, scan_invocations, string_literal,
    PyInvocation,
};
use crate::spec::{DataRole, TaskSpec, WorkflowSpec};
use crate::WorkflowSystem;

/// Decorator names that mark a function as a Parsl app (task).
const APP_DECORATORS: &[&str] = &["python_app", "bash_app", "join_app"];

/// One `@python_app`-style definition recovered from the script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParslApp {
    /// Function (task) name.
    pub name: String,
    /// Parameter names in declaration order.
    pub params: Vec<String>,
    /// The app decorator used (`python_app`, `bash_app` or `join_app`).
    pub decorator: String,
}

/// A parsed Parsl script: app definitions plus their top-level invocations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParslScript {
    /// App definitions in source order.
    pub apps: Vec<ParslApp>,
    /// Invocations of those apps in source order.
    pub invocations: Vec<PyInvocation>,
}

impl ParslScript {
    /// Parse annotated Parsl task code, reporting missing imports and the
    /// absence of any app definition.
    pub fn parse(source: &str) -> (Option<ParslScript>, ValidationReport) {
        let mut report = ValidationReport::valid();
        if !source.contains("import parsl") && !source.contains("from parsl") {
            report.push(Diagnostic::error(
                DiagnosticKind::MissingImport,
                "the script never imports parsl",
            ));
        }
        let apps: Vec<ParslApp> = scan_functions(source)
            .into_iter()
            .filter_map(|f| {
                f.decorator_in(APP_DECORATORS).map(|d| ParslApp {
                    name: f.name.clone(),
                    params: f.params.clone(),
                    decorator: d.base_name().to_owned(),
                })
            })
            .collect();
        if apps.is_empty() {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                "the script defines no Parsl apps (no @python_app/@bash_app/@join_app \
                 decorated functions), so no workflow structure can be recovered",
            ));
            return (None, report);
        }
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        let invocations = scan_invocations(source, &names);
        (Some(ParslScript { apps, invocations }), report)
    }

    /// Reconstruct the neutral workflow specification the script describes.
    ///
    /// Apps become tasks (one process each — Parsl apps are single-process
    /// Python functions).  Dataflow is inferred the way
    /// [`HensonScript::to_spec`](crate::henson::HensonScript::to_spec)
    /// infers it from naming conventions: a file-name literal bound to a
    /// parameter whose name implies a direction (`outfile`, `output_path`,
    /// `infile`, ...) produces or consumes the file's dataset, and a future
    /// assigned from one app and passed to another is a produces/consumes
    /// edge named after the future variable.  Directional parameters never
    /// bound at a call site fall back to the parameter name as the dataset.
    pub fn to_spec(&self, name: &str) -> Result<WorkflowSpec, Diagnostic> {
        if self.apps.is_empty() {
            return Err(Diagnostic::error(
                DiagnosticKind::EmptyWorkflow,
                "the script defines no Parsl apps, so no tasks can be recovered",
            ));
        }
        let mut spec = WorkflowSpec::new(name);
        for app in &self.apps {
            let mut task = TaskSpec::new(&app.name, 1);
            for (dataset, role) in dataflow_for(
                &app.name,
                &app.params,
                &self.invocations,
                &param_direction,
                &|other| self.apps.iter().any(|a| a.name == other),
            ) {
                task = match role {
                    DataRole::Produces => task.produces(&dataset),
                    DataRole::Consumes => task.consumes(&dataset),
                };
            }
            spec.tasks.push(task);
        }
        Ok(spec)
    }
}

/// Shared dataflow inference over invocations of one app/task: directional
/// parameters bound to string literals (or left unbound), plus future
/// variables flowing between apps.  The `direction` callback decides which
/// parameters carry dataflow and which way (Parsl infers it from parameter
/// names, PyCOMPSs from `@task` parameter annotations).  Returns
/// `(dataset, role)` pairs in a deterministic order.
pub(crate) fn dataflow_for(
    task: &str,
    params: &[String],
    invocations: &[PyInvocation],
    direction: &dyn Fn(&str) -> Option<DataRole>,
    is_task: &dyn Fn(&str) -> bool,
) -> Vec<(String, DataRole)> {
    let mut edges: BTreeSet<(String, u8)> = BTreeSet::new();
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    // Futures: variables assigned from a task invocation, named after the
    // variable itself.
    let futures: Vec<(&str, &str)> = invocations
        .iter()
        .filter_map(|inv| {
            inv.assigned_to
                .as_deref()
                .map(|var| (var, inv.callee.as_str()))
        })
        .collect();
    for inv in invocations.iter().filter(|inv| inv.callee == task) {
        for (param, arg) in params.iter().zip(&inv.args) {
            if let Some(path) = string_literal(arg) {
                if let Some(role) = direction(param) {
                    bound.insert(param.as_str());
                    edges.insert((dataset_from_path(path), role_tag(role)));
                }
            } else if let Some(&(var, producer)) = futures
                .iter()
                .find(|(var, producer)| var == &arg.as_str() && *producer != task)
            {
                if is_task(producer) {
                    bound.insert(param.as_str());
                    edges.insert((var.to_owned(), role_tag(DataRole::Consumes)));
                }
            }
        }
    }
    // The produces side of every future this task's invocations feed into
    // another task.
    for (var, producer) in &futures {
        if *producer == task
            && invocations.iter().any(|inv| {
                inv.callee != task && is_task(&inv.callee) && inv.args.iter().any(|a| a == var)
            })
        {
            edges.insert(((*var).to_owned(), role_tag(DataRole::Produces)));
        }
    }
    // Directional parameters never bound at any call site still carry the
    // declared intent; fall back to the parameter name as the dataset.
    for param in params {
        if let Some(role) = direction(param) {
            if !bound.contains(param.as_str()) {
                edges.insert((param.clone(), role_tag(role)));
            }
        }
    }
    edges
        .into_iter()
        .map(|(dataset, tag)| {
            (
                dataset,
                if tag == 0 {
                    DataRole::Produces
                } else {
                    DataRole::Consumes
                },
            )
        })
        .collect()
}

fn role_tag(role: DataRole) -> u8 {
    match role {
        DataRole::Produces => 0,
        DataRole::Consumes => 1,
    }
}

/// API constructs that are legal Parsl but count as unrequested boilerplate
/// for the benchmark's simple producer (the paper observes models adding
/// executors although the prompt never asks for them).
pub const REDUNDANT_FOR_BENCHMARK: &[&str] = &[
    "HighThroughputExecutor",
    "ThreadPoolExecutor",
    "LocalProvider",
    "SlurmProvider",
    "WorkQueueExecutor",
];

/// The Parsl system model.
#[derive(Debug)]
pub struct ParslSystem {
    api: ApiCatalog,
}

impl ParslSystem {
    /// Create the model.
    pub fn new() -> Self {
        ParslSystem {
            api: catalog_for(WorkflowSystemId::Parsl),
        }
    }
}

impl Default for ParslSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowSystem for ParslSystem {
    fn id(&self) -> WorkflowSystemId {
        WorkflowSystemId::Parsl
    }

    fn api(&self) -> &ApiCatalog {
        &self.api
    }

    fn validate_config(&self, _config: &str) -> ValidationReport {
        let mut report = ValidationReport::valid();
        report.push(Diagnostic::info(
            DiagnosticKind::EnvironmentConfig,
            "Parsl configuration files describe the execution environment, not the workflow \
             structure; the configuration experiment does not apply",
        ));
        report
    }

    fn validate_task_code(&self, code: &str) -> ValidationReport {
        let mut report =
            validate_task_code(&self.api, code, Language::Python, REDUNDANT_FOR_BENCHMARK);
        // A Parsl app without an import of parsl cannot run.
        if !code.contains("import parsl") && !code.contains("from parsl") {
            report.push(Diagnostic::error(
                DiagnosticKind::MissingImport,
                "the task code never imports parsl",
            ));
        }
        report
    }

    fn generate_config(&self, _spec: &WorkflowSpec) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::annotated;

    #[test]
    fn reference_annotation_validates_without_warnings() {
        let system = ParslSystem::new();
        let report = system.validate_task_code(annotated::PARSL_PRODUCER);
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn redundant_executor_config_warned() {
        let system = ParslSystem::new();
        let code = r#"
import parsl
from parsl import python_app
from parsl.config import Config
from parsl.executors import HighThroughputExecutor

parsl.load(Config(executors=[HighThroughputExecutor()]))

@python_app
def produce(n, outfile):
    return outfile

produce(50, "out.txt").result()
"#;
        let report = system.validate_task_code(code);
        assert!(report.is_valid(), "{report}");
        assert!(report.has_code("redundant-call"));
    }

    #[test]
    fn missing_decorator_and_load_flagged() {
        let system = ParslSystem::new();
        let code = "import parsl\n\ndef produce(n):\n    return n\n\nproduce(5)\n";
        let report = system.validate_task_code(code);
        assert!(!report.is_valid());
        let missing: Vec<String> = report
            .with_code("missing-call")
            .map(|d| d.message.clone())
            .collect();
        assert!(missing.iter().any(|m| m.contains("python_app")));
        assert!(missing.iter().any(|m| m.contains("load")));
    }

    #[test]
    fn missing_import_flagged() {
        let system = ParslSystem::new();
        let code = "@python_app\ndef produce(n):\n    return n\n\nproduce(5).result()\nload()\n";
        let report = system.validate_task_code(code);
        assert!(report.has_code("missing-import"));
    }

    #[test]
    fn config_experiment_not_applicable() {
        let system = ParslSystem::new();
        let report = system.validate_config("executors: []");
        assert!(report.is_valid());
        assert!(report.has_code("environment-config"));
        assert!(system
            .generate_config(&WorkflowSpec::paper_3node())
            .is_none());
    }

    #[test]
    fn pycompss_style_code_fails_parsl_validation() {
        let system = ParslSystem::new();
        let code = "from pycompss.api.task import task\n\n@task(returns=1)\ndef produce(n):\n    return n\n";
        let report = system.validate_task_code(code);
        assert!(!report.is_valid());
    }

    #[test]
    fn reference_annotation_reconstructs_the_producer_spec() {
        let (script, report) = ParslScript::parse(annotated::PARSL_PRODUCER);
        assert!(report.is_valid(), "{report}");
        let script = script.expect("reference parses");
        assert_eq!(script.apps.len(), 1);
        assert_eq!(script.apps[0].name, "produce");
        assert_eq!(script.apps[0].decorator, "python_app");

        let spec = script.to_spec("parsl-workflow").expect("spec recovered");
        assert_eq!(spec.tasks.len(), 1);
        let task = &spec.tasks[0];
        assert_eq!(task.name, "produce");
        assert_eq!(task.nprocs, 1);
        assert_eq!(task.data.len(), 1);
        assert_eq!(task.data[0].dataset, "output");
        assert_eq!(task.data[0].role, DataRole::Produces);
    }

    #[test]
    fn future_passing_becomes_a_dataflow_edge() {
        let code = r#"
import parsl
from parsl import python_app

@python_app
def produce(n, outfile):
    return n

@python_app
def consume(data):
    return data

parsl.load()
fut = produce(50, "grid.h5")
result = consume(fut)
result.result()
"#;
        let (script, report) = ParslScript::parse(code);
        assert!(report.is_valid(), "{report}");
        let spec = script.unwrap().to_spec("parsl-workflow").unwrap();
        assert_eq!(spec.tasks.len(), 2);
        let produce = spec.task("produce").unwrap();
        let consume = spec.task("consume").unwrap();
        // produce writes both the literal-bound file and the future.
        assert!(produce
            .data
            .iter()
            .any(|d| d.dataset == "grid" && d.role == DataRole::Produces));
        assert!(produce
            .data
            .iter()
            .any(|d| d.dataset == "fut" && d.role == DataRole::Produces));
        assert!(consume
            .data
            .iter()
            .any(|d| d.dataset == "fut" && d.role == DataRole::Consumes));
        assert!(spec.is_structurally_valid(), "{:?}", spec.validate());
    }

    #[test]
    fn undecorated_script_yields_no_spec() {
        let code = "import parsl\n\ndef produce(n):\n    return n\n\nproduce(5)\n";
        let (script, report) = ParslScript::parse(code);
        assert!(script.is_none());
        assert!(report.has_code("schema"));
    }

    #[test]
    fn unbound_directional_params_fall_back_to_param_names() {
        let code = "import parsl\nfrom parsl import python_app\n\n@python_app\ndef produce(n, outfile):\n    return n\n";
        let (script, report) = ParslScript::parse(code);
        assert!(report.is_valid(), "{report}");
        let spec = script.unwrap().to_spec("parsl-workflow").unwrap();
        assert_eq!(spec.tasks[0].data.len(), 1);
        assert_eq!(spec.tasks[0].data[0].dataset, "outfile");
        assert_eq!(spec.tasks[0].data[0].role, DataRole::Produces);
    }

    #[test]
    fn parse_never_panics_on_malformed_soup() {
        for soup in [
            "",
            "@python_app",
            "@python_app\ndef",
            "@python_app\ndef f(",
            "import parsl\n@python_app\ndef f(a, b):\n",
            "\u{0}\u{1}@python_app\ndef \u{7}():\n",
        ] {
            let (script, _report) = ParslScript::parse(soup);
            if let Some(script) = script {
                let _ = script.to_spec("parsl-workflow");
            }
        }
    }
}
