//! Henson: cooperative multitasking for in situ processing.
//!
//! Henson workflows are described in a small script: each *puppet* (task) is
//! bound to a shared object plus arguments, and process-group lines assign
//! processes to puppets.  Task codes use the `henson_*` data API
//! (`henson_save_*`, `henson_load_*`, `henson_yield`).

use wfspeak_codemodel::lexer::Language;
use wfspeak_corpus::WorkflowSystemId;

use crate::annotate::validate_task_code;
use crate::api::{catalog_for, ApiCatalog};
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::spec::{DataRole, WorkflowSpec};
use crate::WorkflowSystem;

/// One puppet definition: `name = ./library.so args...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Puppet {
    /// Puppet name.
    pub name: String,
    /// Shared-object path.
    pub executable: String,
    /// Command-line arguments.
    pub args: Vec<String>,
}

/// One process-group assignment: `[nprocs] puppet1 puppet2 ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGroup {
    /// Number of processes in the group.
    pub nprocs: usize,
    /// Puppets co-scheduled on the group.
    pub puppets: Vec<String>,
}

/// A parsed Henson workflow script.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HensonScript {
    /// Puppet definitions in file order.
    pub puppets: Vec<Puppet>,
    /// Process groups in file order.
    pub groups: Vec<ProcessGroup>,
}

impl HensonScript {
    /// Parse a Henson script, reporting syntax and consistency problems.
    pub fn parse(source: &str) -> (Option<HensonScript>, ValidationReport) {
        let mut report = ValidationReport::valid();
        let mut script = HensonScript::default();
        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                // Process group: "[3] producer consumer".
                let Some(close) = rest.find(']') else {
                    report.push(Diagnostic::error(
                        DiagnosticKind::Syntax,
                        format!("line {line_no}: process group is missing `]`"),
                    ));
                    continue;
                };
                let count_text = rest[..close].trim();
                let nprocs = match count_text.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        report.push(Diagnostic::error(
                            DiagnosticKind::Syntax,
                            format!("line {line_no}: `{count_text}` is not a valid process count"),
                        ));
                        continue;
                    }
                };
                let puppets: Vec<String> = rest[close + 1..]
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect();
                if puppets.is_empty() {
                    report.push(Diagnostic::error(
                        DiagnosticKind::Syntax,
                        format!("line {line_no}: process group assigns no puppets"),
                    ));
                    continue;
                }
                script.groups.push(ProcessGroup { nprocs, puppets });
            } else if let Some(eq) = line.find('=') {
                let name = line[..eq].trim().to_owned();
                let rhs = line[eq + 1..].trim();
                if name.is_empty() || rhs.is_empty() {
                    report.push(Diagnostic::error(
                        DiagnosticKind::Syntax,
                        format!(
                            "line {line_no}: puppet definition must be `name = executable [args]`"
                        ),
                    ));
                    continue;
                }
                if name == "procs" || name == "world" {
                    // Accepted global settings; no structural meaning here.
                    continue;
                }
                if script.puppets.iter().any(|p| p.name == name) {
                    report.push(Diagnostic::error(
                        DiagnosticKind::DuplicatePuppet,
                        format!("line {line_no}: puppet `{name}` is defined twice"),
                    ));
                    continue;
                }
                let mut parts = rhs.split_whitespace();
                let executable = parts.next().unwrap_or_default().to_owned();
                let args = parts.map(str::to_owned).collect();
                script.puppets.push(Puppet {
                    name,
                    executable,
                    args,
                });
            } else {
                report.push(Diagnostic::error(DiagnosticKind::UnknownDirective, format!("line {line_no}: `{line}` is neither a puppet definition nor a process group"),
                ));
            }
        }

        if script.puppets.is_empty() {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                "script defines no puppets",
            ));
            return (None, report);
        }
        if script.groups.is_empty() {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                "script assigns no process groups (`[n] puppet ...` lines)",
            ));
        }
        for group in &script.groups {
            for puppet in &group.puppets {
                if !script.puppets.iter().any(|p| p.name == *puppet) {
                    report.push(Diagnostic::error(
                        DiagnosticKind::UndefinedPuppet,
                        format!("process group references undefined puppet `{puppet}`"),
                    ));
                }
            }
        }
        let valid = report.is_valid();
        (
            if valid || !script.puppets.is_empty() {
                Some(script)
            } else {
                None
            },
            report,
        )
    }

    /// Total number of processes across groups.
    pub fn total_procs(&self) -> usize {
        self.groups.iter().map(|g| g.nprocs).sum()
    }

    /// Reconstruct the neutral workflow specification the script describes
    /// (for the runtime).
    ///
    /// Henson scripts name tasks and process groups but carry no explicit
    /// dataflow, so data edges are recovered from the executable naming
    /// convention the reference generator uses (and real Henson examples
    /// follow): a puppet bound to `./<base>_<dataset>.so` consumes
    /// `<dataset>`, and every puppet that consumes nothing produces the
    /// union of the consumed datasets.  A puppet assigned to several groups
    /// gets the sum of their process counts; one assigned to none defaults
    /// to a single process.
    ///
    /// A script that defines zero puppets describes no tasks; that is
    /// reported as a parse-stage diagnostic rather than silently yielding an
    /// empty (vacuously valid) spec.
    pub fn to_spec(&self, name: &str) -> Result<WorkflowSpec, Diagnostic> {
        if self.puppets.is_empty() {
            return Err(Diagnostic::error(
                DiagnosticKind::EmptyWorkflow,
                "the Henson script defines no puppets, so no tasks can be recovered",
            ));
        }
        let consumed: Vec<(usize, String)> = self
            .puppets
            .iter()
            .enumerate()
            .filter_map(|(idx, puppet)| {
                let stem = puppet
                    .executable
                    .rsplit('/')
                    .next()
                    .unwrap_or(&puppet.executable)
                    .trim_end_matches(".so");
                stem.rsplit_once('_')
                    .map(|(_, dataset)| (idx, dataset.to_owned()))
            })
            .collect();
        let all_datasets: Vec<&str> = {
            let mut seen = std::collections::HashSet::new();
            consumed
                .iter()
                .filter(|(_, d)| seen.insert(d.as_str()))
                .map(|(_, d)| d.as_str())
                .collect()
        };
        let mut spec = WorkflowSpec::new(name);
        for (idx, puppet) in self.puppets.iter().enumerate() {
            let nprocs: usize = self
                .groups
                .iter()
                .filter(|g| g.puppets.contains(&puppet.name))
                .map(|g| g.nprocs)
                .sum();
            let mut task = crate::spec::TaskSpec::new(&puppet.name, nprocs.max(1));
            let consumes: Vec<&str> = consumed
                .iter()
                .filter(|(i, _)| *i == idx)
                .map(|(_, d)| d.as_str())
                .collect();
            if consumes.is_empty() {
                for dataset in &all_datasets {
                    task = task.produces(dataset);
                }
            } else {
                for dataset in consumes {
                    task = task.consumes(dataset);
                }
            }
            spec.tasks.push(task);
        }
        Ok(spec)
    }

    /// Render the canonical reference script for a workflow spec.
    pub fn render_for_spec(spec: &WorkflowSpec) -> String {
        let width = spec.tasks.iter().map(|t| t.name.len()).max().unwrap_or(8) + 2;
        let mut out = String::new();
        for task in &spec.tasks {
            let produces = task.data.iter().any(|d| d.role == DataRole::Produces);
            let executable = if produces {
                format!("./{}.so 50 3", task.name)
            } else {
                let base = task.name.trim_end_matches(|c: char| c.is_ascii_digit());
                if base != task.name {
                    let dataset = task
                        .consumed_datasets()
                        .first()
                        .map(|d| (*d).to_owned())
                        .unwrap_or_default();
                    format!("./{base}_{dataset}.so")
                } else {
                    format!("./{}.so", task.name)
                }
            };
            out.push_str(&format!("{:<width$}= {}\n", task.name, executable));
        }
        out.push('\n');
        for task in &spec.tasks {
            out.push_str(&format!("[{}] {}\n", task.nprocs, task.name));
        }
        out
    }
}

/// The Henson system model.
#[derive(Debug)]
pub struct HensonSystem {
    api: ApiCatalog,
}

impl HensonSystem {
    /// Create the model.
    pub fn new() -> Self {
        HensonSystem {
            api: catalog_for(WorkflowSystemId::Henson),
        }
    }
}

impl Default for HensonSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowSystem for HensonSystem {
    fn id(&self) -> WorkflowSystemId {
        WorkflowSystemId::Henson
    }

    fn api(&self) -> &ApiCatalog {
        &self.api
    }

    fn validate_config(&self, config: &str) -> ValidationReport {
        let (_, report) = HensonScript::parse(config);
        report
    }

    fn validate_task_code(&self, code: &str) -> ValidationReport {
        validate_task_code(&self.api, code, Language::C, &[])
    }

    fn generate_config(&self, spec: &WorkflowSpec) -> Option<String> {
        Some(HensonScript::render_for_spec(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::{annotated, configs};

    #[test]
    fn reference_3node_script_parses_cleanly() {
        let (script, report) = HensonScript::parse(configs::HENSON_3NODE);
        assert!(report.is_valid(), "{report}");
        let script = script.unwrap();
        assert_eq!(script.puppets.len(), 3);
        assert_eq!(script.groups.len(), 3);
        assert_eq!(script.total_procs(), 5);
        assert_eq!(script.puppets[0].name, "producer");
        assert_eq!(script.puppets[0].executable, "./producer.so");
        assert_eq!(script.puppets[0].args, vec!["50", "3"]);
        assert_eq!(script.groups[0].nprocs, 3);
    }

    #[test]
    fn generated_script_matches_reference() {
        let generated = HensonScript::render_for_spec(&WorkflowSpec::paper_3node());
        assert_eq!(generated, configs::HENSON_3NODE);
        let generated2 = HensonScript::render_for_spec(&WorkflowSpec::fewshot_2node());
        assert_eq!(generated2, configs::HENSON_2NODE);
    }

    #[test]
    fn undefined_puppet_in_group_flagged() {
        let src = "producer = ./p.so\n\n[2] producer analyzer\n";
        let (_, report) = HensonScript::parse(src);
        assert!(report.has_code("undefined-puppet"));
        assert!(!report.is_valid());
    }

    #[test]
    fn duplicate_puppet_flagged() {
        let src = "p = ./a.so\np = ./b.so\n[1] p\n";
        let (_, report) = HensonScript::parse(src);
        assert!(report.has_code("duplicate-puppet"));
    }

    #[test]
    fn missing_groups_flagged() {
        let src = "p = ./a.so\n";
        let (_, report) = HensonScript::parse(src);
        assert!(report.has_code("schema"));
        assert!(!report.is_valid());
    }

    #[test]
    fn yaml_like_content_is_not_a_henson_script() {
        // Models often answer with YAML when asked for a Henson config; the
        // validator must reject it.
        let (_, report) = HensonScript::parse("tasks:\n  - func: producer\n    nprocs: 3\n");
        assert!(!report.is_valid());
        assert!(report.has_code("unknown-directive") || report.has_code("schema"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# comment\nproducer = ./p.so 1 2  # trailing\n\n[1] producer\n";
        let (script, report) = HensonScript::parse(src);
        assert!(report.is_valid(), "{report}");
        assert_eq!(script.unwrap().puppets.len(), 1);
    }

    #[test]
    fn bad_group_count_flagged() {
        let (_, report) = HensonScript::parse("p = ./a.so\n[zero] p\n");
        assert!(report.has_code("syntax"));
    }

    #[test]
    fn to_spec_rejects_zero_task_scripts() {
        let empty = HensonScript::default();
        let err = empty.to_spec("henson-workflow").unwrap_err();
        assert_eq!(err.kind, DiagnosticKind::EmptyWorkflow);
    }

    #[test]
    fn to_spec_recovers_the_reference_graph() {
        let (script, _) = HensonScript::parse(configs::HENSON_3NODE);
        let spec = script.unwrap().to_spec("henson-workflow").unwrap();
        assert_eq!(spec.tasks.len(), 3);
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn reference_annotation_validates() {
        let system = HensonSystem::new();
        let report = system.validate_task_code(annotated::HENSON_PRODUCER);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn gemini_style_hallucinations_from_table4_detected() {
        // Table 4 (right): Gemini-2.5-Pro invents henson_init/henson_rank/
        // henson_size/henson_data_init/henson_save/henson_finalize.
        let system = HensonSystem::new();
        let code = r#"
int main(int argc, char** argv) {
    henson_init(argc, argv, MPI_COMM_WORLD);
    int rank = henson_rank();
    henson_data_t array_hd;
    henson_data_init(&array_hd, HENSON_FLOAT, n, array);
    henson_save("array", &array_hd);
    henson_yield();
    henson_finalize();
    return 0;
}
"#;
        let report = system.validate_task_code(code);
        assert!(report.has_code("hallucinated-call"));
        assert!(report.with_code("hallucinated-call").count() >= 4);
    }
}
