//! API catalogues: the real function names, decorators and configuration
//! fields of each workflow system.
//!
//! The catalogue is the ground truth the validators use to distinguish a
//! *wrong-but-real* API use from a *hallucinated* one (the paper's central
//! qualitative finding: models invent `henson_put`,
//! `henson_declare_variable`, `inputs:`/`outputs:` fields, and so on).

use wfspeak_corpus::WorkflowSystemId;

/// One API function (or decorator) in a system's public surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiFunction {
    /// Function or decorator name as written in code.
    pub name: &'static str,
    /// Short signature / usage hint (documentation only).
    pub signature: &'static str,
    /// Whether a correct producer-side annotation must call it.
    pub required_for_producer: bool,
}

/// The catalogue of a workflow system's API surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiCatalog {
    /// Which system this catalogue describes.
    pub system: WorkflowSystemId,
    /// Identifier prefixes that mark a call as belonging to this system's
    /// API family (used for hallucination detection).
    pub prefixes: Vec<&'static str>,
    /// All real functions/decorators.
    pub functions: Vec<ApiFunction>,
    /// Configuration-file field names that actually exist for this system.
    pub config_fields: Vec<&'static str>,
}

impl ApiCatalog {
    /// All function names.
    pub fn function_names(&self) -> Vec<&'static str> {
        self.functions.iter().map(|f| f.name).collect()
    }

    /// Names of functions a producer-side annotation must call.
    pub fn required_producer_calls(&self) -> Vec<&'static str> {
        self.functions
            .iter()
            .filter(|f| f.required_for_producer)
            .map(|f| f.name)
            .collect()
    }

    /// True when `name` is a real function of this system.
    pub fn is_real_function(&self, name: &str) -> bool {
        self.functions.iter().any(|f| f.name == name)
    }

    /// True when `name` looks like it belongs to this system's API family
    /// (matches a prefix) regardless of whether it exists.
    pub fn in_api_family(&self, name: &str) -> bool {
        self.prefixes.iter().any(|p| {
            if let Some(stripped) = p.strip_suffix('_') {
                name.starts_with(p) || name == stripped
            } else {
                name.starts_with(p)
            }
        })
    }

    /// True when `name` matches the API family but is not a real function —
    /// i.e. a hallucinated API call.
    pub fn is_hallucinated(&self, name: &str) -> bool {
        self.in_api_family(name) && !self.is_real_function(name)
    }

    /// True when a configuration field name exists for this system.
    pub fn is_real_config_field(&self, field: &str) -> bool {
        self.config_fields.contains(&field)
    }
}

/// Build the catalogue for a system.
pub fn catalog_for(system: WorkflowSystemId) -> ApiCatalog {
    match system {
        WorkflowSystemId::Adios2 => adios2_catalog(),
        WorkflowSystemId::Henson => henson_catalog(),
        WorkflowSystemId::Parsl => parsl_catalog(),
        WorkflowSystemId::PyCompss => pycompss_catalog(),
        WorkflowSystemId::Wilkins => wilkins_catalog(),
    }
}

fn adios2_catalog() -> ApiCatalog {
    let f = |name, signature, required| ApiFunction {
        name,
        signature,
        required_for_producer: required,
    };
    ApiCatalog {
        system: WorkflowSystemId::Adios2,
        prefixes: vec!["adios2_", "adios_"],
        functions: vec![
            f("adios2_init_mpi", "adios2_init_mpi(MPI_Comm comm)", true),
            f("adios2_init", "adios2_init()", false),
            f(
                "adios2_init_config_mpi",
                "adios2_init_config_mpi(const char* cfg, MPI_Comm)",
                false,
            ),
            f("adios2_declare_io", "adios2_declare_io(adios, name)", true),
            f("adios2_at_io", "adios2_at_io(adios, name)", false),
            f(
                "adios2_define_variable",
                "adios2_define_variable(io, name, type, ndims, shape, start, count, constant_dims)",
                true,
            ),
            f(
                "adios2_inquire_variable",
                "adios2_inquire_variable(io, name)",
                false,
            ),
            f("adios2_set_engine", "adios2_set_engine(io, type)", false),
            f(
                "adios2_set_parameter",
                "adios2_set_parameter(io, key, value)",
                false,
            ),
            f("adios2_open", "adios2_open(io, name, mode)", true),
            f(
                "adios2_begin_step",
                "adios2_begin_step(engine, mode, timeout, status)",
                true,
            ),
            f(
                "adios2_put",
                "adios2_put(engine, variable, data, launch)",
                true,
            ),
            f(
                "adios2_get",
                "adios2_get(engine, variable, data, launch)",
                false,
            ),
            f("adios2_end_step", "adios2_end_step(engine)", true),
            f("adios2_perform_puts", "adios2_perform_puts(engine)", false),
            f("adios2_perform_gets", "adios2_perform_gets(engine)", false),
            f("adios2_close", "adios2_close(engine)", true),
            f("adios2_finalize", "adios2_finalize(adios)", true),
            f(
                "adios2_remove_all_variables",
                "adios2_remove_all_variables(io)",
                false,
            ),
        ],
        config_fields: vec![
            "IO",
            "Engine",
            "Type",
            "Parameters",
            "Variables",
            "Variable",
            "Shape",
            "Operations",
            "QueueLimit",
            "RendezvousReaderCount",
            "Transports",
        ],
    }
}

fn henson_catalog() -> ApiCatalog {
    let f = |name, signature, required| ApiFunction {
        name,
        signature,
        required_for_producer: required,
    };
    ApiCatalog {
        system: WorkflowSystemId::Henson,
        prefixes: vec!["henson_"],
        functions: vec![
            f(
                "henson_save_array",
                "henson_save_array(name, address, type, count, stride)",
                true,
            ),
            f("henson_save_int", "henson_save_int(name, x)", true),
            f("henson_save_size_t", "henson_save_size_t(name, x)", false),
            f("henson_save_float", "henson_save_float(name, x)", false),
            f("henson_save_double", "henson_save_double(name, x)", false),
            f(
                "henson_save_pointer",
                "henson_save_pointer(name, ptr)",
                false,
            ),
            f(
                "henson_load_array",
                "henson_load_array(name, address, type, count, stride)",
                false,
            ),
            f("henson_load_int", "henson_load_int(name, &x)", false),
            f("henson_load_size_t", "henson_load_size_t(name, &x)", false),
            f("henson_load_float", "henson_load_float(name, &x)", false),
            f("henson_load_double", "henson_load_double(name, &x)", false),
            f(
                "henson_load_pointer",
                "henson_load_pointer(name, &ptr)",
                false,
            ),
            f("henson_yield", "henson_yield()", true),
            f("henson_active", "henson_active()", false),
            f("henson_stop", "henson_stop()", false),
            f("henson_get_world", "henson_get_world()", false),
        ],
        config_fields: vec!["procs", "world"],
    }
}

fn parsl_catalog() -> ApiCatalog {
    let f = |name, signature, required| ApiFunction {
        name,
        signature,
        required_for_producer: required,
    };
    ApiCatalog {
        system: WorkflowSystemId::Parsl,
        prefixes: vec!["parsl", "python_app", "bash_app", "join_app"],
        functions: vec![
            f("python_app", "@python_app decorator", true),
            f("bash_app", "@bash_app decorator", false),
            f("join_app", "@join_app decorator", false),
            f("load", "parsl.load(config=None)", true),
            f("clear", "parsl.clear()", false),
            f("result", "future.result()", true),
            f("done", "future.done()", false),
            f("Config", "parsl.config.Config(executors=[...])", false),
            f(
                "HighThroughputExecutor",
                "HighThroughputExecutor(...)",
                false,
            ),
            f("ThreadPoolExecutor", "ThreadPoolExecutor(...)", false),
            f("LocalProvider", "LocalProvider(...)", false),
            f("File", "parsl.data_provider.files.File(path)", false),
        ],
        config_fields: vec!["executors", "label", "max_threads", "provider"],
    }
}

fn pycompss_catalog() -> ApiCatalog {
    let f = |name, signature, required| ApiFunction {
        name,
        signature,
        required_for_producer: required,
    };
    ApiCatalog {
        system: WorkflowSystemId::PyCompss,
        prefixes: vec!["compss_", "task", "constraint", "binary", "mpi"],
        functions: vec![
            f("task", "@task(returns=..., file=FILE_OUT) decorator", true),
            f(
                "constraint",
                "@constraint(computing_units=...) decorator",
                false,
            ),
            f("binary", "@binary(binary=...) decorator", false),
            f("mpi", "@mpi(runner=..., processes=...) decorator", false),
            f("compss_wait_on", "compss_wait_on(obj)", false),
            f("compss_wait_on_file", "compss_wait_on_file(path)", true),
            f("compss_barrier", "compss_barrier()", false),
            f("compss_open", "compss_open(path, mode)", false),
            f("compss_delete_file", "compss_delete_file(path)", false),
            f("compss_start", "compss_start()", false),
            f("compss_stop", "compss_stop()", false),
        ],
        config_fields: vec!["computing_units", "processes", "runner"],
    }
}

fn wilkins_catalog() -> ApiCatalog {
    ApiCatalog {
        system: WorkflowSystemId::Wilkins,
        prefixes: vec!["wilkins_"],
        functions: vec![
            ApiFunction {
                name: "wilkins_init",
                signature: "wilkins_init(argc, argv)",
                required_for_producer: false,
            },
            ApiFunction {
                name: "wilkins_run",
                signature: "wilkins_run(config)",
                required_for_producer: false,
            },
        ],
        config_fields: vec![
            "tasks", "func", "nprocs", "inports", "outports", "filename", "dsets", "name", "file",
            "memory", "io_freq", "zerocopy", "actions",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogues_exist_for_all_systems() {
        for sys in WorkflowSystemId::ALL {
            let cat = catalog_for(sys);
            assert_eq!(cat.system, sys);
            assert!(!cat.functions.is_empty() || sys == WorkflowSystemId::Wilkins);
            assert!(!cat.config_fields.is_empty());
        }
    }

    #[test]
    fn henson_hallucinations_from_paper_are_detected() {
        let cat = catalog_for(WorkflowSystemId::Henson);
        // Real calls.
        assert!(cat.is_real_function("henson_save_int"));
        assert!(cat.is_real_function("henson_yield"));
        // The paper's observed hallucinations.
        assert!(cat.is_hallucinated("henson_put"));
        assert!(cat.is_hallucinated("henson_declare_variable"));
        assert!(cat.is_hallucinated("henson_data_init"));
        assert!(cat.is_hallucinated("henson_begin_step"));
        // Non-family calls are not hallucinations.
        assert!(!cat.is_hallucinated("MPI_Init"));
        assert!(!cat.is_hallucinated("printf"));
    }

    #[test]
    fn adios2_required_producer_calls() {
        let cat = catalog_for(WorkflowSystemId::Adios2);
        let required = cat.required_producer_calls();
        for call in [
            "adios2_declare_io",
            "adios2_define_variable",
            "adios2_open",
            "adios2_begin_step",
            "adios2_put",
            "adios2_end_step",
            "adios2_close",
            "adios2_finalize",
        ] {
            assert!(required.contains(&call), "{call} should be required");
        }
        assert!(!required.contains(&"adios2_get"));
    }

    #[test]
    fn wilkins_config_fields_match_table6() {
        let cat = catalog_for(WorkflowSystemId::Wilkins);
        for field in ["tasks", "func", "nprocs", "inports", "outports", "dsets"] {
            assert!(cat.is_real_config_field(field), "{field} should exist");
        }
        // Fields o3 hallucinated in zero-shot mode (Table 6 right).
        for field in [
            "inputs",
            "outputs",
            "command",
            "dependencies",
            "processes",
            "workflow",
            "datasets",
        ] {
            assert!(!cat.is_real_config_field(field), "{field} should not exist");
        }
    }

    #[test]
    fn parsl_family_includes_decorators_and_executors() {
        let cat = catalog_for(WorkflowSystemId::Parsl);
        assert!(cat.is_real_function("python_app"));
        assert!(cat.is_real_function("HighThroughputExecutor"));
        assert!(cat.in_api_family("parsl"));
        assert!(cat.in_api_family("python_app"));
    }

    #[test]
    fn pycompss_wait_on_file_required() {
        let cat = catalog_for(WorkflowSystemId::PyCompss);
        assert!(cat
            .required_producer_calls()
            .contains(&"compss_wait_on_file"));
        assert!(cat.is_real_function("compss_wait_on"));
        assert!(cat.is_hallucinated("compss_sync_file"));
    }

    #[test]
    fn prefix_matching_handles_bare_prefix_names() {
        let cat = catalog_for(WorkflowSystemId::Adios2);
        assert!(cat.in_api_family("adios2_put"));
        assert!(cat.in_api_family("adios_put"));
        assert!(cat.in_api_family("adios2"));
        assert!(!cat.in_api_family("henson_put"));
    }
}
