//! Validation diagnostics shared by every system model.
//!
//! A [`Diagnostic`] is a typed finding: a machine-readable [`DiagnosticKind`],
//! a [`Severity`], an optional path into the artifact (task or field), an
//! optional source position, and a human-readable message.  The wire form
//! ([`Diagnostic::wire_json`]) is what the scoring service serializes so
//! clients can tell *why* an artifact failed without parsing prose.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (does not invalidate the artifact).
    Info,
    /// Suspicious but tolerated (e.g. redundant boilerplate).
    Warning,
    /// The artifact is wrong for this system (unknown field, hallucinated
    /// API call, missing required call, parse failure).
    Error,
}

impl Severity {
    /// Lower-case label used in display and wire forms.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// What category of problem a diagnostic reports.
///
/// The kinds cover three lifecycle stages: **parse** (the artifact text did
/// not yield a spec), **validate** (the spec is structurally wrong), and
/// **execute** (the engine refused or failed the run).  [`code`] gives the
/// stable kebab-case identifier used on the wire and in `has_code` lookups.
///
/// [`code`]: DiagnosticKind::code
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    // ---- parse stage: artifact text → spec ----
    /// The artifact text failed to parse at all (uncategorised).
    ParseError,
    /// A line is not a legal construct of the config language.
    Syntax,
    /// YAML indentation does not match any open block.
    BadIndentation,
    /// A tab character used in YAML block indentation.
    TabIndent,
    /// A quoted YAML scalar was not terminated.
    UnterminatedString,
    /// A YAML flow collection (`[...]` / `{...}`) was not closed.
    UnterminatedFlow,
    /// A mapping key appears twice in the same YAML mapping.
    DuplicateKey,
    /// Valid YAML outside the supported subset (anchors, tags, block
    /// scalars, multiple documents).
    UnsupportedYaml,
    /// The document parses but violates the system's config schema.
    Schema,
    /// A field name the system does not define.
    UnknownField,
    /// A real field in a place the schema does not allow it.
    MisplacedField,
    /// An engine parameter the system does not define.
    UnknownParameter,
    /// An engine name the system does not define.
    UnknownEngine,
    /// A Henson puppet defined twice.
    DuplicatePuppet,
    /// A Henson process group references an undefined puppet.
    UndefinedPuppet,
    /// A Henson line that is neither a puppet definition nor a group.
    UnknownDirective,
    /// The system has no structural configuration file to parse.
    NoStructuralConfig,
    /// The config describes the execution environment, not the workflow.
    EnvironmentConfig,
    // ---- annotation checks: task code against the API catalogue ----
    /// A required import is missing from the task code.
    MissingImport,
    /// A required parameter direction is missing.
    MissingDirection,
    /// No API usage found in the task code.
    NoApiUsage,
    /// The task code needs no annotation for this system.
    NoAnnotationNeeded,
    /// A call that does not exist in the system's API.
    HallucinatedCall,
    /// A required API call is missing.
    MissingCall,
    /// Legal but unrequested boilerplate.
    RedundantCall,
    /// Free-form informational note.
    Note,
    // ---- validate stage: structural checks on the spec ----
    /// The spec defines no tasks at all.
    EmptyWorkflow,
    /// Two tasks share a name.
    DuplicateTask,
    /// A task name is empty or contains whitespace/control characters.
    InvalidTaskName,
    /// A task requests zero processes.
    ZeroProcs,
    /// A process count beyond any plausible deployment.
    ProcBounds,
    /// More tasks than any plausible workflow.
    TaskBounds,
    /// A dataset name is empty.
    InvalidDataset,
    /// A task consumes a dataset no task produces.
    DanglingConsume,
    /// A task produces a dataset no task consumes.
    UnconsumedProduce,
    /// The same dataset requirement is listed twice on one task.
    DuplicateEdge,
    /// A task consumes a dataset it also produces.
    SelfLoop,
    /// The producer/consumer graph contains a dependency cycle.
    Cycle,
    // ---- execute stage: sandboxed runs ----
    /// The spec exceeds the sandbox's resource caps.
    SandboxCap,
    /// The runtime engine refused or aborted the run.
    EngineError,
    /// The run started but did not complete within the sandbox budget.
    IncompleteRun,
}

impl DiagnosticKind {
    /// Every kind, for exhaustive wire/round-trip tests.
    pub const ALL: &'static [DiagnosticKind] = &[
        DiagnosticKind::ParseError,
        DiagnosticKind::Syntax,
        DiagnosticKind::BadIndentation,
        DiagnosticKind::TabIndent,
        DiagnosticKind::UnterminatedString,
        DiagnosticKind::UnterminatedFlow,
        DiagnosticKind::DuplicateKey,
        DiagnosticKind::UnsupportedYaml,
        DiagnosticKind::Schema,
        DiagnosticKind::UnknownField,
        DiagnosticKind::MisplacedField,
        DiagnosticKind::UnknownParameter,
        DiagnosticKind::UnknownEngine,
        DiagnosticKind::DuplicatePuppet,
        DiagnosticKind::UndefinedPuppet,
        DiagnosticKind::UnknownDirective,
        DiagnosticKind::NoStructuralConfig,
        DiagnosticKind::EnvironmentConfig,
        DiagnosticKind::MissingImport,
        DiagnosticKind::MissingDirection,
        DiagnosticKind::NoApiUsage,
        DiagnosticKind::NoAnnotationNeeded,
        DiagnosticKind::HallucinatedCall,
        DiagnosticKind::MissingCall,
        DiagnosticKind::RedundantCall,
        DiagnosticKind::Note,
        DiagnosticKind::EmptyWorkflow,
        DiagnosticKind::DuplicateTask,
        DiagnosticKind::InvalidTaskName,
        DiagnosticKind::ZeroProcs,
        DiagnosticKind::ProcBounds,
        DiagnosticKind::TaskBounds,
        DiagnosticKind::InvalidDataset,
        DiagnosticKind::DanglingConsume,
        DiagnosticKind::UnconsumedProduce,
        DiagnosticKind::DuplicateEdge,
        DiagnosticKind::SelfLoop,
        DiagnosticKind::Cycle,
        DiagnosticKind::SandboxCap,
        DiagnosticKind::EngineError,
        DiagnosticKind::IncompleteRun,
    ];

    /// Stable kebab-case identifier used on the wire.
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticKind::ParseError => "parse-error",
            DiagnosticKind::Syntax => "syntax",
            DiagnosticKind::BadIndentation => "bad-indentation",
            DiagnosticKind::TabIndent => "tab-indent",
            DiagnosticKind::UnterminatedString => "unterminated-string",
            DiagnosticKind::UnterminatedFlow => "unterminated-flow",
            DiagnosticKind::DuplicateKey => "duplicate-key",
            DiagnosticKind::UnsupportedYaml => "unsupported-yaml",
            DiagnosticKind::Schema => "schema",
            DiagnosticKind::UnknownField => "unknown-field",
            DiagnosticKind::MisplacedField => "misplaced-field",
            DiagnosticKind::UnknownParameter => "unknown-parameter",
            DiagnosticKind::UnknownEngine => "unknown-engine",
            DiagnosticKind::DuplicatePuppet => "duplicate-puppet",
            DiagnosticKind::UndefinedPuppet => "undefined-puppet",
            DiagnosticKind::UnknownDirective => "unknown-directive",
            DiagnosticKind::NoStructuralConfig => "no-structural-config",
            DiagnosticKind::EnvironmentConfig => "environment-config",
            DiagnosticKind::MissingImport => "missing-import",
            DiagnosticKind::MissingDirection => "missing-direction",
            DiagnosticKind::NoApiUsage => "no-api-usage",
            DiagnosticKind::NoAnnotationNeeded => "no-annotation-needed",
            DiagnosticKind::HallucinatedCall => "hallucinated-call",
            DiagnosticKind::MissingCall => "missing-call",
            DiagnosticKind::RedundantCall => "redundant-call",
            DiagnosticKind::Note => "note",
            DiagnosticKind::EmptyWorkflow => "empty-workflow",
            DiagnosticKind::DuplicateTask => "duplicate-task",
            DiagnosticKind::InvalidTaskName => "invalid-task-name",
            DiagnosticKind::ZeroProcs => "zero-procs",
            DiagnosticKind::ProcBounds => "proc-bounds",
            DiagnosticKind::TaskBounds => "task-bounds",
            DiagnosticKind::InvalidDataset => "invalid-dataset",
            DiagnosticKind::DanglingConsume => "dangling-consume",
            DiagnosticKind::UnconsumedProduce => "unconsumed-produce",
            DiagnosticKind::DuplicateEdge => "duplicate-edge",
            DiagnosticKind::SelfLoop => "self-loop",
            DiagnosticKind::Cycle => "cycle",
            DiagnosticKind::SandboxCap => "sandbox-cap",
            DiagnosticKind::EngineError => "engine-error",
            DiagnosticKind::IncompleteRun => "incomplete-run",
        }
    }

    /// The kind with the given wire code, if any.
    pub fn from_code(code: &str) -> Option<DiagnosticKind> {
        DiagnosticKind::ALL
            .iter()
            .copied()
            .find(|k| k.code() == code)
    }

    /// The diagnostic category for a YAML parse-failure kind.  Each parser
    /// category maps onto the matching diagnostic so evaluation tables can
    /// break "did not parse" down by cause; kinds without a dedicated
    /// diagnostic fold into [`DiagnosticKind::Syntax`] / `ParseError`.
    pub fn from_yaml_error(kind: wfspeak_wyaml::ErrorKind) -> DiagnosticKind {
        use wfspeak_wyaml::ErrorKind as Y;
        match kind {
            Y::BadIndentation => DiagnosticKind::BadIndentation,
            Y::TabIndent => DiagnosticKind::TabIndent,
            Y::UnterminatedString => DiagnosticKind::UnterminatedString,
            Y::UnterminatedFlow => DiagnosticKind::UnterminatedFlow,
            Y::DuplicateKey => DiagnosticKind::DuplicateKey,
            Y::Unsupported => DiagnosticKind::UnsupportedYaml,
            Y::ExpectedMapping | Y::ExpectedSequence => DiagnosticKind::Syntax,
            Y::Other => DiagnosticKind::ParseError,
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A single finding from validating a configuration, task code or spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What category of problem this is.
    pub kind: DiagnosticKind,
    /// Severity of the finding.
    pub severity: Severity,
    /// Path into the artifact (task or field name), when known.
    pub path: Option<String>,
    /// 1-based source line, when known.
    pub line: Option<usize>,
    /// 1-based source column, when known.
    pub column: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Construct a diagnostic with an explicit severity.
    pub fn new(kind: DiagnosticKind, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            severity,
            path: None,
            line: None,
            column: None,
            message: message.into(),
        }
    }

    /// Construct an error diagnostic.
    pub fn error(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Diagnostic::new(kind, Severity::Error, message)
    }

    /// Construct a warning diagnostic.
    pub fn warning(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Diagnostic::new(kind, Severity::Warning, message)
    }

    /// Construct an informational diagnostic.
    pub fn info(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Diagnostic::new(kind, Severity::Info, message)
    }

    /// Attach a path into the artifact (e.g. a task or field name).
    pub fn at_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Attach a 1-based source line.
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attach a 1-based source line and optional column.
    pub fn at_position(mut self, line: usize, column: Option<usize>) -> Self {
        self.line = Some(line);
        self.column = column;
        self
    }

    /// The stable wire code of this diagnostic's kind.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// True when this finding is error severity.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Machine-serializable wire form: a single JSON object with `kind`,
    /// `severity`, `message` and — when known — `path`, `line`, `column`.
    pub fn wire_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.message.len());
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind.code());
        out.push_str("\",\"severity\":\"");
        out.push_str(self.severity.label());
        out.push('"');
        if let Some(path) = &self.path {
            out.push_str(",\"path\":\"");
            escape_json_into(&mut out, path);
            out.push('"');
        }
        if let Some(line) = self.line {
            out.push_str(",\"line\":");
            out.push_str(&line.to_string());
        }
        if let Some(column) = self.column {
            out.push_str(",\"column\":");
            out.push_str(&column.to_string());
        }
        out.push_str(",\"message\":\"");
        escape_json_into(&mut out, &self.message);
        out.push_str("\"}");
        out
    }
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.kind.code(),
            self.message
        )?;
        let mut at = Vec::new();
        if let Some(path) = &self.path {
            at.push(path.clone());
        }
        if let Some(line) = self.line {
            match self.column {
                Some(col) => at.push(format!("line {line}, column {col}")),
                None => at.push(format!("line {line}")),
            }
        }
        if !at.is_empty() {
            write!(f, " ({})", at.join(", "))?;
        }
        Ok(())
    }
}

/// The outcome of validating one artifact against one system model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// All findings, in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// An empty (fully valid) report.
    pub fn valid() -> Self {
        ValidationReport::default()
    }

    /// A report over a pre-built list of findings.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        ValidationReport { diagnostics }
    }

    /// Add a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// True when no error-severity findings exist.
    pub fn is_valid(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// The first error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// Findings with a specific wire code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics
            .iter()
            .filter(move |d| d.kind.code() == code)
    }

    /// True if any finding carries the given wire code.
    pub fn has_code(&self, code: &str) -> bool {
        self.with_code(code).next().is_some()
    }

    /// Findings of a specific kind.
    pub fn with_kind(&self, kind: DiagnosticKind) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.diagnostics.iter().filter(move |d| d.kind == kind)
    }

    /// True if any finding is of the given kind.
    pub fn has_kind(&self, kind: DiagnosticKind) -> bool {
        self.with_kind(kind).next().is_some()
    }

    /// Merge another report's findings into this one.
    pub fn merge(&mut self, other: ValidationReport) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "valid (no findings)");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid() {
        let r = ValidationReport::valid();
        assert!(r.is_valid());
        assert_eq!(r.error_count(), 0);
        assert_eq!(format!("{r}"), "valid (no findings)");
    }

    #[test]
    fn errors_invalidate_warnings_do_not() {
        let mut r = ValidationReport::valid();
        r.push(Diagnostic::warning(
            DiagnosticKind::RedundantCall,
            "extra executor config",
        ));
        assert!(r.is_valid());
        r.push(Diagnostic::error(
            DiagnosticKind::HallucinatedCall,
            "henson_put does not exist",
        ));
        assert!(!r.is_valid());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(
            r.first_error().unwrap().kind,
            DiagnosticKind::HallucinatedCall
        );
    }

    #[test]
    fn lookup_by_code_and_kind() {
        let mut r = ValidationReport::valid();
        r.push(Diagnostic::error(DiagnosticKind::UnknownField, "inputs"));
        r.push(Diagnostic::error(DiagnosticKind::UnknownField, "outputs"));
        r.push(Diagnostic::info(DiagnosticKind::Note, "something"));
        assert!(r.has_code("unknown-field"));
        assert_eq!(r.with_code("unknown-field").count(), 2);
        assert!(!r.has_code("missing-call"));
        assert!(r.has_kind(DiagnosticKind::Note));
        assert_eq!(r.with_kind(DiagnosticKind::UnknownField).count(), 2);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = ValidationReport::valid();
        a.push(Diagnostic::info(DiagnosticKind::Note, "x"));
        let mut b = ValidationReport::valid();
        b.push(Diagnostic::error(DiagnosticKind::Schema, "y"));
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
        assert!(!a.is_valid());
    }

    #[test]
    fn display_formats_severity_and_code() {
        let d = Diagnostic::error(DiagnosticKind::MissingCall, "henson_yield not found");
        assert_eq!(
            format!("{d}"),
            "error[missing-call]: henson_yield not found"
        );
        assert!(format!("{}", Diagnostic::info(DiagnosticKind::Note, "m")).starts_with("info"));
    }

    #[test]
    fn display_appends_position_and_path() {
        let d = Diagnostic::error(DiagnosticKind::ParseError, "bad token")
            .at_position(3, Some(7))
            .at_path("tasks[0]");
        assert_eq!(
            format!("{d}"),
            "error[parse-error]: bad token (tasks[0], line 3, column 7)"
        );
        let line_only = Diagnostic::warning(DiagnosticKind::Schema, "odd").at_line(2);
        assert_eq!(format!("{line_only}"), "warning[schema]: odd (line 2)");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn kind_codes_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for kind in DiagnosticKind::ALL {
            assert!(seen.insert(kind.code()), "duplicate code {}", kind.code());
            assert_eq!(DiagnosticKind::from_code(kind.code()), Some(*kind));
        }
        assert_eq!(DiagnosticKind::from_code("no-such-kind"), None);
    }

    #[test]
    fn yaml_error_kinds_map_onto_diagnostic_categories() {
        use wfspeak_wyaml::ErrorKind as Y;
        // Every parser category maps to a diagnostic whose wire code equals
        // the parser's own failure-category code (or a generic fallback).
        for kind in Y::ALL {
            let diag = DiagnosticKind::from_yaml_error(*kind);
            match kind {
                Y::ExpectedMapping | Y::ExpectedSequence => {
                    assert_eq!(diag, DiagnosticKind::Syntax)
                }
                _ => assert_eq!(diag.code(), kind.code(), "{kind:?}"),
            }
        }
        assert_eq!(
            DiagnosticKind::from_yaml_error(Y::TabIndent),
            DiagnosticKind::TabIndent
        );
        assert_eq!(
            DiagnosticKind::from_yaml_error(Y::Other),
            DiagnosticKind::ParseError
        );
    }

    #[test]
    fn wire_json_shape() {
        let d = Diagnostic::error(DiagnosticKind::DanglingConsume, "no producer for `grid`")
            .at_path("consumer1");
        assert_eq!(
            d.wire_json(),
            "{\"kind\":\"dangling-consume\",\"severity\":\"error\",\
             \"path\":\"consumer1\",\"message\":\"no producer for `grid`\"}"
        );
        let with_pos = Diagnostic::warning(DiagnosticKind::Schema, "x").at_position(4, Some(2));
        assert_eq!(
            with_pos.wire_json(),
            "{\"kind\":\"schema\",\"severity\":\"warning\",\"line\":4,\"column\":2,\
             \"message\":\"x\"}"
        );
    }

    #[test]
    fn wire_json_escapes_special_characters() {
        let d = Diagnostic::error(DiagnosticKind::ParseError, "quote \" slash \\ newline \n");
        let json = d.wire_json();
        assert!(json.contains("quote \\\" slash \\\\ newline \\n"));
        // The wire form must be a single line (newline-delimited protocol).
        assert!(!json.contains('\n'));
    }
}
