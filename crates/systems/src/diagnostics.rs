//! Validation diagnostics shared by every system model.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (does not invalidate the artifact).
    Info,
    /// Suspicious but tolerated (e.g. redundant boilerplate).
    Warning,
    /// The artifact is wrong for this system (unknown field, hallucinated
    /// API call, missing required call, parse failure).
    Error,
}

/// A single finding from validating a configuration or task code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Short machine-friendly code (`unknown-field`, `hallucinated-call`,
    /// `missing-call`, `redundant-call`, `parse-error`, ...).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: code.to_owned(),
            message: message.into(),
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code: code.to_owned(),
            message: message.into(),
        }
    }

    /// Construct an informational diagnostic.
    pub fn info(code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            code: code.to_owned(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}]: {}", self.code, self.message)
    }
}

/// The outcome of validating one artifact against one system model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// All findings, in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// An empty (fully valid) report.
    pub fn valid() -> Self {
        ValidationReport::default()
    }

    /// Add a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// True when no error-severity findings exist.
    pub fn is_valid(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Findings with a specific code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// True if any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.with_code(code).next().is_some()
    }

    /// Merge another report's findings into this one.
    pub fn merge(&mut self, other: ValidationReport) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "valid (no findings)");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid() {
        let r = ValidationReport::valid();
        assert!(r.is_valid());
        assert_eq!(r.error_count(), 0);
        assert_eq!(format!("{r}"), "valid (no findings)");
    }

    #[test]
    fn errors_invalidate_warnings_do_not() {
        let mut r = ValidationReport::valid();
        r.push(Diagnostic::warning(
            "redundant-call",
            "extra executor config",
        ));
        assert!(r.is_valid());
        r.push(Diagnostic::error(
            "hallucinated-call",
            "henson_put does not exist",
        ));
        assert!(!r.is_valid());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn lookup_by_code() {
        let mut r = ValidationReport::valid();
        r.push(Diagnostic::error("unknown-field", "inputs"));
        r.push(Diagnostic::error("unknown-field", "outputs"));
        r.push(Diagnostic::info("note", "something"));
        assert!(r.has_code("unknown-field"));
        assert_eq!(r.with_code("unknown-field").count(), 2);
        assert!(!r.has_code("missing-call"));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = ValidationReport::valid();
        a.push(Diagnostic::info("a", "x"));
        let mut b = ValidationReport::valid();
        b.push(Diagnostic::error("b", "y"));
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
        assert!(!a.is_valid());
    }

    #[test]
    fn display_formats_severity_and_code() {
        let d = Diagnostic::error("missing-call", "henson_yield not found");
        assert_eq!(
            format!("{d}"),
            "error[missing-call]: henson_yield not found"
        );
        assert!(format!("{}", Diagnostic::info("i", "m")).starts_with("info"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
