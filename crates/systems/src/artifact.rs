//! From configuration artifact to executable workflow specification.
//!
//! The execution-validated evaluation needs one entry point that takes a
//! *generated* configuration file for any of the structural-configuration
//! systems (Wilkins, ADIOS2, Henson) and recovers the neutral
//! [`WorkflowSpec`] it describes, reporting the same diagnostics the
//! system's validator produces along the way.  Systems whose configuration
//! describes the execution environment rather than workflow structure
//! (Parsl, PyCOMPSs) have nothing to execute and report that as an error.

use wfspeak_corpus::WorkflowSystemId;

use crate::adios2::Adios2Config;
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::henson::HensonScript;
use crate::spec::WorkflowSpec;
use crate::wilkins::WilkinsConfig;

/// Parse a configuration artifact for `system` into a [`WorkflowSpec`].
///
/// Returns the recovered spec (when the artifact's structure could be
/// parsed at all) together with the validator's full diagnostic report; a
/// spec may be returned alongside an *invalid* report when the artifact
/// parses but violates the system's schema, letting callers grade "parsed
/// but wrong" separately from "unparseable".
pub fn workflow_spec_from_config(
    system: WorkflowSystemId,
    source: &str,
) -> (Option<WorkflowSpec>, ValidationReport) {
    let spec_name = format!("{}-workflow", system.name().to_lowercase());
    match system {
        WorkflowSystemId::Wilkins => {
            let (config, report) = WilkinsConfig::parse(source);
            (config.map(|c| c.to_spec(&spec_name)), report)
        }
        WorkflowSystemId::Adios2 => {
            let (config, mut report) = Adios2Config::parse(source);
            let spec = config.and_then(|c| unwrap_spec(c.to_spec(&spec_name), &mut report));
            (spec, report)
        }
        WorkflowSystemId::Henson => {
            let (script, mut report) = HensonScript::parse(source);
            let spec = script.and_then(|s| unwrap_spec(s.to_spec(&spec_name), &mut report));
            (spec, report)
        }
        WorkflowSystemId::Parsl | WorkflowSystemId::PyCompss => {
            let mut report = ValidationReport::valid();
            report.push(Diagnostic::error(
                DiagnosticKind::NoStructuralConfig,
                format!(
                    "{} configurations describe the execution environment, \
                     not workflow structure; there is nothing to execute",
                    system.name()
                ),
            ));
            (None, report)
        }
    }
}

/// Fold a `to_spec` failure (a config naming zero tasks) into the report.
fn unwrap_spec(
    result: Result<WorkflowSpec, Diagnostic>,
    report: &mut ValidationReport,
) -> Option<WorkflowSpec> {
    match result {
        Ok(spec) => Some(spec),
        Err(diagnostic) => {
            report.push(diagnostic);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::configs::{
        ADIOS2_3NODE, HENSON_2NODE, HENSON_3NODE, WILKINS_3NODE,
    };

    #[test]
    fn wilkins_reference_reconstructs_the_paper_spec_exactly() {
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Wilkins, WILKINS_3NODE);
        assert!(report.is_valid(), "{report}");
        assert_eq!(spec.unwrap().tasks, WorkflowSpec::paper_3node().tasks);
    }

    #[test]
    fn henson_reference_reconstructs_the_paper_spec_exactly() {
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Henson, HENSON_3NODE);
        assert!(report.is_valid(), "{report}");
        assert_eq!(spec.unwrap().tasks, WorkflowSpec::paper_3node().tasks);
    }

    #[test]
    fn adios2_reference_reconstructs_the_paper_dataflow() {
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Adios2, ADIOS2_3NODE);
        assert!(report.is_valid(), "{report}");
        let spec = spec.unwrap();
        // ADIOS2 configs carry no process counts, so only the dataflow (not
        // nprocs) matches the paper spec.
        assert!(spec.validate().is_empty());
        assert_eq!(spec.datasets(), vec!["grid", "particles"]);
        let mut edges = spec.edges();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("producer".into(), "consumer1".into(), "grid".into()),
                ("producer".into(), "consumer2".into(), "particles".into()),
            ]
        );
    }

    #[test]
    fn henson_two_node_script_yields_tasks_without_inferred_dataflow() {
        // The 2-node exemplar's consumer is `./consumer.so` — no dataset
        // suffix — so only the task/process structure is recoverable.
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Henson, HENSON_2NODE);
        assert!(report.is_valid(), "{report}");
        let spec = spec.unwrap();
        assert_eq!(spec.tasks.len(), 2);
        assert!(spec.edges().is_empty());
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn parsed_but_invalid_artifacts_keep_their_spec_and_diagnostics() {
        // An unknown task field is a schema error yet the structure parses.
        let cfg = "tasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n";
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Wilkins, cfg);
        assert!(spec.is_some());
        assert!(!report.is_valid());
        assert!(report.has_code("unknown-field"));
    }

    #[test]
    fn unparseable_artifacts_yield_no_spec() {
        let (spec, report) = workflow_spec_from_config(
            WorkflowSystemId::Wilkins,
            "workflow:\n  name: x\n", // missing `tasks`
        );
        assert!(spec.is_none());
        assert!(!report.is_valid());

        let (spec, report) = workflow_spec_from_config(
            WorkflowSystemId::Henson,
            "int main() { return 0; }\n", // task code, not a script
        );
        assert!(spec.is_none());
        assert!(!report.is_valid());
    }

    #[test]
    fn environment_config_systems_are_not_executable() {
        for system in [WorkflowSystemId::Parsl, WorkflowSystemId::PyCompss] {
            let (spec, report) = workflow_spec_from_config(system, "anything");
            assert!(spec.is_none());
            assert!(report.has_code("no-structural-config"));
        }
    }
}
