//! From generated artifact to executable workflow specification.
//!
//! The execution-validated evaluation needs one entry point that takes a
//! *generated* artifact for any of the five systems and recovers the
//! neutral [`WorkflowSpec`] it describes, reporting the same diagnostics
//! the system's validator produces along the way.  For the
//! structural-configuration systems (Wilkins, ADIOS2, Henson) the artifact
//! is a configuration file; for Parsl and PyCOMPSs — whose configuration
//! files describe the execution environment, not the graph — it is the
//! annotated task code, whose app decorators and parameter directions carry
//! the workflow structure instead.

use wfspeak_corpus::WorkflowSystemId;

use crate::adios2::Adios2Config;
use crate::diagnostics::{Diagnostic, ValidationReport};
use crate::henson::HensonScript;
use crate::parsl::ParslScript;
use crate::pycompss::PyCompssScript;
use crate::spec::WorkflowSpec;
use crate::wilkins::WilkinsConfig;

/// Parse a generated artifact for `system` into a [`WorkflowSpec`].
///
/// Returns the recovered spec (when the artifact's structure could be
/// parsed at all) together with the validator's full diagnostic report; a
/// spec may be returned alongside an *invalid* report when the artifact
/// parses but violates the system's schema, letting callers grade "parsed
/// but wrong" separately from "unparseable".
pub fn workflow_spec_from_config(
    system: WorkflowSystemId,
    source: &str,
) -> (Option<WorkflowSpec>, ValidationReport) {
    let spec_name = format!("{}-workflow", system.name().to_lowercase());
    match system {
        WorkflowSystemId::Wilkins => {
            let (config, report) = WilkinsConfig::parse(source);
            (config.map(|c| c.to_spec(&spec_name)), report)
        }
        WorkflowSystemId::Adios2 => {
            let (config, mut report) = Adios2Config::parse(source);
            let spec = config.and_then(|c| unwrap_spec(c.to_spec(&spec_name), &mut report));
            (spec, report)
        }
        WorkflowSystemId::Henson => {
            let (script, mut report) = HensonScript::parse(source);
            let spec = script.and_then(|s| unwrap_spec(s.to_spec(&spec_name), &mut report));
            (spec, report)
        }
        WorkflowSystemId::Parsl => {
            let (script, mut report) = ParslScript::parse(source);
            let spec = script.and_then(|s| unwrap_spec(s.to_spec(&spec_name), &mut report));
            (spec, report)
        }
        WorkflowSystemId::PyCompss => {
            let (script, mut report) = PyCompssScript::parse(source);
            let spec = script.and_then(|s| unwrap_spec(s.to_spec(&spec_name), &mut report));
            (spec, report)
        }
    }
}

/// Fold a `to_spec` failure (a config naming zero tasks) into the report.
fn unwrap_spec(
    result: Result<WorkflowSpec, Diagnostic>,
    report: &mut ValidationReport,
) -> Option<WorkflowSpec> {
    match result {
        Ok(spec) => Some(spec),
        Err(diagnostic) => {
            report.push(diagnostic);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::configs::{
        ADIOS2_3NODE, HENSON_2NODE, HENSON_3NODE, WILKINS_3NODE,
    };

    #[test]
    fn wilkins_reference_reconstructs_the_paper_spec_exactly() {
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Wilkins, WILKINS_3NODE);
        assert!(report.is_valid(), "{report}");
        assert_eq!(spec.unwrap().tasks, WorkflowSpec::paper_3node().tasks);
    }

    #[test]
    fn henson_reference_reconstructs_the_paper_spec_exactly() {
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Henson, HENSON_3NODE);
        assert!(report.is_valid(), "{report}");
        assert_eq!(spec.unwrap().tasks, WorkflowSpec::paper_3node().tasks);
    }

    #[test]
    fn adios2_reference_reconstructs_the_paper_dataflow() {
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Adios2, ADIOS2_3NODE);
        assert!(report.is_valid(), "{report}");
        let spec = spec.unwrap();
        // ADIOS2 configs carry no process counts, so only the dataflow (not
        // nprocs) matches the paper spec.
        assert!(spec.validate().is_empty());
        assert_eq!(spec.datasets(), vec!["grid", "particles"]);
        let mut edges = spec.edges();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("producer".into(), "consumer1".into(), "grid".into()),
                ("producer".into(), "consumer2".into(), "particles".into()),
            ]
        );
    }

    #[test]
    fn henson_two_node_script_yields_tasks_without_inferred_dataflow() {
        // The 2-node exemplar's consumer is `./consumer.so` — no dataset
        // suffix — so only the task/process structure is recoverable.
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Henson, HENSON_2NODE);
        assert!(report.is_valid(), "{report}");
        let spec = spec.unwrap();
        assert_eq!(spec.tasks.len(), 2);
        assert!(spec.edges().is_empty());
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn parsed_but_invalid_artifacts_keep_their_spec_and_diagnostics() {
        // An unknown task field is a schema error yet the structure parses.
        let cfg = "tasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n";
        let (spec, report) = workflow_spec_from_config(WorkflowSystemId::Wilkins, cfg);
        assert!(spec.is_some());
        assert!(!report.is_valid());
        assert!(report.has_code("unknown-field"));
    }

    #[test]
    fn unparseable_artifacts_yield_no_spec() {
        let (spec, report) = workflow_spec_from_config(
            WorkflowSystemId::Wilkins,
            "workflow:\n  name: x\n", // missing `tasks`
        );
        assert!(spec.is_none());
        assert!(!report.is_valid());

        let (spec, report) = workflow_spec_from_config(
            WorkflowSystemId::Henson,
            "int main() { return 0; }\n", // task code, not a script
        );
        assert!(spec.is_none());
        assert!(!report.is_valid());
    }

    #[test]
    fn python_systems_reconstruct_specs_from_annotated_code() {
        use wfspeak_corpus::references::annotated::{PARSL_PRODUCER, PYCOMPSS_PRODUCER};
        for (system, reference) in [
            (WorkflowSystemId::Parsl, PARSL_PRODUCER),
            (WorkflowSystemId::PyCompss, PYCOMPSS_PRODUCER),
        ] {
            let (spec, report) = workflow_spec_from_config(system, reference);
            assert!(report.is_valid(), "{system}: {report}");
            let spec = spec.unwrap();
            assert_eq!(
                spec.name,
                format!("{}-workflow", system.name().to_lowercase())
            );
            assert_eq!(spec.tasks.len(), 1, "{system}");
            assert_eq!(spec.tasks[0].name, "produce");
            assert_eq!(spec.tasks[0].nprocs, 1);
            assert_eq!(spec.tasks[0].data[0].dataset, "output");
            // A solo producer's unconsumed output is a warning, not an
            // error: the spec still executes.
            assert!(
                spec.is_structurally_valid(),
                "{system}: {:?}",
                spec.validate()
            );
        }
    }

    #[test]
    fn python_systems_reject_unannotated_code() {
        for system in [WorkflowSystemId::Parsl, WorkflowSystemId::PyCompss] {
            let (spec, report) =
                workflow_spec_from_config(system, "def produce(n):\n    return n\n");
            assert!(spec.is_none(), "{system}");
            assert!(!report.is_valid(), "{system}");
        }
    }
}
