//! ADIOS2: I/O middleware used as a workflow coupling layer.
//!
//! Two artifacts matter for the benchmark: the YAML runtime configuration
//! (a list of `IO` definitions with an `Engine` and optional `Variables`)
//! and task codes annotated with the `adios2_*` C API.

use wfspeak_codemodel::lexer::Language;
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_wyaml::{parse as yaml_parse, Value};

use crate::annotate::validate_task_code;
use crate::api::{catalog_for, ApiCatalog};
use crate::diagnostics::{Diagnostic, DiagnosticKind, ValidationReport};
use crate::spec::{DataRole, WorkflowSpec};
use crate::WorkflowSystem;

/// Engine types ADIOS2 actually ships.
pub const REAL_ENGINES: &[&str] = &[
    "SST",
    "BP4",
    "BP5",
    "BPFile",
    "HDF5",
    "DataMan",
    "Inline",
    "SSC",
    "Null",
    "FileStream",
];

/// One `IO` definition in an ADIOS2 YAML configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adios2Io {
    /// IO name (the string passed to `adios2_declare_io`).
    pub name: String,
    /// Engine type (e.g. `SST`, `BP5`).
    pub engine: String,
    /// Declared variables (name only; shapes are free-form).
    pub variables: Vec<String>,
}

/// A parsed ADIOS2 runtime configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Adios2Config {
    /// IO definitions in file order.
    pub ios: Vec<Adios2Io>,
}

impl Adios2Config {
    /// Parse an ADIOS2 YAML configuration, reporting schema violations.
    pub fn parse(source: &str) -> (Option<Adios2Config>, ValidationReport) {
        let mut report = ValidationReport::valid();
        let catalog = catalog_for(WorkflowSystemId::Adios2);
        let doc = match yaml_parse(source) {
            Ok(d) => d,
            Err(e) => {
                report.push(
                    Diagnostic::error(
                        DiagnosticKind::from_yaml_error(e.kind),
                        format!("{}: {}", e.kind, e.message),
                    )
                    .at_position(e.line(), Some(e.column())),
                );
                return (None, report);
            }
        };
        let list = match doc.as_seq() {
            Some(s) => s,
            None => {
                report.push(Diagnostic::error(
                    DiagnosticKind::Schema,
                    format!(
                        "an ADIOS2 YAML config is a list of IO definitions, found {}",
                        doc.type_name()
                    ),
                ));
                return (None, report);
            }
        };
        let mut ios = Vec::new();
        for (idx, entry) in list.iter().enumerate() {
            let map = match entry.as_map() {
                Some(m) => m,
                None => {
                    report.push(Diagnostic::error(
                        DiagnosticKind::Schema,
                        format!("IO definition #{idx} must be a mapping"),
                    ));
                    continue;
                }
            };
            let mut io = Adios2Io {
                name: String::new(),
                engine: String::new(),
                variables: Vec::new(),
            };
            for (key, value) in map.iter() {
                match key.as_str() {
                    "IO" => io.name = value.as_str().unwrap_or_default().to_owned(),
                    "Engine" => {
                        if let Some(engine_map) = value.as_map() {
                            for (ek, ev) in engine_map.iter() {
                                if ek == "Type" {
                                    io.engine = ev.as_str().unwrap_or_default().to_owned();
                                } else if !catalog.is_real_config_field(ek) {
                                    report.push(Diagnostic::warning(DiagnosticKind::UnknownParameter, format!("IO `{0}`: engine parameter `{ek}` is not a common ADIOS2 parameter", io.name),
                                    ));
                                }
                            }
                        } else if let Some(s) = value.as_str() {
                            io.engine = s.to_owned();
                        }
                    }
                    "Variables" => {
                        if let Some(vars) = value.as_seq() {
                            for v in vars {
                                if let Some(name) = v
                                    .get("Variable")
                                    .and_then(Value::as_str)
                                    .or_else(|| v.as_str())
                                {
                                    io.variables.push(name.to_owned());
                                }
                            }
                        }
                    }
                    other if catalog.is_real_config_field(other) => {}
                    other => {
                        report.push(Diagnostic::error(DiagnosticKind::UnknownField, format!("IO definition #{idx}: field `{other}` does not exist in ADIOS2 configs"),
                        ));
                    }
                }
            }
            if io.name.is_empty() {
                report.push(Diagnostic::error(
                    DiagnosticKind::Schema,
                    format!("IO definition #{idx} is missing the `IO` name"),
                ));
                continue;
            }
            if io.engine.is_empty() {
                report.push(Diagnostic::warning(
                    DiagnosticKind::Schema,
                    format!(
                        "IO `{}` does not set an engine type; BPFile is assumed",
                        io.name
                    ),
                ));
                io.engine = "BPFile".to_owned();
            } else if !REAL_ENGINES.contains(&io.engine.as_str()) {
                report.push(Diagnostic::error(
                    DiagnosticKind::UnknownEngine,
                    format!(
                        "IO `{}` uses engine `{}` which ADIOS2 does not provide",
                        io.name, io.engine
                    ),
                ));
            }
            ios.push(io);
        }
        if ios.is_empty() {
            report.push(Diagnostic::error(
                DiagnosticKind::Schema,
                "configuration defines no IO entries",
            ));
            return (None, report);
        }
        (Some(Adios2Config { ios }), report)
    }

    /// Reconstruct the neutral workflow specification the configuration
    /// describes (for the runtime).
    ///
    /// An ADIOS2 config names IO streams, not tasks, so the task graph is
    /// recovered from the reference layout conventions: every IO that
    /// declares `Variables` is a writer stream whose variables one producer
    /// task publishes; every variable-less IO is a reader stream consumed by
    /// its own consumer task.  A reader named `<X>Reader` (or `<X>Input`)
    /// matches the declared variable whose capitalised name is `<X>`;
    /// readers that match nothing consume the IO name lowercased.  Process
    /// counts are not part of an ADIOS2 config, so every task gets one.
    ///
    /// A configuration that names zero IO streams describes no tasks at all;
    /// that is reported as a parse-stage diagnostic rather than silently
    /// yielding an empty (vacuously valid) spec.
    pub fn to_spec(&self, name: &str) -> Result<WorkflowSpec, Diagnostic> {
        use crate::spec::TaskSpec;
        if self.ios.is_empty() {
            return Err(Diagnostic::error(
                DiagnosticKind::EmptyWorkflow,
                "the ADIOS2 configuration defines no IO streams, so no tasks can be recovered",
            ));
        }
        let produced: Vec<&str> = {
            let mut seen = std::collections::HashSet::new();
            self.ios
                .iter()
                .flat_map(|io| io.variables.iter())
                .map(String::as_str)
                .filter(|v| seen.insert(*v))
                .collect()
        };
        let mut spec = WorkflowSpec::new(name);
        if !produced.is_empty() {
            let mut producer = TaskSpec::new("producer", 1);
            for dataset in &produced {
                producer = producer.produces(dataset);
            }
            spec.tasks.push(producer);
        }
        let mut consumer_index = 0usize;
        for io in &self.ios {
            if !io.variables.is_empty() {
                continue;
            }
            let stem = io.name.trim_end_matches("Reader").trim_end_matches("Input");
            let dataset = produced
                .iter()
                .find(|v| capitalize(v) == stem)
                .map(|v| (*v).to_owned())
                .unwrap_or_else(|| io.name.to_lowercase());
            consumer_index += 1;
            spec.tasks
                .push(TaskSpec::new(&format!("consumer{consumer_index}"), 1).consumes(&dataset));
        }
        Ok(spec)
    }

    /// Render the canonical reference layout for a workflow spec: one writer
    /// IO per produced dataset (with the variable declared) and one reader
    /// IO per consumed dataset, all over SST for in situ exchange.
    pub fn render_for_spec(spec: &WorkflowSpec) -> String {
        let mut out = String::from("---\n");
        // Writer streams (producer side), in dataset order.
        for task in &spec.tasks {
            for req in &task.data {
                if req.role == DataRole::Produces {
                    let stream = format!("{}Stream", capitalize(&req.dataset));
                    out.push_str(&format!("- IO: {stream}\n"));
                    out.push_str("  Engine:\n    Type: SST\n    RendezvousReaderCount: 1\n    QueueLimit: 1\n");
                    out.push_str("  Variables:\n");
                    out.push_str(&format!("    - Variable: {}\n", req.dataset));
                    let shape = if req.dataset == "grid" {
                        "[64, 64]"
                    } else {
                        "[1024, 3]"
                    };
                    out.push_str(&format!("      Shape: {shape}\n      Type: float\n"));
                }
            }
        }
        // Reader streams (consumer side).
        for task in &spec.tasks {
            for req in &task.data {
                if req.role == DataRole::Consumes {
                    let stream = format!("{}Reader", capitalize(&req.dataset));
                    out.push_str(&format!("- IO: {stream}\n"));
                    out.push_str("  Engine:\n    Type: SST\n");
                }
            }
        }
        out
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// The ADIOS2 system model.
#[derive(Debug)]
pub struct Adios2System {
    api: ApiCatalog,
}

impl Adios2System {
    /// Create the model.
    pub fn new() -> Self {
        Adios2System {
            api: catalog_for(WorkflowSystemId::Adios2),
        }
    }
}

impl Default for Adios2System {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkflowSystem for Adios2System {
    fn id(&self) -> WorkflowSystemId {
        WorkflowSystemId::Adios2
    }

    fn api(&self) -> &ApiCatalog {
        &self.api
    }

    fn validate_config(&self, config: &str) -> ValidationReport {
        let (_, report) = Adios2Config::parse(config);
        report
    }

    fn validate_task_code(&self, code: &str) -> ValidationReport {
        validate_task_code(&self.api, code, Language::C, &[])
    }

    fn generate_config(&self, spec: &WorkflowSpec) -> Option<String> {
        Some(Adios2Config::render_for_spec(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::{annotated, configs};

    #[test]
    fn reference_config_parses_cleanly() {
        let (config, report) = Adios2Config::parse(configs::ADIOS2_3NODE);
        assert!(report.is_valid(), "{report}");
        let config = config.unwrap();
        assert_eq!(config.ios.len(), 4);
        assert_eq!(config.ios[0].name, "GridStream");
        assert_eq!(config.ios[0].engine, "SST");
        assert_eq!(config.ios[0].variables, vec!["grid"]);
    }

    #[test]
    fn generated_config_matches_reference() {
        let generated = Adios2Config::render_for_spec(&WorkflowSpec::paper_3node());
        assert_eq!(generated, configs::ADIOS2_3NODE);
    }

    #[test]
    fn generated_2node_matches_fewshot_exemplar_structure() {
        let generated = Adios2Config::render_for_spec(&WorkflowSpec::fewshot_2node());
        let (config, report) = Adios2Config::parse(&generated);
        assert!(report.is_valid());
        assert_eq!(config.unwrap().ios.len(), 2);
    }

    #[test]
    fn unknown_engine_flagged() {
        let cfg = "---\n- IO: Out\n  Engine:\n    Type: FastStream\n";
        let (_, report) = Adios2Config::parse(cfg);
        assert!(report.has_code("unknown-engine"));
        assert!(!report.is_valid());
    }

    #[test]
    fn unknown_field_flagged() {
        let cfg = "---\n- IO: Out\n  Engine:\n    Type: SST\n  Tasks:\n    - producer\n";
        let (_, report) = Adios2Config::parse(cfg);
        assert!(report.has_code("unknown-field"));
    }

    #[test]
    fn mapping_root_rejected() {
        let cfg = "io:\n  name: Out\n";
        let (config, report) = Adios2Config::parse(cfg);
        assert!(config.is_none());
        assert!(report.has_code("schema"));
    }

    #[test]
    fn missing_engine_defaults_with_warning() {
        let cfg = "---\n- IO: Out\n";
        let (config, report) = Adios2Config::parse(cfg);
        assert!(report.is_valid());
        assert_eq!(config.unwrap().ios[0].engine, "BPFile");
        assert!(report.warning_count() >= 1);
    }

    #[test]
    fn reference_annotation_validates() {
        let system = Adios2System::new();
        let report = system.validate_task_code(annotated::ADIOS2_PRODUCER);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn hallucinated_adios_call_detected() {
        let system = Adios2System::new();
        let code = "int main() { adios2_write_step(engine, var, data); }";
        let report = system.validate_task_code(code);
        assert!(report.has_code("hallucinated-call"));
    }

    #[test]
    fn engine_as_plain_string_accepted() {
        let cfg = "---\n- IO: Out\n  Engine: SST\n";
        let (config, report) = Adios2Config::parse(cfg);
        assert!(report.is_valid(), "{report}");
        assert_eq!(config.unwrap().ios[0].engine, "SST");
    }

    #[test]
    fn to_spec_rejects_zero_task_configs() {
        // A config with no IO streams must surface a diagnostic, not a
        // silent empty spec the validate stage would wave through.
        let empty = Adios2Config::default();
        let err = empty.to_spec("adios2-workflow").unwrap_err();
        assert_eq!(err.kind, DiagnosticKind::EmptyWorkflow);
        assert_eq!(err.severity, crate::diagnostics::Severity::Error);
    }

    #[test]
    fn to_spec_recovers_the_reference_graph() {
        let (config, _) = Adios2Config::parse(configs::ADIOS2_3NODE);
        let spec = config.unwrap().to_spec("adios2-workflow").unwrap();
        assert_eq!(spec.tasks.len(), 3);
        assert!(spec.validate().is_empty());
    }

    #[test]
    fn parse_errors_carry_source_positions() {
        let (_, report) = Adios2Config::parse("---\n- IO: \"unterminated\n");
        let diag = report.with_code("unterminated-string").next().unwrap();
        assert_eq!(diag.line, Some(2));
        // Column of the opening quote.
        assert_eq!(diag.column, Some(7));
    }
}
