//! Criterion bench for the in situ runtime substrate: executing the paper's
//! 3-node workflow, wider fan-out variants, and the synthetic topology tiers
//! behind `BENCH_5.json`. `WFSPEAK_SCALING_MAX` bounds the topology tier size
//! so CI can run a cheap smoke (e.g. `WFSPEAK_SCALING_MAX=100`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wfspeak_bench::scaling_max_tasks;
use wfspeak_runtime::{Engine, EngineConfig};
use wfspeak_systems::topo::bench_suite;
use wfspeak_systems::{TaskSpec, WorkflowSpec};

fn fan_out_spec(consumers: usize) -> WorkflowSpec {
    let mut producer = TaskSpec::new("producer", 2);
    let mut spec = WorkflowSpec::new("fanout");
    for i in 0..consumers {
        producer = producer.produces(&format!("ds{i}"));
    }
    spec.tasks.push(producer);
    for i in 0..consumers {
        spec.tasks
            .push(TaskSpec::new(&format!("consumer{i}"), 1).consumes(&format!("ds{i}")));
    }
    spec
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(10);
    let config = EngineConfig {
        timesteps: 3,
        elements: 64,
        ..EngineConfig::default()
    };

    group.bench_function("paper_3node_workflow", |b| {
        let engine = Engine::new(config.clone());
        let spec = WorkflowSpec::paper_3node();
        b.iter(|| black_box(engine.run(&spec).unwrap()))
    });

    for consumers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("fan_out_consumers", consumers),
            &consumers,
            |b, &consumers| {
                let engine = Engine::new(config.clone());
                let spec = fan_out_spec(consumers);
                b.iter(|| black_box(engine.run(&spec).unwrap()))
            },
        );
    }

    let topo_config = EngineConfig {
        timesteps: 3,
        elements: 16,
        timeout_ms: 120_000,
        ..EngineConfig::default()
    };
    let max_tasks = scaling_max_tasks();
    for topo in bench_suite(42) {
        if topo.tasks > max_tasks {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("topo", topo.name()), &topo, |b, topo| {
            let engine = Engine::new(topo_config.clone());
            let spec = topo.generate().normalized();
            b.iter(|| black_box(engine.run(&spec).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
