//! `service_throughput` — measure the batch scoring service over loopback
//! TCP and write the `BENCH_2.json` artifact.
//!
//! Unlike the criterion benches this is a one-shot measurement binary
//! (`harness = false`): it boots a server on an ephemeral port, drives it
//! from several concurrent pipelined clients, prints the headline numbers
//! and records the full report. `repro bench-service` runs the same
//! measurement. See the `wfspeak_bench` crate docs for the report schema.

fn main() {
    // `cargo bench` passes harness flags (`--bench`) — ignored — and runs
    // bench binaries with the package root as cwd, so anchor the artifact
    // to the workspace root.
    wfspeak_bench::run_service_bench(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json"));
}
