//! `execution_throughput` — measure the dynamic-execution pipeline
//! (extraction → spec parsing → engine run → trace scoring) over repeated
//! passes of the configuration-experiment grid and write the `BENCH_4.json`
//! artifact.
//!
//! Like `service_throughput` this is a one-shot measurement binary
//! (`harness = false`): it prints the headline numbers and records the full
//! report. `repro bench-execute` runs the same measurement. See the
//! `wfspeak_bench` crate docs for the report schema.

fn main() {
    // `cargo bench` passes harness flags (`--bench`) — ignored — and runs
    // bench binaries with the package root as cwd, so anchor the artifact
    // to the workspace root.
    wfspeak_bench::run_execution_bench(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json"));
}
