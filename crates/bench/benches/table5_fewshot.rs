//! Criterion bench for the Table 5 pipeline: zero-shot vs few-shot
//! configuration comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfspeak_bench::bench_benchmark;

fn bench_table5(c: &mut Criterion) {
    let benchmark = bench_benchmark();
    let mut group = c.benchmark_group("table5_fewshot");
    group.sample_size(10);
    group.bench_function("zero_vs_few_shot_comparison", |b| {
        b.iter(|| black_box(benchmark.run_few_shot_comparison()))
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
