//! Criterion bench: seed string-pair scoring vs the prepared-reference
//! packed fast path, on the benchmark's real artifacts.
//!
//! This is the bench backing the "≥ 5× on repeated scoring of a fixed
//! reference set" acceptance bar of the zero-allocation n-gram engine. Both
//! sides do the same logical work — score every hypothesis against every
//! reference — but the seed path re-tokenises and re-counts the reference
//! per call and allocates a `Vec` key per n-gram window, while the fast path
//! prepares each reference once and counts packed integer keys.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wfspeak_corpus::references::{annotated, configs};
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};

/// The fixed reference set: every ground-truth artifact the tables score
/// against.
fn references() -> Vec<&'static str> {
    vec![
        configs::WILKINS_3NODE,
        configs::ADIOS2_3NODE,
        configs::HENSON_3NODE,
        annotated::ADIOS2_PRODUCER,
        annotated::HENSON_PRODUCER,
        annotated::PARSL_PRODUCER,
        annotated::PYCOMPSS_PRODUCER,
    ]
}

/// Hypotheses playing the role of model outputs: the sibling artifacts
/// (realistic near-miss material scored against each reference).
fn hypotheses() -> Vec<&'static str> {
    vec![
        configs::WILKINS_2NODE,
        configs::ADIOS2_2NODE,
        configs::HENSON_2NODE,
        annotated::HENSON_PRODUCER,
        annotated::PYCOMPSS_PRODUCER,
    ]
}

fn bench_fastpath(c: &mut Criterion) {
    let bleu = BleuScorer::default();
    let chrf = ChrfScorer::default();
    let refs = references();
    let hyps = hypotheses();
    let scorings = (refs.len() * hyps.len()) as u64;

    let mut group = c.benchmark_group("metrics_fastpath");
    group.throughput(Throughput::Elements(scorings));

    group.bench_function("bleu/seed_string_pair", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for reference in &refs {
                for hyp in &hyps {
                    acc += bleu
                        .breakdown_naive(black_box(hyp), black_box(reference))
                        .score;
                }
            }
            acc
        })
    });
    group.bench_function("bleu/prepared_fast_path", |b| {
        let prepared: Vec<_> = refs.iter().map(|r| Scorer::prepare(&bleu, r)).collect();
        b.iter(|| {
            let mut acc = 0.0;
            for reference in &prepared {
                for hyp in &hyps {
                    acc += bleu.score_prepared(black_box(hyp), black_box(reference));
                }
            }
            acc
        })
    });

    group.bench_function("chrf/seed_string_pair", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for reference in &refs {
                for hyp in &hyps {
                    acc += chrf
                        .breakdown_naive(black_box(hyp), black_box(reference))
                        .score;
                }
            }
            acc
        })
    });
    group.bench_function("chrf/prepared_fast_path", |b| {
        let prepared: Vec<_> = refs.iter().map(|r| Scorer::prepare(&chrf, r)).collect();
        b.iter(|| {
            let mut acc = 0.0;
            for reference in &prepared {
                for hyp in &hyps {
                    acc += chrf.score_prepared(black_box(hyp), black_box(reference));
                }
            }
            acc
        })
    });

    // The fast path including per-call preparation (no reference reuse):
    // isolates packed counting from reference amortisation.
    group.bench_function("bleu/packed_unprepared", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for reference in &refs {
                for hyp in &hyps {
                    acc += bleu.score(black_box(hyp), black_box(reference));
                }
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fastpath);
criterion_main!(benches);
