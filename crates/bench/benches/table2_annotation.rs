//! Criterion bench for the Table 2 pipeline: task-code annotation across all
//! models and systems.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfspeak_bench::bench_benchmark;
use wfspeak_core::PromptVariant;

fn bench_table2(c: &mut Criterion) {
    let benchmark = bench_benchmark();
    let mut group = c.benchmark_group("table2_annotation");
    group.sample_size(10);
    group.bench_function("full_grid", |b| {
        b.iter(|| black_box(benchmark.run_annotation(PromptVariant::Original)))
    });
    group.bench_function("detailed_prompt_grid", |b| {
        b.iter(|| black_box(benchmark.run_annotation(PromptVariant::Detailed)))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
