//! Criterion bench for the Table 1 pipeline: workflow-configuration
//! generation and scoring across all models and systems.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfspeak_bench::bench_benchmark;
use wfspeak_core::PromptVariant;

fn bench_table1(c: &mut Criterion) {
    let benchmark = bench_benchmark();
    let mut group = c.benchmark_group("table1_configuration");
    group.sample_size(10);
    group.bench_function("zero_shot_full_grid", |b| {
        b.iter(|| black_box(benchmark.run_configuration(PromptVariant::Original, false)))
    });
    group.bench_function("few_shot_full_grid", |b| {
        b.iter(|| black_box(benchmark.run_configuration(PromptVariant::Original, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
