//! Criterion bench for the metric substrate: BLEU and ChrF throughput on
//! the benchmark's real artifacts (configs and annotated task codes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wfspeak_corpus::references::{annotated, configs};
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};

fn bench_metrics(c: &mut Criterion) {
    let bleu = BleuScorer::default();
    let chrf = ChrfScorer::default();
    let pairs: Vec<(&str, &str, &str)> = vec![
        (
            "wilkins_config",
            configs::WILKINS_3NODE,
            configs::WILKINS_2NODE,
        ),
        (
            "adios2_code",
            annotated::ADIOS2_PRODUCER,
            annotated::HENSON_PRODUCER,
        ),
        (
            "pycompss_code",
            annotated::PYCOMPSS_PRODUCER,
            annotated::PARSL_PRODUCER,
        ),
    ];
    let mut group = c.benchmark_group("metrics_throughput");
    for (name, hyp, reference) in pairs {
        group.throughput(Throughput::Bytes((hyp.len() + reference.len()) as u64));
        group.bench_function(format!("bleu_{name}"), |b| {
            b.iter(|| black_box(bleu.score(black_box(hyp), black_box(reference))))
        });
        group.bench_function(format!("chrf_{name}"), |b| {
            b.iter(|| black_box(chrf.score(black_box(hyp), black_box(reference))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
