//! Criterion bench for the Figure 1 pipeline: the full prompt-sensitivity
//! sweep (3 experiments x 5 prompt variants x 4 models).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfspeak_bench::bench_benchmark;
use wfspeak_core::{ExperimentKind, PromptVariant};

fn bench_figure1(c: &mut Criterion) {
    let benchmark = bench_benchmark();
    let mut group = c.benchmark_group("figure1_prompt_sensitivity");
    group.sample_size(10);
    group.bench_function("configuration_all_variants", |b| {
        b.iter(|| {
            for variant in PromptVariant::ALL {
                black_box(benchmark.run_experiment(ExperimentKind::Configuration, variant));
            }
        })
    });
    group.bench_function("full_sweep", |b| {
        b.iter(|| black_box(benchmark.run_prompt_sensitivity()))
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
