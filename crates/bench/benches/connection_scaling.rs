//! `connection_scaling` — measure the event-driven server's throughput and
//! latency percentiles across the 4 → 256 → 1024 closed-loop client tiers
//! and write the `BENCH_6.json` artifact.
//!
//! Unlike the criterion benches this is a one-shot measurement binary
//! (`harness = false`): per tier it boots a fresh server on an ephemeral
//! port, drives it from the tier's concurrent synchronous clients, prints
//! the scaling curve and records the full report. `repro bench-connections`
//! runs the same measurement; `WFSPEAK_CONNECTIONS_MAX` bounds the client
//! count so CI can run a cheap smoke (e.g. `WFSPEAK_CONNECTIONS_MAX=64`).
//! See the `wfspeak_bench` crate docs for the report schema.

fn main() {
    // `cargo bench` passes harness flags (`--bench`) — ignored — and runs
    // bench binaries with the package root as cwd, so anchor the artifact
    // to the workspace root.
    wfspeak_bench::run_connection_bench(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json"),
        1,
    );
}
