//! `parse_throughput` — measure wyaml parse throughput over the generated
//! configuration corpus (pre-rewrite baseline vs the rewritten owned and
//! zero-copy entry points) and write the `BENCH_7.json` artifact.
//!
//! Like `execution_throughput` this is a one-shot measurement binary
//! (`harness = false`): it prints the headline numbers and records the full
//! report. `repro bench-parse` runs the same measurement, and
//! `WFSPEAK_PARSE_PASSES` bounds the sweep (the CI smoke uses it). See the
//! `wfspeak_bench` crate docs for the report schema.

fn main() {
    // `cargo bench` passes harness flags (`--bench`) — ignored — and runs
    // bench binaries with the package root as cwd, so anchor the artifact
    // to the workspace root.
    wfspeak_bench::run_parse_bench(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json"));
}
