//! Criterion bench for the Table 3 pipeline: task-code translation across
//! all models and system pairs, plus the rule-based translator baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfspeak_bench::bench_benchmark;
use wfspeak_core::PromptVariant;
use wfspeak_corpus::references::annotation_reference;
use wfspeak_systems::translate::translate;

fn bench_table3(c: &mut Criterion) {
    let benchmark = bench_benchmark();
    let mut group = c.benchmark_group("table3_translation");
    group.sample_size(10);
    group.bench_function("llm_full_grid", |b| {
        b.iter(|| black_box(benchmark.run_translation(PromptVariant::Original)))
    });
    group.bench_function("rule_based_baseline_all_pairs", |b| {
        b.iter(|| {
            for (source, target) in wfspeak_corpus::translation_pairs() {
                let code = annotation_reference(source).unwrap();
                black_box(translate(code, source, target));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
