//! `evaluation_throughput` — measure the full evaluation pipeline
//! (extraction → API-call comparison → BLEU/ChrF) over repeated passes of
//! the three experiment grids and write the `BENCH_3.json` artifact.
//!
//! Like `service_throughput` this is a one-shot measurement binary
//! (`harness = false`): it prints the headline numbers and records the full
//! report. `repro bench-evaluate` runs the same measurement. See the
//! `wfspeak_bench` crate docs for the report schema.

fn main() {
    // `cargo bench` passes harness flags (`--bench`) — ignored — and runs
    // bench binaries with the package root as cwd, so anchor the artifact
    // to the workspace root.
    wfspeak_bench::run_evaluation_bench(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json"));
}
