//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p wfspeak-bench --bin repro            # everything
//! cargo run --release -p wfspeak-bench --bin repro -- table1  # one artifact
//! cargo run --release -p wfspeak-bench --bin repro -- json    # full JSON report
//! ```
//!
//! Artifacts: `table1` (configuration), `table2` (annotation), `table3`
//! (translation), `table4` (qualitative translations), `table5` (few-shot),
//! `table6` (qualitative configurations), `figure1` (prompt sensitivity),
//! `json` (machine-readable full report), `bench` (grid-throughput
//! measurement written to `BENCH_1.json`).

use wfspeak_bench::{measure_grid_throughput, paper_benchmark};
use wfspeak_core::report::{
    qualitative_configurations, qualitative_translations, render_samples, FullReport,
};
use wfspeak_core::{Benchmark, ExperimentKind, PromptVariant};

fn table1(benchmark: &Benchmark) {
    let result = benchmark.run_configuration(PromptVariant::Original, false);
    println!(
        "{}",
        result.render_table(
            "Table 1: Evaluation of various LLMs using code similarity metrics for the workflow configuration experiment"
        )
    );
    println!(
        "Best model: {}    Best workflow system: {}\n",
        result.best_model().unwrap_or_default(),
        result.best_row().unwrap_or_default()
    );
}

fn table2(benchmark: &Benchmark) {
    let result = benchmark.run_annotation(PromptVariant::Original);
    println!(
        "{}",
        result.render_table(
            "Table 2: Evaluation of various LLMs using code similarity metrics for the task code annotation experiment"
        )
    );
    println!(
        "Best model: {}    Best workflow system: {}\n",
        result.best_model().unwrap_or_default(),
        result.best_row().unwrap_or_default()
    );
}

fn table3(benchmark: &Benchmark) {
    let result = benchmark.run_translation(PromptVariant::Original);
    println!(
        "{}",
        result.render_table(
            "Table 3: Evaluation of various LLMs using code similarity metrics for the task code translation experiment"
        )
    );
}

fn table4(benchmark: &Benchmark) {
    let samples = qualitative_translations(benchmark.config().base_seed);
    println!(
        "{}",
        render_samples(
            "Table 4: Translated producer codes for the Henson workflow system (LLaMA-3.3-70B vs Gemini-2.5-Pro); validator findings mark nonexistent API calls",
            &samples
        )
    );
}

fn table5(benchmark: &Benchmark) {
    let comparison = benchmark.run_few_shot_comparison();
    println!("{}", comparison.render_table());
    println!(
        "Few-shot improves every model: {}\n",
        comparison.few_shot_improves_all_models()
    );
}

fn table6(benchmark: &Benchmark) {
    let samples = qualitative_configurations(benchmark.config().base_seed);
    println!(
        "{}",
        render_samples(
            "Table 6: Generated Wilkins configuration files with few-shot (left) and zero-shot (right) prompting using o3; validator findings mark nonexistent fields",
            &samples
        )
    );
}

fn figure1(benchmark: &Benchmark) {
    let sensitivity = benchmark.run_prompt_sensitivity();
    println!("Figure 1: BLEU scores by prompt type and LLM\n");
    for kind in ExperimentKind::ALL {
        for row in kind.row_labels() {
            println!("{}", sensitivity.render_heatmap(kind, &row));
        }
    }
}

fn bench() {
    let report = measure_grid_throughput();
    println!(
        "Grid throughput: {} cells ({} hypotheses, {} metric evaluations) in {:.2}s = {:.1} cells/s",
        report.grid_cells,
        report.scored_hypotheses,
        report.metric_evaluations,
        report.wall_time_secs,
        report.cells_per_sec
    );
    let path = "BENCH_1.json";
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

fn json(benchmark: &Benchmark) {
    let report = FullReport {
        config: benchmark.config().clone(),
        configuration: benchmark.run_configuration(PromptVariant::Original, false),
        annotation: benchmark.run_annotation(PromptVariant::Original),
        translation: benchmark.run_translation(PromptVariant::Original),
        few_shot: benchmark.run_few_shot_comparison(),
        prompt_sensitivity: benchmark.run_prompt_sensitivity(),
    };
    println!("{}", report.to_json());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmark = paper_benchmark();
    // `bench` is deliberately not part of the default run: it rewrites
    // BENCH_1.json (a tracked perf-trajectory snapshot) with run-dependent
    // timings, so it only executes when explicitly requested.
    let selections: Vec<&str> = if args.is_empty() {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "figure1",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for selection in selections {
        match selection {
            "table1" => table1(&benchmark),
            "table2" => table2(&benchmark),
            "table3" => table3(&benchmark),
            "table4" => table4(&benchmark),
            "table5" => table5(&benchmark),
            "table6" => table6(&benchmark),
            "figure1" => figure1(&benchmark),
            "json" => json(&benchmark),
            "bench" => bench(),
            other => eprintln!(
                "unknown artifact `{other}` (expected table1..table6, figure1, json, bench)"
            ),
        }
    }
}
