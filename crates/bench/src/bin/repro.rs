//! `repro` — regenerate the paper's evaluation artifacts and drive the
//! scoring service.
//!
//! ```text
//! cargo run --release -p wfspeak-bench --bin repro                  # everything
//! cargo run --release -p wfspeak-bench --bin repro -- table1       # one artifact
//! cargo run --release -p wfspeak-bench --bin repro -- serve        # scoring server
//! echo "tasks: []" | cargo run --release -p wfspeak-bench --bin repro -- \
//!     score --task configuration --system Henson                   # client
//! ```
//!
//! Run `repro help` for the full subcommand list.

use std::io::Read;

use wfspeak_bench::chaos::{run_chaos_cli, ChaosOptions};
use wfspeak_bench::{measure_grid_throughput, paper_benchmark};
use wfspeak_core::report::{
    qualitative_configurations, qualitative_translations, render_samples, FullReport,
};
use wfspeak_core::{Benchmark, BenchmarkConfig, ExperimentKind, PromptVariant};
use wfspeak_service::{
    ResilientClient, RetryPolicy, ScoreRequest, ScoringServer, ServiceConfig, TaskKind,
    DEFAULT_ADDR,
};

const USAGE: &str = "\
repro — reproduce the paper's evaluation and serve its scoring core

USAGE:
    repro [SUBCOMMAND ...] [OPTIONS]

Paper artifacts (default: all tables and the figure):
    run            table1..table6 and figure1, in order
    table1         configuration experiment (BLEU/ChrF per model and system)
    table2         annotation experiment
    table3         translation experiment
    table4         qualitative translations
    table5         few-shot vs zero-shot comparison
    table6         qualitative configurations
    figure1        prompt-sensitivity heatmaps
    json           full machine-readable report on stdout

Evaluation pipeline:
    evaluate       full pipeline (code extraction -> API-call comparison ->
                   BLEU/ChrF) over experiment grids, with per-cell summaries
        --task T       configuration | annotation | translation | all
                                             [default: all]
        --trials N     trials per cell       [default: 5]
        --execute      also run every generated configuration on the
                       runtime engine and report runnability/fidelity
        --addr A       client mode: evaluate raw responses from stdin
                       against a running server instead of the local grid
                       (honours --task, --system, --lines, --retries,
                       --deadline-ms)
    execute        dynamic execution only: parse each generated artifact
                   (configuration file, or annotated Python task code for
                   Parsl/PyCOMPSs) into a workflow spec, run it on the
                   runtime engine under a bounded sandbox, and score
                   runnability plus trace fidelity vs the reference run,
                   across all five workflow systems
        --trials N     trials per cell       [default: 5]
        --addr A       client mode: execute raw responses from stdin
                       against a running server instead of the local grid
                       (honours --system, --lines, --retries, --deadline-ms)

Performance artifacts (rewrite tracked BENCH_N.json snapshots):
    bench          grid throughput -> BENCH_1.json
    bench-service  scoring-service throughput over loopback -> BENCH_2.json
    bench-evaluate evaluation-pipeline throughput -> BENCH_3.json
    bench-execute  dynamic-execution throughput -> BENCH_4.json
    bench-scaling  engine scaling over synthetic topologies -> BENCH_5.json
                   (honours WFSPEAK_SCALING_MAX as a task-count bound)
    bench-connections
                   high-connection scaling of the event-driven server over
                   loopback, 4 -> 256 -> 1024 closed-loop clients
                   -> BENCH_6.json (honours WFSPEAK_CONNECTIONS_MAX as a
                   client-count bound)
        --io-threads N event-loop threads    [default: 1]
    bench-parse    wyaml parse throughput over the generated configuration
                   corpus: pre-rewrite baseline vs the zero-copy rewrite,
                   plus per-category failure counts -> BENCH_7.json
                   (honours WFSPEAK_PARSE_PASSES as a pass-count bound)

Scoring service:
    serve          run the batch scoring server (newline-delimited JSON/TCP)
        --addr A       listen address        [default: 127.0.0.1:7878]
        --workers N    scoring threads       [default: one per core]
        --io-threads N event-loop threads multiplexing the connections
                                             [default: 1]
    score          score hypotheses from stdin against a running server
        --addr A       server address        [default: 127.0.0.1:7878]
        --task T       configuration | annotation | translation
                                             [default: configuration]
        --system S     workflow system name  [default: Henson]
        --lines        treat each stdin line as its own hypothesis
                       (default: all of stdin is one hypothesis)
        --stats        also print server cache/throughput statistics
        --retries N    client retries after a transport failure or an
                       `overloaded` shed (reconnect + capped deterministic
                       exponential backoff)         [default: 3]
        --deadline-ms M
                       per-request deadline, sent on the wire (the server
                       answers expired queued jobs with a typed `deadline`
                       error) and used as the read timeout
                                             [default: none]
    chaos          deterministic fault-injection sweep: for each seed, run
                   a mixed score/evaluate/execute workload against a
                   fault-injected in-process server (torn/partial frames,
                   dropped and delayed writes, mid-request disconnects,
                   worker panics) and assert every request terminates,
                   survivors are bit-identical to a no-fault baseline, and
                   the fault schedule replays exactly; exits non-zero
                   naming the failing seed
        --seeds N      seeds to sweep (0..N)  [default: 8]
        --requests N   requests per run       [default: 48]
        --workers N    server worker threads  [default: 2]
        --retries N    client retries         [default: 4]
        --deadline-ms M
                       per-request deadline   [default: 750]

Misc:
    help           print this message

Multiple artifact subcommands run in sequence: `repro table1 table5`.";

fn table1(benchmark: &Benchmark) {
    let result = benchmark.run_configuration(PromptVariant::Original, false);
    println!(
        "{}",
        result.render_table(
            "Table 1: Evaluation of various LLMs using code similarity metrics for the workflow configuration experiment"
        )
    );
    println!(
        "Best model: {}    Best workflow system: {}\n",
        result.best_model().unwrap_or_default(),
        result.best_row().unwrap_or_default()
    );
}

fn table2(benchmark: &Benchmark) {
    let result = benchmark.run_annotation(PromptVariant::Original);
    println!(
        "{}",
        result.render_table(
            "Table 2: Evaluation of various LLMs using code similarity metrics for the task code annotation experiment"
        )
    );
    println!(
        "Best model: {}    Best workflow system: {}\n",
        result.best_model().unwrap_or_default(),
        result.best_row().unwrap_or_default()
    );
}

fn table3(benchmark: &Benchmark) {
    let result = benchmark.run_translation(PromptVariant::Original);
    println!(
        "{}",
        result.render_table(
            "Table 3: Evaluation of various LLMs using code similarity metrics for the task code translation experiment"
        )
    );
}

fn table4(benchmark: &Benchmark) {
    let samples = qualitative_translations(benchmark.config().base_seed);
    println!(
        "{}",
        render_samples(
            "Table 4: Translated producer codes for the Henson workflow system (LLaMA-3.3-70B vs Gemini-2.5-Pro); validator findings mark nonexistent API calls",
            &samples
        )
    );
}

fn table5(benchmark: &Benchmark) {
    let comparison = benchmark.run_few_shot_comparison();
    println!("{}", comparison.render_table());
    println!(
        "Few-shot improves every model: {}\n",
        comparison.few_shot_improves_all_models()
    );
}

fn table6(benchmark: &Benchmark) {
    let samples = qualitative_configurations(benchmark.config().base_seed);
    println!(
        "{}",
        render_samples(
            "Table 6: Generated Wilkins configuration files with few-shot (left) and zero-shot (right) prompting using o3; validator findings mark nonexistent fields",
            &samples
        )
    );
}

fn figure1(benchmark: &Benchmark) {
    let sensitivity = benchmark.run_prompt_sensitivity();
    println!("Figure 1: BLEU scores by prompt type and LLM\n");
    for kind in ExperimentKind::ALL {
        for row in kind.row_labels() {
            println!("{}", sensitivity.render_heatmap(kind, &row));
        }
    }
}

fn bench() {
    let report = measure_grid_throughput();
    println!(
        "Grid throughput: {} cells ({} hypotheses, {} metric evaluations) in {:.2}s = {:.1} cells/s",
        report.grid_cells,
        report.scored_hypotheses,
        report.metric_evaluations,
        report.wall_time_secs,
        report.cells_per_sec
    );
    let path = "BENCH_1.json";
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

fn bench_service() {
    wfspeak_bench::run_service_bench("BENCH_2.json");
}

fn bench_evaluate() {
    wfspeak_bench::run_evaluation_bench("BENCH_3.json");
}

fn bench_execute() {
    wfspeak_bench::run_execution_bench("BENCH_4.json");
}

fn bench_scaling() {
    wfspeak_bench::run_runtime_scaling_bench("BENCH_5.json");
}

fn bench_connections(options: &CliOptions) -> Result<(), String> {
    wfspeak_bench::run_connection_bench("BENCH_6.json", options.io_threads);
    Ok(())
}

fn bench_parse() {
    wfspeak_bench::run_parse_bench("BENCH_7.json");
}

fn json(benchmark: &Benchmark) {
    let report = FullReport {
        config: benchmark.config().clone(),
        configuration: benchmark.run_configuration(PromptVariant::Original, false),
        annotation: benchmark.run_annotation(PromptVariant::Original),
        translation: benchmark.run_translation(PromptVariant::Original),
        few_shot: benchmark.run_few_shot_comparison(),
        prompt_sensitivity: benchmark.run_prompt_sensitivity(),
    };
    println!("{}", report.to_json());
}

/// Options shared by the service-facing subcommands, parsed from
/// `--flag value` pairs.
struct CliOptions {
    addr: String,
    /// Whether `--addr` was passed explicitly (switches `evaluate` /
    /// `execute` into client mode).
    addr_set: bool,
    workers: usize,
    io_threads: usize,
    task: String,
    system: String,
    trials: usize,
    lines: bool,
    stats: bool,
    execute: bool,
    retries: u32,
    /// Whether `--retries` was passed explicitly (`chaos` has a higher
    /// default than the plain client subcommands).
    retries_set: bool,
    /// 0 = no deadline on the wire.
    deadline_ms: u64,
    seeds: u64,
    requests: usize,
}

impl CliOptions {
    /// The client retry/deadline policy the subcommand's flags describe.
    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            retries: self.retries,
            deadline_ms: (self.deadline_ms > 0).then_some(self.deadline_ms),
            ..RetryPolicy::default()
        }
    }

    /// Parse `--flag [value]` pairs, rejecting flags outside `allowed` so
    /// each subcommand only accepts the options it actually honours.
    fn parse(args: &[String], allowed: &[&str]) -> Result<CliOptions, String> {
        let mut options = CliOptions {
            addr: DEFAULT_ADDR.to_owned(),
            addr_set: false,
            workers: 0,
            io_threads: 1,
            task: "configuration".to_owned(),
            system: "Henson".to_owned(),
            trials: 5,
            lines: false,
            stats: false,
            execute: false,
            retries: 3,
            retries_set: false,
            deadline_ms: 0,
            seeds: 8,
            requests: 48,
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            if !allowed.contains(&flag.as_str()) {
                return Err(format!("unknown option `{flag}`"));
            }
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--addr" => {
                    options.addr = value_of("--addr")?;
                    options.addr_set = true;
                }
                "--workers" => {
                    options.workers = value_of("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?;
                }
                "--io-threads" => {
                    options.io_threads = value_of("--io-threads")?
                        .parse()
                        .map_err(|e| format!("--io-threads: {e}"))?;
                    if options.io_threads == 0 {
                        return Err("--io-threads must be at least 1".to_owned());
                    }
                }
                "--task" => options.task = value_of("--task")?,
                "--system" => options.system = value_of("--system")?,
                "--trials" => {
                    options.trials = value_of("--trials")?
                        .parse()
                        .map_err(|e| format!("--trials: {e}"))?;
                    if options.trials == 0 {
                        return Err("--trials must be at least 1".to_owned());
                    }
                }
                "--lines" => options.lines = true,
                "--stats" => options.stats = true,
                "--execute" => options.execute = true,
                "--retries" => {
                    options.retries = value_of("--retries")?
                        .parse()
                        .map_err(|e| format!("--retries: {e}"))?;
                    options.retries_set = true;
                }
                "--deadline-ms" => {
                    options.deadline_ms = value_of("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?;
                    if options.deadline_ms == 0 {
                        return Err("--deadline-ms must be at least 1".to_owned());
                    }
                }
                "--seeds" => {
                    options.seeds = value_of("--seeds")?
                        .parse()
                        .map_err(|e| format!("--seeds: {e}"))?;
                    if options.seeds == 0 {
                        return Err("--seeds must be at least 1".to_owned());
                    }
                }
                "--requests" => {
                    options.requests = value_of("--requests")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?;
                    if options.requests == 0 {
                        return Err("--requests must be at least 1".to_owned());
                    }
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(options)
    }
}

/// Run the full evaluation pipeline — code extraction, API-call comparison
/// and BLEU/ChrF — over the selected experiment grids and print a summary
/// per grid plus the shared-cache statistics.
fn evaluate(options: &CliOptions) -> Result<(), String> {
    let kinds: Vec<ExperimentKind> = match options.task.to_ascii_lowercase().as_str() {
        "all" => ExperimentKind::ALL.to_vec(),
        "configuration" | "config" => vec![ExperimentKind::Configuration],
        "annotation" | "annotate" => vec![ExperimentKind::Annotation],
        "translation" | "translate" => vec![ExperimentKind::Translation],
        other => {
            return Err(format!(
                "unknown task `{other}` (expected configuration, annotation, translation or all)"
            ))
        }
    };
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: options.trials,
        ..BenchmarkConfig::default()
    });
    for kind in kinds {
        let grid = benchmark.run_evaluation(kind, PromptVariant::Original);
        println!(
            "{}",
            grid.render_summary(&format!(
                "Evaluation: {} ({} trials per cell)",
                kind.name(),
                options.trials
            ))
        );
    }
    if options.execute {
        print_execution_grid(&benchmark, options.trials);
    }
    let stats = benchmark.reference_cache().stats();
    println!(
        "reference cache: {} hits / {} lookups ({:.1}% hit rate)",
        stats.hits,
        stats.lookups(),
        100.0 * stats.hit_rate()
    );
    Ok(())
}

/// Run the five-system execution grid through dynamic execution and print
/// the runnability/fidelity summary (shared by `execute` and
/// `evaluate --execute`).
fn print_execution_grid(benchmark: &Benchmark, trials: usize) {
    let grid = benchmark.run_execution(PromptVariant::Original);
    println!(
        "{}",
        grid.render_summary(&format!(
            "Execution: generated artifacts on the runtime engine ({trials} trials per cell)"
        ))
    );
    println!(
        "{}",
        grid.render_diagnostics("Diagnostics: top failure kinds per model × system")
    );
}

/// Dynamic execution only: every generated artifact is parsed into a
/// workflow spec and run on the runtime engine under the bounded sandbox.
fn execute(options: &CliOptions) -> Result<(), String> {
    let benchmark = Benchmark::with_simulated_models(BenchmarkConfig {
        trials: options.trials,
        ..BenchmarkConfig::default()
    });
    print_execution_grid(&benchmark, options.trials);
    Ok(())
}

fn serve(options: &CliOptions) -> Result<(), String> {
    let config = ServiceConfig {
        workers: options.workers,
        io_threads: options.io_threads,
        ..ServiceConfig::default()
    };
    let server = ScoringServer::spawn(options.addr.as_str(), config)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    println!(
        "repro serve: listening on {} (newline-delimited JSON; try `repro score --addr {}`)",
        server.addr(),
        server.addr()
    );
    server.wait();
    Ok(())
}

/// The scoring task a client subcommand addresses (`--task`), rejecting
/// the pseudo-task `stats`.
fn client_task(options: &CliOptions) -> Result<TaskKind, String> {
    match TaskKind::parse(&options.task) {
        Some(TaskKind::Stats) => {
            Err("`--task stats` is not a scoring task; use `--stats` instead".to_owned())
        }
        Some(task) => Ok(task),
        None => Err(format!("unknown task `{}`", options.task)),
    }
}

/// Read hypotheses / raw responses from stdin: the whole stream as one, or
/// one per line with `--lines`. Non-empty stdin yields at least one entry
/// in both modes.
fn stdin_hypotheses(lines: bool) -> Result<Vec<String>, String> {
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .map_err(|e| format!("cannot read hypotheses from stdin: {e}"))?;
    if input.is_empty() {
        return Err("no hypotheses on stdin".to_owned());
    }
    Ok(if lines {
        input.lines().map(str::to_owned).collect()
    } else {
        vec![input]
    })
}

fn print_server_stats(client: &mut ResilientClient) -> Result<(), String> {
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    println!(
        "server: {} requests, {} hypotheses, cache {}/{} hits ({:.1}% hit rate), \
         {} worker restart(s), {} injected fault(s)",
        stats.requests,
        stats.hypotheses,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        100.0 * stats.cache_hit_rate(),
        stats.worker_restarts,
        stats.faults_injected,
    );
    println!(
        "latency: p50 {}us, p95 {}us, p99 {}us over {} sample(s)",
        stats.latency_p50_us, stats.latency_p95_us, stats.latency_p99_us, stats.latency_samples,
    );
    Ok(())
}

fn score(options: &CliOptions) -> Result<(), String> {
    let task = client_task(options)?;
    let hypotheses = stdin_hypotheses(options.lines)?;

    let mut client = ResilientClient::new(options.addr.clone(), options.retry_policy());
    let request = ScoreRequest::by_id(client.fresh_id(), task, &options.system, hypotheses);
    let response = client
        .call(request)
        .map_err(|e| format!("scoring failed: {e}"))?;
    if !response.ok {
        return Err(response.error.unwrap_or_else(|| "unknown error".to_owned()));
    }
    println!(
        "{:>4}  {:>8}  {:>8}   (task {}, system {})",
        "#",
        "BLEU",
        "ChrF",
        task.name(),
        options.system
    );
    for (i, s) in response.scores.iter().enumerate() {
        println!("{:>4}  {:>8.2}  {:>8.2}", i + 1, s.bleu, s.chrf);
    }
    if options.stats {
        print_server_stats(&mut client)?;
    }
    Ok(())
}

/// `repro evaluate --addr …`: run raw responses from stdin through a
/// running server's full evaluation pipeline.
fn evaluate_client(options: &CliOptions) -> Result<(), String> {
    let task = client_task(options)?;
    let responses = stdin_hypotheses(options.lines)?;

    let mut client = ResilientClient::new(options.addr.clone(), options.retry_policy());
    let request = ScoreRequest::evaluate(client.fresh_id(), task, &options.system, responses);
    let response = client
        .call(request)
        .map_err(|e| format!("evaluation failed: {e}"))?;
    if !response.ok {
        return Err(response.error.unwrap_or_else(|| "unknown error".to_owned()));
    }
    println!(
        "{:>4}  {:>8}  {:>8}  {:>8}  {:>8}  {:>12}   (task {}, system {})",
        "#",
        "BLEU",
        "ChrF",
        "recall",
        "precis.",
        "hallucinated",
        task.name(),
        options.system
    );
    for (i, e) in response.evaluations.iter().enumerate() {
        println!(
            "{:>4}  {:>8.2}  {:>8.2}  {:>8.2}  {:>8.2}  {:>12}",
            i + 1,
            e.bleu,
            e.chrf,
            e.call_recall,
            e.call_precision,
            e.hallucinated.len(),
        );
    }
    Ok(())
}

/// `repro execute --addr …`: run raw responses from stdin through a
/// running server's dynamic-execution pipeline.
fn execute_client(options: &CliOptions) -> Result<(), String> {
    let responses = stdin_hypotheses(options.lines)?;

    let mut client = ResilientClient::new(options.addr.clone(), options.retry_policy());
    let request = ScoreRequest::execute(client.fresh_id(), &options.system, responses);
    let response = client
        .call(request)
        .map_err(|e| format!("execution failed: {e}"))?;
    if !response.ok {
        return Err(response.error.unwrap_or_else(|| "unknown error".to_owned()));
    }
    println!(
        "{:>4}  {:>11}  {:>8}  {:>9}   (system {})",
        "#", "runnability", "fidelity", "outcome", options.system
    );
    for (i, e) in response.executions.iter().enumerate() {
        println!(
            "{:>4}  {:>11.1}  {:>8.1}  {:>9}",
            i + 1,
            e.runnability,
            e.trace_fidelity,
            e.failure_kind.as_deref().unwrap_or("completed"),
        );
    }
    Ok(())
}

fn chaos(options: &CliOptions) -> Result<(), String> {
    let defaults = ChaosOptions::default();
    run_chaos_cli(&ChaosOptions {
        seeds: options.seeds,
        requests: options.requests,
        workers: if options.workers == 0 {
            defaults.workers
        } else {
            options.workers
        },
        retries: if options.retries_set {
            options.retries
        } else {
            defaults.retries
        },
        deadline_ms: if options.deadline_ms == 0 {
            defaults.deadline_ms
        } else {
            options.deadline_ms
        },
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `serve` and `score` consume the rest of the argument list as options.
    match args.first().map(String::as_str) {
        Some("serve") => {
            let result = CliOptions::parse(&args[1..], &["--addr", "--workers", "--io-threads"])
                .and_then(|o| serve(&o));
            if let Err(message) = result {
                eprintln!("repro serve: {message}");
                std::process::exit(1);
            }
            return;
        }
        Some("bench-connections") => {
            let result = CliOptions::parse(&args[1..], &["--io-threads"])
                .and_then(|o| bench_connections(&o));
            if let Err(message) = result {
                eprintln!("repro bench-connections: {message}");
                std::process::exit(1);
            }
            return;
        }
        Some("evaluate") => {
            // Without an explicit --task, grid-mode evaluate covers every
            // experiment; client mode keeps the single-task default.
            let client_mode = args.iter().any(|a| a == "--addr");
            let mut args = args[1..].to_vec();
            if !client_mode && !args.iter().any(|a| a == "--task") {
                args.extend(["--task".to_owned(), "all".to_owned()]);
            }
            let result = CliOptions::parse(
                &args,
                &[
                    "--task",
                    "--trials",
                    "--execute",
                    "--addr",
                    "--system",
                    "--lines",
                    "--retries",
                    "--deadline-ms",
                ],
            )
            .and_then(|o| {
                if o.addr_set {
                    evaluate_client(&o)
                } else {
                    evaluate(&o)
                }
            });
            if let Err(message) = result {
                eprintln!("repro evaluate: {message}");
                std::process::exit(1);
            }
            return;
        }
        Some("execute") => {
            let result = CliOptions::parse(
                &args[1..],
                &[
                    "--trials",
                    "--addr",
                    "--system",
                    "--lines",
                    "--retries",
                    "--deadline-ms",
                ],
            )
            .and_then(|o| {
                if o.addr_set {
                    execute_client(&o)
                } else {
                    execute(&o)
                }
            });
            if let Err(message) = result {
                eprintln!("repro execute: {message}");
                std::process::exit(1);
            }
            return;
        }
        Some("score") => {
            let result = CliOptions::parse(
                &args[1..],
                &[
                    "--addr",
                    "--task",
                    "--system",
                    "--lines",
                    "--stats",
                    "--retries",
                    "--deadline-ms",
                ],
            )
            .and_then(|o| score(&o));
            if let Err(message) = result {
                eprintln!("repro score: {message}");
                std::process::exit(1);
            }
            return;
        }
        Some("chaos") => {
            let result = CliOptions::parse(
                &args[1..],
                &[
                    "--seeds",
                    "--requests",
                    "--workers",
                    "--retries",
                    "--deadline-ms",
                ],
            )
            .and_then(|o| chaos(&o));
            if let Err(message) = result {
                eprintln!("repro chaos: {message}");
                std::process::exit(1);
            }
            return;
        }
        Some("help" | "--help" | "-h") => {
            println!("{USAGE}");
            return;
        }
        _ => {}
    }

    // Artifact subcommands: validate everything before running anything, so
    // a typo late in the list doesn't waste a full benchmark run.
    const ARTIFACTS: [&str; 15] = [
        "run",
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "figure1",
        "json",
        "bench",
        "bench-service",
        "bench-evaluate",
        "bench-execute",
        "bench-scaling",
        "bench-parse",
    ];
    let selections: Vec<&str> = if args.is_empty() {
        vec!["run"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    if let Some(unknown) = selections.iter().find(|s| !ARTIFACTS.contains(s)) {
        eprintln!("repro: unknown subcommand `{unknown}`\n\n{USAGE}");
        std::process::exit(2);
    }

    // `bench` / `bench-service` are deliberately not part of the default
    // run: they rewrite BENCH_N.json (tracked perf-trajectory snapshots)
    // with run-dependent timings, so they only execute when explicitly
    // requested.
    let benchmark = paper_benchmark();
    for selection in selections {
        match selection {
            "run" => {
                table1(&benchmark);
                table2(&benchmark);
                table3(&benchmark);
                table4(&benchmark);
                table5(&benchmark);
                table6(&benchmark);
                figure1(&benchmark);
            }
            "table1" => table1(&benchmark),
            "table2" => table2(&benchmark),
            "table3" => table3(&benchmark),
            "table4" => table4(&benchmark),
            "table5" => table5(&benchmark),
            "table6" => table6(&benchmark),
            "figure1" => figure1(&benchmark),
            "json" => json(&benchmark),
            "bench" => bench(),
            "bench-service" => bench_service(),
            "bench-evaluate" => bench_evaluate(),
            "bench-execute" => bench_execute(),
            "bench-scaling" => bench_scaling(),
            "bench-parse" => bench_parse(),
            _ => unreachable!("validated above"),
        }
    }
}
