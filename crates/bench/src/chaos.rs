//! `repro chaos` — a deterministic fault-injection sweep over the scoring
//! service.
//!
//! For every seed in the sweep the harness runs the same mixed
//! score/evaluate/execute workload three times against in-process servers
//! on ephemeral loopback ports:
//!
//! 1. a **baseline** run with faults disabled, which must answer every
//!    request successfully and whose encoded response lines become the
//!    bit-identity reference;
//! 2. two **fault** runs under [`FaultPlan::chaos`]`(seed)`, driven through
//!    a [`ResilientClient`] (reconnect + capped deterministic backoff +
//!    bounded retries, per-request deadline as the read timeout).
//!
//! The sweep asserts, per seed:
//!
//! * **Every request reaches a terminal state** — scored, a typed server
//!   error (`"internal"` from an injected worker panic), or a typed client
//!   error (retries exhausted after injected drops/disconnects). Nothing
//!   hangs: every read is bounded by the deadline.
//! * **Survivors are bit-identical** — a request that scores under faults
//!   produces exactly the baseline's encoded response line.
//! * **The schedule replays** — both fault runs of a seed inject the same
//!   number of faults, restart the same number of workers and classify
//!   every request identically ([`FaultInjector`](wfspeak_service::FaultInjector)
//!   draws from a hash of (seed, request counter), never the clock).
//! * **The pool survives** — after the workload, probe requests must score
//!   successfully, proving no permanent worker-pool death; the server then
//!   drains and shuts down cleanly.
//!
//! The CI `chaos-smoke` job runs a bounded sweep and fails loudly with the
//! offending seed, which is all a reproduction needs: `repro chaos --seeds
//! <failing+1>` replays it locally, exactly.

use std::collections::HashMap;
use std::sync::Once;

use wfspeak_service::protocol::encode_line;
use wfspeak_service::{
    FaultPlan, ResilientClient, RetryPolicy, ScoreRequest, ScoringServer, ServiceConfig,
};

/// Knobs for one chaos sweep. `Default` matches the CI smoke scale.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Seeds to sweep: `0..seeds`.
    pub seeds: u64,
    /// Requests per run (each seed runs the workload three times).
    pub requests: usize,
    /// Server worker threads (0 = the service default).
    pub workers: usize,
    /// Client retries after the first attempt.
    pub retries: u32,
    /// Per-request deadline in milliseconds, also the per-attempt read
    /// timeout — the bound that turns a dropped response into a terminal
    /// client error instead of a hang.
    pub deadline_ms: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seeds: 8,
            requests: 48,
            workers: 2,
            retries: 4,
            deadline_ms: 750,
        }
    }
}

/// Terminal-state tallies for one run of the workload under one server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Requests answered `ok` (and, in fault runs, compared to baseline).
    pub scored: usize,
    /// Typed `error_kind: "internal"` answers (injected worker panics).
    pub internal_errors: usize,
    /// Typed `error_kind: "deadline"` answers (expired in queue).
    pub deadline_errors: usize,
    /// Other server-side error answers (none expected in this workload).
    pub other_errors: usize,
    /// Requests whose every attempt failed at the transport level.
    pub exhausted: usize,
    /// Scored answers whose encoded line differed from baseline.
    pub mismatched: usize,
    /// Faults the server scheduled, from its stats counter.
    pub faults_injected: u64,
    /// Workers respawned after injected panics, from its stats counter.
    pub worker_restarts: u64,
    /// Whether post-workload probe requests scored (pool still alive).
    pub pool_alive: bool,
}

impl RunOutcome {
    /// Requests that reached *some* terminal state. Equals the workload
    /// size by construction — the harness reports it so "0 hung requests"
    /// is an asserted number, not an assumption.
    pub fn terminal(&self) -> usize {
        self.scored
            + self.internal_errors
            + self.deadline_errors
            + self.other_errors
            + self.exhausted
    }
}

/// One seed's verdict: the baseline plus both fault runs.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The fault-plan seed.
    pub seed: u64,
    /// Workload size per run.
    pub requests: usize,
    /// `false` if the no-fault baseline failed any request (a workload
    /// bug, not a fault-tolerance finding).
    pub baseline_ok: bool,
    /// The two fault runs, in order.
    pub fault_runs: [RunOutcome; 2],
}

impl SeedReport {
    /// Requests that never reached a terminal state, across both fault
    /// runs (must be 0).
    pub fn hung(&self) -> usize {
        self.fault_runs
            .iter()
            .map(|run| self.requests - run.terminal())
            .sum()
    }

    /// Whether the two fault runs replayed identically (same tallies, same
    /// fault/restart counters).
    pub fn replay_consistent(&self) -> bool {
        self.fault_runs[0] == self.fault_runs[1]
    }

    /// The seed's pass verdict: baseline clean, zero hangs, survivors
    /// bit-identical, pool alive in both runs, schedule replayed.
    pub fn passed(&self) -> bool {
        self.baseline_ok
            && self.hung() == 0
            && self.fault_runs.iter().all(|r| r.mismatched == 0)
            && self.fault_runs.iter().all(|r| r.pool_alive)
            && self.replay_consistent()
    }
}

/// The whole sweep's verdict.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Options the sweep ran under.
    pub options: ChaosOptions,
    /// One report per seed, in seed order.
    pub seeds: Vec<SeedReport>,
}

impl ChaosReport {
    /// `true` when every seed passed.
    pub fn passed(&self) -> bool {
        self.seeds.iter().all(SeedReport::passed)
    }

    /// Seeds that failed, for loud CI output and local replay.
    pub fn failing_seeds(&self) -> Vec<u64> {
        self.seeds
            .iter()
            .filter(|s| !s.passed())
            .map(|s| s.seed)
            .collect()
    }

    /// Human-readable sweep summary, one line per seed.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos sweep: {} seed(s) × {} request(s), retries {}, deadline {}ms\n",
            self.options.seeds,
            self.options.requests,
            self.options.retries,
            self.options.deadline_ms,
        );
        out.push_str(
            "  seed   scored  internal  exhausted  faults  restarts  hung  replay  verdict\n",
        );
        for seed in &self.seeds {
            let run = &seed.fault_runs[0];
            out.push_str(&format!(
                "  {:>4}   {:>6}  {:>8}  {:>9}  {:>6}  {:>8}  {:>4}  {:>6}  {}\n",
                seed.seed,
                run.scored,
                run.internal_errors,
                run.exhausted,
                run.faults_injected,
                run.worker_restarts,
                seed.hung(),
                if seed.replay_consistent() {
                    "yes"
                } else {
                    "NO"
                },
                if seed.passed() { "pass" } else { "FAIL" },
            ));
        }
        let totals = self
            .seeds
            .iter()
            .flat_map(|s| s.fault_runs.iter())
            .fold((0usize, 0u64), |(t, f), r| {
                (t + r.terminal(), f + r.faults_injected)
            });
        out.push_str(&format!(
            "  total: {} terminal request(s), {} injected fault(s), {} hung, verdict {}\n",
            totals.0,
            totals.1,
            self.seeds.iter().map(SeedReport::hung).sum::<usize>(),
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        out
    }
}

/// Deterministic mixed workload for one seed: requests `1..=count` cycling
/// score → evaluate → execute over the built-in references, with
/// hypothesis batches stamped by (seed, index) so seeds exercise different
/// bytes while every run of a seed sends identical requests.
pub fn chaos_workload(seed: u64, count: usize) -> Vec<ScoreRequest> {
    use wfspeak_corpus::references::execution_reference;
    use wfspeak_corpus::WorkflowSystemId;

    let score_addresses = super::service_workload_addresses();
    let execute_systems = WorkflowSystemId::execution_systems();
    (0..count)
        .map(|i| {
            let id = (i + 1) as u64;
            let pick = seed as usize + i;
            match i % 3 {
                0 => {
                    let (task, system, reference) = score_addresses[pick % score_addresses.len()];
                    ScoreRequest::by_id(id, task, system, chaos_hypotheses(reference, seed, i))
                }
                1 => {
                    let (_, system, reference) = score_addresses[pick % score_addresses.len()];
                    // Evaluate against the inline reference so extraction +
                    // API-call comparison run on raw "model responses".
                    ScoreRequest::evaluate_text(
                        id,
                        reference,
                        system,
                        chaos_hypotheses(reference, seed, i),
                    )
                }
                _ => {
                    let system = execute_systems[pick % execute_systems.len()];
                    let reference = execution_reference(system);
                    ScoreRequest::execute(
                        id,
                        system.name(),
                        vec![
                            reference.to_owned(),
                            reference.chars().take(reference.len() / 2).collect(),
                        ],
                    )
                }
            }
        })
        .collect()
}

/// Deterministic hypothesis batch: the reference, a truncation, and an
/// unrelated line stamped with (seed, index).
fn chaos_hypotheses(reference: &str, seed: u64, index: usize) -> Vec<String> {
    vec![
        reference.to_owned(),
        reference.chars().take(reference.len() / 2).collect(),
        format!("unrelated hypothesis {seed} {index}"),
    ]
}

/// Quiet the default panic hook for *injected* panics only: the fault
/// plan's worker panics are expected and would otherwise spray dozens of
/// backtrace headers over the sweep output. Real panics still print.
/// Installed once per process (hooks are global).
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault:"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected fault:"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Run `workload` sequentially through a [`ResilientClient`] against a
/// server configured with `faults`, classify every request's terminal
/// state, and (for fault runs) compare survivors against `baseline`
/// encoded lines.
fn run_workload(
    workload: &[ScoreRequest],
    faults: Option<FaultPlan>,
    options: &ChaosOptions,
    baseline: Option<&HashMap<u64, String>>,
) -> std::io::Result<(RunOutcome, HashMap<u64, String>)> {
    let server = ScoringServer::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            workers: options.workers,
            faults,
            ..ServiceConfig::default()
        },
    )?;
    let mut client = ResilientClient::new(
        server.addr().to_string(),
        RetryPolicy {
            retries: options.retries,
            deadline_ms: Some(options.deadline_ms),
            ..RetryPolicy::default()
        },
    );

    let mut outcome = RunOutcome::default();
    let mut lines = HashMap::with_capacity(workload.len());
    for request in workload {
        match client.call(request.clone()) {
            Ok(response) if response.ok => {
                outcome.scored += 1;
                let line = encode_line(&response);
                if let Some(baseline) = baseline {
                    if baseline.get(&request.id) != Some(&line) {
                        outcome.mismatched += 1;
                    }
                }
                lines.insert(request.id, line);
            }
            Ok(response) => match response.error_kind.as_deref() {
                Some("internal") => outcome.internal_errors += 1,
                Some("deadline") => outcome.deadline_errors += 1,
                _ => outcome.other_errors += 1,
            },
            Err(_) => outcome.exhausted += 1,
        }
    }

    // Pool-liveness probe: a scoring request must still succeed. A probe
    // can itself draw a fault (an injected panic answers `"internal"`), so
    // allow a few; each is terminal either way.
    outcome.pool_alive = (0..10).any(|k| {
        matches!(
            client.call(ScoreRequest::by_text(
                1_000_000 + k,
                "chaos liveness probe",
                vec!["chaos liveness probe".to_owned()],
            )),
            Ok(response) if response.ok
        )
    });

    client.disconnect();
    let stats = server.stats();
    outcome.faults_injected = stats.faults_injected;
    outcome.worker_restarts = stats.worker_restarts;
    server.shutdown();
    Ok((outcome, lines))
}

/// Run the full sweep described by `options`.
pub fn run_chaos(options: &ChaosOptions) -> std::io::Result<ChaosReport> {
    silence_injected_panics();
    let mut seeds = Vec::with_capacity(options.seeds as usize);
    for seed in 0..options.seeds {
        let workload = chaos_workload(seed, options.requests);

        let (baseline_outcome, baseline_lines) = run_workload(&workload, None, options, None)?;
        let baseline_ok =
            baseline_outcome.scored == workload.len() && baseline_outcome.faults_injected == 0;

        let (first, _) = run_workload(
            &workload,
            Some(FaultPlan::chaos(seed)),
            options,
            Some(&baseline_lines),
        )?;
        let (second, _) = run_workload(
            &workload,
            Some(FaultPlan::chaos(seed)),
            options,
            Some(&baseline_lines),
        )?;

        seeds.push(SeedReport {
            seed,
            requests: workload.len(),
            baseline_ok,
            fault_runs: [first, second],
        });
    }
    Ok(ChaosReport {
        options: options.clone(),
        seeds,
    })
}

/// `repro chaos` entry point: run the sweep, print the summary, and return
/// an error naming the failing seeds so the caller exits non-zero.
pub fn run_chaos_cli(options: &ChaosOptions) -> Result<(), String> {
    let report = run_chaos(options).map_err(|e| format!("chaos sweep could not run: {e}"))?;
    print!("{}", report.render());
    if report.passed() {
        println!(
            "chaos: all {} seed(s) passed (every request terminal, survivors bit-identical, \
             schedules replayed)",
            report.seeds.len()
        );
        Ok(())
    } else {
        Err(format!(
            "failing seed(s): {:?} — replay with `repro chaos --seeds <seed+1> --requests {}`",
            report.failing_seeds(),
            options.requests,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_per_seed_and_varies_across_seeds() {
        let a = chaos_workload(3, 12);
        let b = chaos_workload(3, 12);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(encode_line(x), encode_line(y));
        }
        let c = chaos_workload(4, 12);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| encode_line(x) != encode_line(y)),
            "different seeds must exercise different requests"
        );
        // All three modes appear (plain scoring leaves `mode` empty).
        assert!(a.iter().any(|r| r.mode.is_empty()));
        assert!(a.iter().any(|r| r.mode == "evaluate"));
        assert!(a.iter().any(|r| r.mode == "execute"));
    }

    #[test]
    fn single_seed_sweep_passes_end_to_end() {
        let report = run_chaos(&ChaosOptions {
            seeds: 1,
            requests: 18,
            ..ChaosOptions::default()
        })
        .expect("loopback sweep runs");
        assert_eq!(report.seeds.len(), 1);
        let seed = &report.seeds[0];
        assert!(seed.baseline_ok, "no-fault baseline must score everything");
        assert_eq!(seed.hung(), 0, "every request reaches a terminal state");
        assert!(
            seed.replay_consistent(),
            "two runs of one seed must classify identically: {:?} vs {:?}",
            seed.fault_runs[0],
            seed.fault_runs[1]
        );
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("verdict"));
    }
}
