//! Shared helpers for the criterion benches and the `repro` binary.

use wfspeak_core::{Benchmark, BenchmarkConfig};

/// The paper's full benchmark configuration (5 trials).
pub fn paper_benchmark() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig::default())
}

/// A reduced configuration for criterion iterations (1 trial) so a bench
/// sample stays fast while still exercising the full pipeline.
pub fn bench_benchmark() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 1,
        ..BenchmarkConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_benchmarks_with_expected_trial_counts() {
        assert_eq!(paper_benchmark().config().trials, 5);
        assert_eq!(bench_benchmark().config().trials, 1);
    }
}
