//! Shared helpers for the criterion benches and the `repro` binary.
//!
//! # The `BENCH_N.json` artifacts
//!
//! Each PR that changes a hot path records a machine-readable performance
//! snapshot at the repository root, named `BENCH_<n>.json` with `n`
//! increasing per PR. The files are small flat JSON objects so trends can be
//! compared across PRs with nothing fancier than `jq`:
//!
//! * **`BENCH_1.json`** ([`GridBenchReport`], written by `repro bench`) —
//!   one-shot grid throughput: the three table experiments end-to-end.
//! * **`BENCH_2.json`** ([`ServiceBenchReport`], written by the
//!   `service_throughput` bench or `repro bench-service`) — scoring-service
//!   throughput over loopback TCP.
//! * **`BENCH_3.json`** ([`EvaluationBenchReport`], written by the
//!   `evaluation_throughput` bench or `repro bench-evaluate`) — full
//!   evaluation-pipeline throughput (extraction → API-call comparison →
//!   BLEU/ChrF) over repeated passes of the three experiment grids:
//!   `evaluations` / `evaluations_per_sec` count responses taken through
//!   the whole pipeline, `hallucinated_calls` is a workload checksum, and
//!   the `cache_*` fields report the shared prepared-reference cache
//!   (later passes re-hit the references the first pass prepared).
//! * **`BENCH_4.json`** ([`ExecutionBenchReport`], written by the
//!   `execution_throughput` bench or `repro bench-execute`) —
//!   dynamic-execution throughput over repeated passes of the five-system
//!   execution grid: every generated artifact (configuration file or
//!   annotated Python task code) is parsed into a workflow spec and *run*
//!   on the runtime engine under the evaluation sandbox.
//!   `executions` / `executions_per_sec` count full extract → parse → run
//!   → trace-score pipelines (the headline number; each completed run
//!   spawns real threads and moves real messages), `completed` /
//!   `unparsed` split the workload by outcome and — together with
//!   `mean_runnability` / `mean_fidelity` — act as a determinism checksum:
//!   they must not drift between runs of the same seed.
//! * **`BENCH_5.json`** ([`RuntimeScalingReport`], written by the
//!   `runtime_scaling` bench or `repro bench-scaling`) — engine scaling
//!   over synthetic topologies: every acyclic [`wfspeak_systems::topo`]
//!   shape (fan-out, chain, diamond, random) at 10/100/1000 tasks is taken
//!   through validate → normalize → engine run → trace summary, twice at
//!   different channel capacities.  Each `tiers[]` entry carries the
//!   tier's exact workload counters (`tasks`, `edges`, `published`,
//!   `received`), its `checksum` (an FNV-1a fold of the run's
//!   [`wfspeak_runtime::TraceSummary`] as a `0x`-prefixed hex string,
//!   bit-identical across capacities and repeat runs of the same seed)
//!   and its `tasks_per_sec` / `messages_per_sec` rates; the report-level
//!   `checksum` folds all tier checksums, and `deterministic` asserts
//!   that both capacity runs of every tier summarised identically (trace
//!   fidelity exactly 1.0). `max_tasks` records any tier bound in force
//!   (the CI smoke caps the sweep at the 100-task tier via
//!   `WFSPEAK_SCALING_MAX`; `null` means unbounded).
//! * **`BENCH_6.json`** ([`ConnectionScalingReport`], written by the
//!   `connection_scaling` bench or `repro bench-connections`) —
//!   high-connection scaling of the event-driven server: the same fixed
//!   request budget is pushed through 4, then 256, then 1024 concurrent
//!   closed-loop clients (each sends one request, reads the reply, thinks
//!   for `think_time_ms`, and repeats — the textbook closed-loop load
//!   model, so a small client count is latency-bound while large counts
//!   saturate the worker pool through one multiplexed event loop), one
//!   fresh server per tier so latency percentiles don't bleed across
//!   tiers. Each `tiers[]` entry carries exact workload
//!   counters (`clients`, `requests`, `hypotheses`), the tier's
//!   `requests_per_sec` / `hypotheses_per_sec` rates, and the server-side
//!   `latency_p50_us` / `latency_p95_us` / `latency_p99_us` percentiles
//!   from the power-of-two latency histogram (admission → reply handoff).
//!   `io_threads` records the event-loop count the servers ran with,
//!   `max_clients` any tier bound in force (the CI smoke caps at 64
//!   clients via `WFSPEAK_CONNECTIONS_MAX`; `null` means the full 1024
//!   sweep), and `summary_checksum` folds the deterministic workload
//!   counters (not the timings) so two runs of the same configuration are
//!   comparable at a glance. The scaling claim BENCH_6 exists to track:
//!   per-request throughput at ≥256 connections must beat the 4-client
//!   figure, because the readiness loop amortises wakeups and keeps the
//!   worker pool's queue from ever running dry.
//! * **`BENCH_7.json`** ([`ParseBenchReport`], written by the
//!   `parse_throughput` bench or `repro bench-parse`) — wyaml parse
//!   throughput over the generated configuration corpus (180 artifacts
//!   with the paper defaults: 3 configuration systems × 4 models × 5
//!   trials × 3 prompt variants, code-extracted exactly as the execution
//!   pipeline sees them).  Three parsers are timed over the same corpus:
//!   the preserved pre-rewrite parser (`wfspeak_wyaml::baseline`), the
//!   rewritten owned entry point (`wfspeak_wyaml::parse`) and the borrowed
//!   zero-copy entry point (`wfspeak_wyaml::parse_document`).
//!   `parsed_ok` and the per-`ErrorKind` `failure_categories` are
//!   determinism checksums (same seed ⇒ same counts), and the
//!   `speedup_*_vs_baseline` ratios are the trend signal the artifact
//!   exists to track: the rewrite must stay ≥2× the pre-rewrite parser on
//!   this corpus.  `passes` records the sweep size in force (the CI smoke
//!   bounds it via `WFSPEAK_PARSE_PASSES`).
//!
//! Shared schema conventions:
//!
//! * `bench_id` — the artifact's own name (`"BENCH_1"`, `"BENCH_2"`), so a
//!   file's schema is self-identifying.
//! * Counters (`grid_cells`, `scored_hypotheses`, `requests`, …) are exact
//!   integers describing the measured workload; when comparing two PRs,
//!   check the counters match before comparing rates.
//! * `wall_time_secs` is wall-clock seconds for the whole measured section
//!   (f64); every `*_per_sec` field is the matching counter divided by
//!   `wall_time_secs`. Rates are the trend signal: higher is better, and a
//!   regression over ~20% that the counters don't explain deserves
//!   investigation.
//! * `cache_*` fields count prepared-reference cache traffic (the
//!   `CacheStats` counters from `wfspeak-metrics`); `cache_hit_rate` is
//!   `hits / (hits + misses)` in `0.0..=1.0`.
//!
//! The files are regenerated only on explicit request (`repro bench`,
//! `repro bench-service`, or running the bench binaries) because they hold
//! run-dependent timings: a default `repro` run must not dirty the tracked
//! perf trajectory.

pub mod chaos;

use std::time::Instant;

use serde::Serialize;
use wfspeak_core::{Benchmark, BenchmarkConfig, ExperimentKind, PromptVariant};
use wfspeak_service::{ScoreRequest, ScoringClient, ScoringServer, ServiceConfig, TaskKind};

/// The paper's full benchmark configuration (5 trials).
pub fn paper_benchmark() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig::default())
}

/// A reduced configuration for criterion iterations (1 trial) so a bench
/// sample stays fast while still exercising the full pipeline.
pub fn bench_benchmark() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 1,
        ..BenchmarkConfig::default()
    })
}

/// Machine-readable grid-throughput report emitted as `BENCH_<n>.json` so
/// future changes have a performance trajectory to compare against.
#[derive(Debug, Clone, Serialize)]
pub struct GridBenchReport {
    /// Report schema / sequence tag (`BENCH_1` for this PR).
    pub bench_id: String,
    /// Trials per cell used for the measurement.
    pub trials: usize,
    /// Scored `(row × model)` cells across the three table experiments.
    pub grid_cells: usize,
    /// Scored hypotheses (`grid_cells × trials`).
    pub scored_hypotheses: usize,
    /// Metric evaluations (`scored_hypotheses × 2`: BLEU and ChrF).
    pub metric_evaluations: usize,
    /// Distinct references prepared once and shared across the grid.
    pub prepared_references: usize,
    /// Wall-clock seconds for the full three-experiment grid.
    pub wall_time_secs: f64,
    /// Grid cells scored per second.
    pub cells_per_sec: f64,
    /// Metric evaluations per second.
    pub metric_evals_per_sec: f64,
}

/// Run the three table experiments end-to-end (prompt assembly → simulated
/// models → extraction → scoring → aggregation) on a fresh benchmark and
/// measure grid throughput.
pub fn measure_grid_throughput() -> GridBenchReport {
    let benchmark = paper_benchmark();
    let trials = benchmark.config().trials;
    let grid_cells: usize = ExperimentKind::ALL
        .iter()
        .map(|&kind| benchmark.grid_cells(kind))
        .sum();

    let start = Instant::now();
    for kind in ExperimentKind::ALL {
        let result = benchmark.run_experiment(kind, PromptVariant::Original);
        std::hint::black_box(&result);
    }
    let wall = start.elapsed().as_secs_f64();

    let scored_hypotheses = grid_cells * trials;
    let metric_evaluations = scored_hypotheses * 2;
    GridBenchReport {
        bench_id: "BENCH_1".to_owned(),
        trials,
        grid_cells,
        scored_hypotheses,
        metric_evaluations,
        prepared_references: benchmark.reference_cache().len(),
        wall_time_secs: wall,
        cells_per_sec: grid_cells as f64 / wall,
        metric_evals_per_sec: metric_evaluations as f64 / wall,
    }
}

impl GridBenchReport {
    /// Pretty JSON for the `BENCH_1.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// Machine-readable evaluation-pipeline throughput report emitted as
/// `BENCH_3.json` (see the crate docs for the schema conventions).
#[derive(Debug, Clone, Serialize)]
pub struct EvaluationBenchReport {
    /// Report schema / sequence tag (`BENCH_3` for the evaluation bench).
    pub bench_id: String,
    /// Trials per cell used for the measurement.
    pub trials: usize,
    /// Full passes over the three experiment grids.
    pub passes: usize,
    /// Evaluated `(row × model)` cells across all passes.
    pub grid_cells: usize,
    /// Responses taken through the full pipeline (`grid_cells × trials`).
    pub evaluations: usize,
    /// Hallucinated API calls detected across the whole workload (a
    /// checksum: it must not drift between runs of the same seed).
    pub hallucinated_calls: usize,
    /// Prepared-reference cache hits across all passes.
    pub cache_hits: u64,
    /// Prepared-reference cache misses (distinct references prepared).
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, in `0.0..=1.0`.
    pub cache_hit_rate: f64,
    /// Wall-clock seconds for all passes.
    pub wall_time_secs: f64,
    /// Full-pipeline evaluations per second — the headline number.
    pub evaluations_per_sec: f64,
}

impl EvaluationBenchReport {
    /// Pretty JSON for the `BENCH_3.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// Run `passes` full passes of the three experiment grids through the
/// evaluation pipeline (extraction → API-call comparison → BLEU/ChrF) on a
/// fresh benchmark and measure end-to-end evaluation throughput.
///
/// Every pass shares one [`wfspeak_core::ReferenceCache`]; the first pass
/// prepares each distinct reference once, later passes only hit.
pub fn measure_evaluation_throughput(passes: usize) -> EvaluationBenchReport {
    let benchmark = paper_benchmark();
    let trials = benchmark.config().trials;
    let cells_per_pass: usize = ExperimentKind::ALL
        .iter()
        .map(|&kind| benchmark.grid_cells(kind))
        .sum();

    let start = Instant::now();
    let mut hallucinated_calls = 0usize;
    let mut evaluations = 0usize;
    for _ in 0..passes {
        for kind in ExperimentKind::ALL {
            let grid = benchmark.run_evaluation(kind, PromptVariant::Original);
            evaluations += grid.total_evaluations();
            hallucinated_calls += grid.hallucinated_calls();
            std::hint::black_box(&grid);
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let cache = benchmark.reference_cache().stats();
    EvaluationBenchReport {
        bench_id: "BENCH_3".to_owned(),
        trials,
        passes,
        grid_cells: cells_per_pass * passes,
        evaluations,
        hallucinated_calls,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_hit_rate: cache.hit_rate(),
        wall_time_secs: wall,
        evaluations_per_sec: evaluations as f64 / wall,
    }
}

/// Run the evaluation bench at its standard scale (3 passes), print the
/// headline numbers and write the report to `path`. Shared by
/// `repro bench-evaluate` and the `evaluation_throughput` bench binary so
/// the two artifacts cannot drift.
pub fn run_evaluation_bench(path: &str) {
    let report = measure_evaluation_throughput(3);
    println!(
        "Evaluation throughput: {} evaluations ({} cells × {} trials, {} passes) in {:.2}s \
         = {:.1} evaluations/s (cache hit rate {:.3}, {} hallucinated calls)",
        report.evaluations,
        report.grid_cells,
        report.trials,
        report.passes,
        report.wall_time_secs,
        report.evaluations_per_sec,
        report.cache_hit_rate,
        report.hallucinated_calls,
    );
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

/// Machine-readable dynamic-execution throughput report emitted as
/// `BENCH_4.json` (see the crate docs for the schema conventions).
#[derive(Debug, Clone, Serialize)]
pub struct ExecutionBenchReport {
    /// Report schema / sequence tag (`BENCH_4` for the execution bench).
    pub bench_id: String,
    /// Trials per cell used for the measurement.
    pub trials: usize,
    /// Full passes over the configuration-experiment grid.
    pub passes: usize,
    /// Executed `(system × model)` cells across all passes.
    pub grid_cells: usize,
    /// Responses taken through extract → parse → run → trace scoring
    /// (`grid_cells × trials`).
    pub executions: usize,
    /// Executions whose workflow ran to completion (a determinism
    /// checksum: must not drift between runs of the same seed).
    pub completed: usize,
    /// Executions whose artifact did not even parse (checksum).
    pub unparsed: usize,
    /// Mean runnability over the whole workload, 0–100 (checksum).
    pub mean_runnability: f64,
    /// Mean trace fidelity over the whole workload, 0–100 (checksum).
    pub mean_fidelity: f64,
    /// Wall-clock seconds for all passes.
    pub wall_time_secs: f64,
    /// Full executions per second — the headline number.
    pub executions_per_sec: f64,
}

impl ExecutionBenchReport {
    /// Pretty JSON for the `BENCH_4.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// Run `passes` full passes of the configuration grid through dynamic
/// execution (every generated configuration parsed and run on the runtime
/// engine) on a fresh benchmark and measure end-to-end execution
/// throughput.
///
/// Every pass shares the benchmark's [`wfspeak_core::ExecutionPipeline`],
/// so each system's reference run happens exactly once.
pub fn measure_execution_throughput(passes: usize) -> ExecutionBenchReport {
    let benchmark = paper_benchmark();
    let trials = benchmark.config().trials;

    let start = Instant::now();
    let mut executions = 0usize;
    let mut completed = 0usize;
    let mut unparsed = 0usize;
    let mut runnability_sum = 0.0f64;
    let mut fidelity_sum = 0.0f64;
    let mut grid_cells = 0usize;
    for _ in 0..passes {
        let grid = benchmark.run_execution(PromptVariant::Original);
        grid_cells += grid.cells.len();
        executions += grid.total_executions();
        completed += grid.completed_executions();
        unparsed += grid
            .cells
            .iter()
            .map(|c| c.unparsed_trials())
            .sum::<usize>();
        runnability_sum += grid.mean_runnability() * grid.total_executions() as f64;
        fidelity_sum += grid.mean_fidelity() * grid.total_executions() as f64;
        std::hint::black_box(&grid);
    }
    let wall = start.elapsed().as_secs_f64();

    ExecutionBenchReport {
        bench_id: "BENCH_4".to_owned(),
        trials,
        passes,
        grid_cells,
        executions,
        completed,
        unparsed,
        mean_runnability: runnability_sum / executions.max(1) as f64,
        mean_fidelity: fidelity_sum / executions.max(1) as f64,
        wall_time_secs: wall,
        executions_per_sec: executions as f64 / wall,
    }
}

/// Run the execution bench at its standard scale (3 passes), print the
/// headline numbers and write the report to `path`. Shared by
/// `repro bench-execute` and the `execution_throughput` bench binary so the
/// two artifacts cannot drift.
pub fn run_execution_bench(path: &str) {
    let report = measure_execution_throughput(3);
    println!(
        "Execution throughput: {} executions ({} cells × {} trials, {} passes) in {:.2}s \
         = {:.1} executions/s ({} completed, {} unparsed, mean runnability {:.2}, mean fidelity {:.2})",
        report.executions,
        report.grid_cells,
        report.trials,
        report.passes,
        report.wall_time_secs,
        report.executions_per_sec,
        report.completed,
        report.unparsed,
        report.mean_runnability,
        report.mean_fidelity,
    );
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

/// One failure category of the parse-bench corpus: a stable
/// [`wfspeak_wyaml::ErrorKind`] code with the number of corpus artifacts
/// whose parse fails with it.
#[derive(Debug, Clone, Serialize)]
pub struct ParseFailureCount {
    /// Stable kebab-case `ErrorKind` code (`tab-indent`, `duplicate-key`, …).
    pub category: String,
    /// Artifacts in the corpus that fail with this category.
    pub count: usize,
}

/// Machine-readable parse-throughput report emitted as `BENCH_7.json` (see
/// the crate docs for the schema conventions).
#[derive(Debug, Clone, Serialize)]
pub struct ParseBenchReport {
    /// Report schema / sequence tag (`BENCH_7` for the parse bench).
    pub bench_id: String,
    /// Artifacts in the corpus (180 with the paper defaults).
    pub artifacts: usize,
    /// Total corpus size in bytes (exact workload counter).
    pub total_bytes: usize,
    /// Timed passes over the corpus, per parser.
    pub passes: usize,
    /// Corpus artifacts the parser accepts (determinism checksum: must not
    /// drift between runs of the same seed).
    pub parsed_ok: usize,
    /// Per-`ErrorKind` counts over the rejected artifacts, most frequent
    /// first, ties broken by category (checksum).
    pub failure_categories: Vec<ParseFailureCount>,
    /// Wall-clock seconds for all passes of the pre-rewrite parser
    /// ([`wfspeak_wyaml::baseline`]).
    pub baseline_wall_time_secs: f64,
    /// Pre-rewrite parses per second.
    pub baseline_parses_per_sec: f64,
    /// Wall-clock seconds for the rewritten owned entry point
    /// ([`wfspeak_wyaml::parse()`]: zero-copy parse + `into_owned`).
    pub owned_wall_time_secs: f64,
    /// Owned-entry-point parses per second.
    pub owned_parses_per_sec: f64,
    /// Wall-clock seconds for the borrowed entry point
    /// ([`wfspeak_wyaml::parse_document`], no owned conversion).
    pub zero_copy_wall_time_secs: f64,
    /// Zero-copy parses per second — the headline number.
    pub zero_copy_parses_per_sec: f64,
    /// Zero-copy corpus throughput in MB/s.
    pub zero_copy_mb_per_sec: f64,
    /// `baseline_wall_time_secs / owned_wall_time_secs` — the apples-to-
    /// apples speedup of the rewrite behind the unchanged owned API.
    pub speedup_owned_vs_baseline: f64,
    /// `baseline_wall_time_secs / zero_copy_wall_time_secs` — the speedup
    /// when consumers use the borrowed document directly.
    pub speedup_zero_copy_vs_baseline: f64,
}

impl ParseBenchReport {
    /// Pretty JSON for the `BENCH_7.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// Measure wyaml parse throughput over the generated configuration corpus
/// ([`wfspeak_core::Benchmark::configuration_corpus`]): `passes` timed
/// passes each for the pre-rewrite baseline parser, the rewritten owned
/// entry point and the borrowed zero-copy entry point, plus one untimed
/// pass that records the accept count and per-`ErrorKind` failure
/// categories as determinism checksums.
pub fn measure_parse_throughput(passes: usize) -> ParseBenchReport {
    use wfspeak_wyaml::{baseline, parse, parse_document};

    let corpus = paper_benchmark().configuration_corpus();
    let artifacts = corpus.len();
    let total_bytes: usize = corpus.iter().map(String::len).sum();

    // Checksum pass: outcome of the rewritten parser over the corpus.
    let mut parsed_ok = 0usize;
    let mut categories: Vec<(String, usize)> = Vec::new();
    for doc in &corpus {
        match parse(doc) {
            Ok(_) => parsed_ok += 1,
            Err(e) => {
                let code = e.kind.code().to_owned();
                match categories.iter_mut().find(|(c, _)| *c == code) {
                    Some((_, n)) => *n += 1,
                    None => categories.push((code, 1)),
                }
            }
        }
    }
    categories.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // The three parsers are timed in interleaved passes (baseline, owned,
    // zero-copy, repeat) so clock-frequency drift over the measurement
    // cannot systematically favour one of them.
    let time_pass = |parse_one: &dyn Fn(&str)| {
        let start = Instant::now();
        for doc in &corpus {
            parse_one(doc);
        }
        start.elapsed().as_secs_f64()
    };
    let mut baseline_wall = 0.0f64;
    let mut owned_wall = 0.0f64;
    let mut zero_copy_wall = 0.0f64;
    for _ in 0..passes {
        baseline_wall += time_pass(&|doc| {
            std::hint::black_box(baseline::parse(doc).is_ok());
        });
        owned_wall += time_pass(&|doc| {
            std::hint::black_box(parse(doc).is_ok());
        });
        zero_copy_wall += time_pass(&|doc| {
            std::hint::black_box(parse_document(doc).is_ok());
        });
    }

    let parses = (artifacts * passes) as f64;
    ParseBenchReport {
        bench_id: "BENCH_7".to_owned(),
        artifacts,
        total_bytes,
        passes,
        parsed_ok,
        failure_categories: categories
            .into_iter()
            .map(|(category, count)| ParseFailureCount { category, count })
            .collect(),
        baseline_wall_time_secs: baseline_wall,
        baseline_parses_per_sec: parses / baseline_wall,
        owned_wall_time_secs: owned_wall,
        owned_parses_per_sec: parses / owned_wall,
        zero_copy_wall_time_secs: zero_copy_wall,
        zero_copy_parses_per_sec: parses / zero_copy_wall,
        zero_copy_mb_per_sec: (total_bytes * passes) as f64 / zero_copy_wall / 1e6,
        speedup_owned_vs_baseline: baseline_wall / owned_wall,
        speedup_zero_copy_vs_baseline: baseline_wall / zero_copy_wall,
    }
}

/// Run the parse bench at its standard scale (400 passes; `WFSPEAK_PARSE_PASSES`
/// overrides, so the CI smoke can run a bounded sweep), print the headline
/// numbers and write the report to `path`. Shared by `repro bench-parse`
/// and the `parse_throughput` bench binary so the two artifacts cannot
/// drift.
pub fn run_parse_bench(path: &str) {
    let passes = std::env::var("WFSPEAK_PARSE_PASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&p: &usize| p > 0)
        .unwrap_or(400);
    let report = measure_parse_throughput(passes);
    let failures: Vec<String> = report
        .failure_categories
        .iter()
        .map(|f| format!("{}×{}", f.category, f.count))
        .collect();
    println!(
        "Parse throughput: {} artifacts ({} bytes) × {} passes: baseline {:.0}/s, \
         owned {:.0}/s ({:.2}×), zero-copy {:.0}/s ({:.2}×, {:.1} MB/s); \
         {} parse OK, failures: {}",
        report.artifacts,
        report.total_bytes,
        report.passes,
        report.baseline_parses_per_sec,
        report.owned_parses_per_sec,
        report.speedup_owned_vs_baseline,
        report.zero_copy_parses_per_sec,
        report.speedup_zero_copy_vs_baseline,
        report.zero_copy_mb_per_sec,
        report.parsed_ok,
        if failures.is_empty() {
            "none".to_owned()
        } else {
            failures.join(", ")
        },
    );
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

/// One topology tier of the runtime-scaling measurement: a shape at a task
/// count, run through validate → normalize → engine → trace summary.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingTierReport {
    /// Topology shape label (`fan-out`, `chain`, `diamond`, `random`).
    pub shape: String,
    /// Tasks in the generated workflow.
    pub tasks: usize,
    /// Producer→consumer edges in the generated workflow.
    pub edges: usize,
    /// Dataset messages published during the run (exact counter).
    pub published: usize,
    /// Dataset messages received during the run (exact counter).
    pub received: usize,
    /// FNV-1a fold of the run's [`wfspeak_runtime::TraceSummary`], as a
    /// `0x`-prefixed hex string (JSON numbers would lose the top bit): the
    /// tier's determinism checksum, identical across channel capacities
    /// and repeat runs of the same seed.
    pub checksum: String,
    /// Wall-clock seconds for the measured (first-capacity) run.
    pub wall_time_secs: f64,
    /// Tasks executed per second in the measured run.
    pub tasks_per_sec: f64,
    /// Dataset messages moved (published + received) per second.
    pub messages_per_sec: f64,
}

/// Machine-readable engine-scaling report emitted as `BENCH_5.json` (see
/// the crate docs for the schema conventions).
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeScalingReport {
    /// Report schema / sequence tag (`BENCH_5` for the scaling bench).
    pub bench_id: String,
    /// Seed the topology generator and the engine ran under.
    pub seed: u64,
    /// Timesteps per run.
    pub timesteps: usize,
    /// Upper bound on tier size in force (`WFSPEAK_SCALING_MAX`), absent
    /// for the unbounded full sweep.
    pub max_tasks: Option<usize>,
    /// Per-tier workload counters, checksums and rates.
    pub tiers: Vec<ScalingTierReport>,
    /// Tasks executed across all measured tiers.
    pub total_tasks: usize,
    /// Dataset messages moved across all measured tiers.
    pub total_messages: usize,
    /// True when every tier's two capacity runs summarised identically
    /// (trace fidelity exactly 1.0) — the report's headline determinism
    /// claim.
    pub deterministic: bool,
    /// FNV-1a fold of every tier checksum, in tier order, as a
    /// `0x`-prefixed hex string.
    pub checksum: String,
    /// Wall-clock seconds for all measured runs (both capacities).
    pub wall_time_secs: f64,
    /// Tasks executed per second across the measured (first-capacity) runs.
    pub tasks_per_sec: f64,
}

impl RuntimeScalingReport {
    /// Pretty JSON for the `BENCH_5.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// FNV-1a over a byte slice, seeded with `hash` (chainable).
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Fold a [`wfspeak_runtime::TraceSummary`] into a stable u64: every map is
/// ordered (`BTreeMap`), so the fold is a pure function of the counts.
fn summary_checksum(summary: &wfspeak_runtime::TraceSummary) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for (label, count) in &summary.events {
        hash = fnv1a(hash, label.as_bytes());
        hash = fnv1a(hash, &(*count as u64).to_le_bytes());
    }
    for map in [&summary.published, &summary.received] {
        for (dataset, count) in map {
            hash = fnv1a(hash, dataset.as_bytes());
            hash = fnv1a(hash, &(*count as u64).to_le_bytes());
        }
    }
    for map in [
        &summary.tasks_started,
        &summary.tasks_finished,
        &summary.tasks_failed,
    ] {
        for (task, count) in map {
            hash = fnv1a(hash, task.as_bytes());
            hash = fnv1a(hash, &(*count as u64).to_le_bytes());
        }
    }
    hash
}

/// Run the synthetic-topology suite (every acyclic shape at every
/// [`wfspeak_systems::topo::BENCH_SIZES`] tier up to `max_tasks`) through
/// validate → normalize → engine → [`wfspeak_runtime::TraceSummary`], each
/// tier twice at different channel capacities, and report per-tier
/// throughput plus determinism checksums.
///
/// Panics if a generated spec fails validation or an engine run errors —
/// the suite is the engine's own test corpus, so either is a bug, not a
/// measurement.
pub fn measure_runtime_scaling(max_tasks: usize, seed: u64) -> RuntimeScalingReport {
    use wfspeak_runtime::{Engine, EngineConfig};
    use wfspeak_systems::topo::bench_suite;

    let engine_config = |channel_capacity: usize| EngineConfig {
        channel_capacity,
        elements: 16,
        // Generous: the 1000-task tiers run thousands of threads through
        // one scheduler; a receive is only "stuck" if nothing moves for
        // minutes.
        timeout_ms: 120_000,
        seed,
        ..EngineConfig::default()
    };

    let start = Instant::now();
    let mut tiers = Vec::new();
    let mut deterministic = true;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut total_tasks = 0usize;
    let mut total_messages = 0usize;
    let mut measured_wall = 0.0f64;
    let mut timesteps = 0usize;

    for topo in bench_suite(seed) {
        if topo.tasks > max_tasks {
            continue;
        }
        let spec = topo.generate();
        assert!(
            spec.is_structurally_valid(),
            "{}: generated spec failed validation",
            topo.name()
        );
        let spec = spec.normalized();

        let tier_start = Instant::now();
        let outcome = Engine::new(engine_config(8))
            .run(&spec)
            .unwrap_or_else(|e| panic!("{}: engine run failed: {e}", topo.name()));
        let tier_wall = tier_start.elapsed().as_secs_f64();
        assert!(outcome.completed, "{}: run did not complete", topo.name());
        let summary = outcome.summary();
        timesteps = outcome.timesteps;

        // Determinism recheck: a different channel capacity only reorders
        // scheduling, so the summary must be bit-identical.
        let recheck = Engine::new(engine_config(2))
            .run(&spec)
            .unwrap_or_else(|e| panic!("{}: recheck run failed: {e}", topo.name()))
            .summary();
        deterministic &= summary == recheck && (summary.fidelity(&recheck) - 1.0).abs() < 1e-12;

        let published = summary.total_published();
        let received = summary.total_received();
        let messages = published + received;
        let tier_checksum = summary_checksum(&summary);
        checksum = fnv1a(checksum, &tier_checksum.to_le_bytes());
        total_tasks += spec.tasks.len();
        total_messages += messages;
        measured_wall += tier_wall;
        tiers.push(ScalingTierReport {
            shape: topo.shape.label().to_owned(),
            tasks: spec.tasks.len(),
            edges: spec.edges().len(),
            published,
            received,
            checksum: format!("{tier_checksum:#018x}"),
            wall_time_secs: tier_wall,
            tasks_per_sec: spec.tasks.len() as f64 / tier_wall,
            messages_per_sec: messages as f64 / tier_wall,
        });
    }

    RuntimeScalingReport {
        bench_id: "BENCH_5".to_owned(),
        seed,
        timesteps,
        max_tasks: (max_tasks != usize::MAX).then_some(max_tasks),
        tiers,
        total_tasks,
        total_messages,
        deterministic,
        checksum: format!("{checksum:#018x}"),
        wall_time_secs: start.elapsed().as_secs_f64(),
        tasks_per_sec: total_tasks as f64 / measured_wall.max(f64::MIN_POSITIVE),
    }
}

/// The tier bound the scaling bench honours: `WFSPEAK_SCALING_MAX` (used by
/// the CI smoke to stop at the 100-task tier), unbounded by default.
pub fn scaling_max_tasks() -> usize {
    std::env::var("WFSPEAK_SCALING_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Run the runtime-scaling bench over the full suite (bounded by
/// `WFSPEAK_SCALING_MAX` when set), print the headline numbers and write
/// the report to `path`. Shared by `repro bench-scaling` and the
/// `runtime_scaling` bench binary so the two artifacts cannot drift.
pub fn run_runtime_scaling_bench(path: &str) {
    let report = measure_runtime_scaling(scaling_max_tasks(), 42);
    println!(
        "Runtime scaling: {} tiers, {} tasks, {} messages in {:.2}s \
         = {:.1} tasks/s (deterministic: {}, checksum {})",
        report.tiers.len(),
        report.total_tasks,
        report.total_messages,
        report.wall_time_secs,
        report.tasks_per_sec,
        report.deterministic,
        report.checksum,
    );
    for tier in &report.tiers {
        println!(
            "  {:>8} × {:>4}: {:>6} msgs in {:>7.3}s = {:>8.1} msgs/s (checksum {})",
            tier.shape,
            tier.tasks,
            tier.published + tier.received,
            tier.wall_time_secs,
            tier.messages_per_sec,
            tier.checksum,
        );
    }
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

/// Machine-readable scoring-service throughput report emitted as
/// `BENCH_2.json` (see the crate docs for the schema conventions).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceBenchReport {
    /// Report schema / sequence tag (`BENCH_2` for the service bench).
    pub bench_id: String,
    /// Concurrent client connections driving the server.
    pub clients: usize,
    /// Total score requests (batches) sent across all clients.
    pub requests: usize,
    /// Hypotheses per request.
    pub batch_size: usize,
    /// Hypotheses scored (`requests × batch_size`), as counted by the server.
    pub scored_hypotheses: usize,
    /// Prepared-reference cache hits across all connections.
    pub cache_hits: u64,
    /// Prepared-reference cache misses (distinct references prepared).
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, in `0.0..=1.0`.
    pub cache_hit_rate: f64,
    /// Wall-clock seconds from first request sent to last response read.
    pub wall_time_secs: f64,
    /// Requests (batches) completed per second.
    pub requests_per_sec: f64,
    /// Hypotheses scored per second — the headline service-throughput number.
    pub hypotheses_per_sec: f64,
}

impl ServiceBenchReport {
    /// Pretty JSON for the `BENCH_2.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// Run the service-throughput measurement at its standard scale (4 clients
/// × 64 requests × 8 hypotheses), print the headline numbers and write the
/// report to `path`. Shared by `repro bench-service` and the
/// `service_throughput` bench binary so the two artifacts cannot drift.
pub fn run_service_bench(path: &str) {
    let report = measure_service_throughput(4, 64, 8);
    println!(
        "Service throughput: {} requests ({} hypotheses) over {} clients in {:.2}s \
         = {:.1} req/s, {:.1} hypotheses/s (cache hit rate {:.3})",
        report.requests,
        report.scored_hypotheses,
        report.clients,
        report.wall_time_secs,
        report.requests_per_sec,
        report.hypotheses_per_sec,
        report.cache_hit_rate,
    );
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

/// The built-in references the service bench cycles through: every
/// task/system address the corpus can resolve (3 configuration, 4
/// annotation, 4 translation targets), with the reference text alongside
/// for client-side hypothesis generation.
fn service_workload_addresses() -> Vec<(TaskKind, &'static str, &'static str)> {
    use wfspeak_corpus::references::{annotation_reference, configuration_reference};
    use wfspeak_corpus::WorkflowSystemId;
    let mut addresses = Vec::new();
    for system in WorkflowSystemId::configuration_systems() {
        let reference = configuration_reference(system).expect("configuration reference");
        addresses.push((TaskKind::Configuration, system.name(), reference));
    }
    for system in WorkflowSystemId::annotation_systems() {
        let reference = annotation_reference(system).expect("annotation reference");
        addresses.push((TaskKind::Annotation, system.name(), reference));
        // Translation targets share the annotation references.
        addresses.push((TaskKind::Translation, system.name(), reference));
    }
    addresses
}

/// Deterministic hypothesis batch for one request: mutations of the
/// reference with varied quality, stamped with the request index so
/// repeated requests are not byte-identical.
fn service_hypotheses(reference: &str, request_index: usize, batch_size: usize) -> Vec<String> {
    (0..batch_size)
        .map(|i| match i % 4 {
            0 => reference.to_owned(),
            1 => reference.chars().take(reference.len() / 2).collect(),
            2 => format!("{reference}\nextra_line_{request_index}"),
            _ => format!("unrelated hypothesis {request_index} {i}"),
        })
        .collect()
}

/// Boot a scoring server on an ephemeral loopback port, drive it from
/// `clients` concurrent connections sending `requests_per_client` pipelined
/// batches of `batch_size` hypotheses each, and report throughput plus the
/// shared cache's hit rate.
pub fn measure_service_throughput(
    clients: usize,
    requests_per_client: usize,
    batch_size: usize,
) -> ServiceBenchReport {
    // Pipelining window per client: enough to keep the worker pool busy
    // without the client-side send path outrunning its own reads.
    const WINDOW: usize = 16;

    let server = ScoringServer::spawn("127.0.0.1:0", ServiceConfig::default())
        .expect("loopback bind cannot fail");
    let addr = server.addr();
    let addresses = service_workload_addresses();

    let start = Instant::now();
    std::thread::scope(|scope| {
        let addresses = &addresses;
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client =
                        ScoringClient::connect(addr).expect("loopback connect cannot fail");
                    let mut in_flight = 0usize;
                    for request_index in 0..requests_per_client {
                        let (task, system, reference) =
                            addresses[(client_index + request_index) % addresses.len()];
                        let request = ScoreRequest::by_id(
                            client.fresh_id(),
                            task,
                            system,
                            service_hypotheses(reference, request_index, batch_size),
                        );
                        client.send(&request).expect("send over loopback");
                        in_flight += 1;
                        if in_flight >= WINDOW {
                            let response = client.recv().expect("recv over loopback");
                            assert!(response.ok, "bench request failed: {:?}", response.error);
                            in_flight -= 1;
                        }
                    }
                    for response in client.collect(in_flight).expect("drain responses") {
                        assert!(response.ok, "bench request failed: {:?}", response.error);
                    }
                    client.close();
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("bench client panicked");
        }
    });
    let wall = start.elapsed().as_secs_f64();

    let stats = server.stats();
    server.shutdown();

    let requests = clients * requests_per_client;
    assert_eq!(
        stats.requests, requests as u64,
        "server counted every batch"
    );
    ServiceBenchReport {
        bench_id: "BENCH_2".to_owned(),
        clients,
        requests,
        batch_size,
        scored_hypotheses: stats.hypotheses as usize,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_hit_rate: stats.cache_hit_rate(),
        wall_time_secs: wall,
        requests_per_sec: requests as f64 / wall,
        hypotheses_per_sec: stats.hypotheses as f64 / wall,
    }
}

/// One client-count tier of the connection-scaling bench.
#[derive(Debug, Clone, Serialize)]
pub struct ConnectionTierReport {
    /// Concurrent closed-loop client connections in this tier.
    pub clients: usize,
    /// Total requests completed across all clients (exact counter).
    pub requests: usize,
    /// Hypotheses scored (`requests × batch_size`), as counted by the server.
    pub hypotheses: usize,
    /// Wall-clock seconds from barrier release to last response read.
    pub wall_time_secs: f64,
    /// Requests completed per second — the scaling-curve signal.
    pub requests_per_sec: f64,
    /// Hypotheses scored per second.
    pub hypotheses_per_sec: f64,
    /// Server-side p50 admission→reply latency, microseconds (power-of-two
    /// bucket upper bound).
    pub latency_p50_us: u64,
    /// Server-side p95 admission→reply latency, microseconds.
    pub latency_p95_us: u64,
    /// Server-side p99 admission→reply latency, microseconds.
    pub latency_p99_us: u64,
}

/// Machine-readable connection-scaling report emitted as `BENCH_6.json`
/// (see the crate docs for the schema conventions).
#[derive(Debug, Clone, Serialize)]
pub struct ConnectionScalingReport {
    /// Report schema / sequence tag (`BENCH_6` for the connection bench).
    pub bench_id: String,
    /// Event-loop threads each tier's server ran with.
    pub io_threads: usize,
    /// Hypotheses per request.
    pub batch_size: usize,
    /// Closed-loop client think time between requests, milliseconds: the
    /// idle gap each connection holds open, which the event loop must
    /// multiplex without burning a thread on it.
    pub think_time_ms: u64,
    /// Client-count bound in force (`WFSPEAK_CONNECTIONS_MAX`), absent for
    /// the full 4→1024 sweep.
    pub max_clients: Option<usize>,
    /// Per-tier workload counters, rates and latency percentiles.
    pub tiers: Vec<ConnectionTierReport>,
    /// Requests completed across all tiers.
    pub total_requests: usize,
    /// Hypotheses scored across all tiers.
    pub total_hypotheses: usize,
    /// FNV-1a fold of every tier's deterministic counters (clients,
    /// requests, hypotheses — never the timings), as a `0x`-prefixed hex
    /// string: two runs of the same configuration must match.
    pub summary_checksum: String,
    /// Wall-clock seconds across all tiers (including connection setup).
    pub wall_time_secs: f64,
}

impl ConnectionScalingReport {
    /// Pretty JSON for the `BENCH_6.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

/// The full-sweep client tiers for the connection bench.
pub const CONNECTION_TIERS: [usize; 3] = [4, 256, 1024];

/// The client-count bound the connection bench honours:
/// `WFSPEAK_CONNECTIONS_MAX` (used by the CI smoke to stop at 64 clients),
/// unbounded by default.
pub fn connections_max() -> usize {
    std::env::var("WFSPEAK_CONNECTIONS_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Drive one server with `clients` concurrent closed-loop connections
/// (connect, barrier, then send→recv→think loops) until `total_requests`
/// complete, and return the tier's counters, rates and server-side latency
/// percentiles. One fresh server per tier keeps the latency histogram
/// scoped to the tier.
fn measure_connection_tier(
    io_threads: usize,
    clients: usize,
    total_requests: usize,
    batch_size: usize,
    think_time: std::time::Duration,
) -> ConnectionTierReport {
    use std::sync::Barrier;

    // The bench measures the event loop and worker pool, not admission
    // shedding: size the queue to the client count so a closed-loop
    // request never parks, and keep the admission timeout generous in
    // case it ever does.
    let config = ServiceConfig {
        io_threads,
        queue_depth: clients.max(256),
        admission_timeout: std::time::Duration::from_secs(30),
        ..ServiceConfig::default()
    };
    let server = ScoringServer::spawn("127.0.0.1:0", config).expect("loopback bind cannot fail");
    let addr = server.addr();
    let reference = wfspeak_corpus::references::configuration_reference(
        wfspeak_corpus::WorkflowSystemId::Wilkins,
    )
    .expect("configuration reference");
    let requests_per_client = (total_requests / clients).max(1);
    let requests = requests_per_client * clients;

    // All clients connect before any sends: the measured window is pure
    // request traffic, not connection setup.
    let barrier = Barrier::new(clients + 1);
    let start = std::thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = (0..clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client =
                        ScoringClient::connect(addr).expect("loopback connect cannot fail");
                    barrier.wait();
                    for request_index in 0..requests_per_client {
                        let hypotheses = (0..batch_size)
                            .map(|i| {
                                format!("workflow step {i} of request {request_index} from client {client_index}")
                            })
                            .collect();
                        let request =
                            ScoreRequest::by_text(client.fresh_id(), reference, hypotheses);
                        client.send(&request).expect("send over loopback");
                        let response = client.recv().expect("recv over loopback");
                        assert!(response.ok, "bench request failed: {:?}", response.error);
                        // Closed-loop think time: the connection sits idle
                        // (but open) between requests, so aggregate
                        // throughput scales with the number of connections
                        // the event loop can hold until the worker pool
                        // saturates.
                        if !think_time.is_zero() && request_index + 1 < requests_per_client {
                            std::thread::sleep(think_time);
                        }
                    }
                    client.close();
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            handle.join().expect("bench client panicked");
        }
        start
    });
    let wall = start.elapsed().as_secs_f64();

    let stats = server.stats();
    server.shutdown();
    assert_eq!(
        stats.requests, requests as u64,
        "server counted every request"
    );
    assert_eq!(
        stats.latency_samples, requests as u64,
        "every request recorded a latency sample"
    );
    ConnectionTierReport {
        clients,
        requests,
        hypotheses: stats.hypotheses as usize,
        wall_time_secs: wall,
        requests_per_sec: requests as f64 / wall,
        hypotheses_per_sec: stats.hypotheses as f64 / wall,
        latency_p50_us: stats.latency_p50_us,
        latency_p95_us: stats.latency_p95_us,
        latency_p99_us: stats.latency_p99_us,
    }
}

/// The client tiers a sweep bounded at `max_clients` actually runs: the
/// sweep points of [`CONNECTION_TIERS`] up to the bound, with the bound
/// itself appended as a final tier when it falls between sweep points (so
/// a CI cap of 64 still measures a >4-client tier), and the bound alone
/// when it sits below the smallest sweep point.
pub fn connection_tiers_for(max_clients: usize) -> Vec<usize> {
    let mut tiers: Vec<usize> = CONNECTION_TIERS
        .iter()
        .copied()
        .filter(|&clients| clients <= max_clients)
        .collect();
    if tiers.last() != Some(&max_clients)
        && max_clients > CONNECTION_TIERS[0]
        && max_clients < *CONNECTION_TIERS.last().expect("tiers nonempty")
    {
        tiers.push(max_clients);
    }
    if tiers.is_empty() {
        tiers.push(max_clients.max(1));
    }
    tiers
}

/// Run the connection-scaling sweep: the tiers of [`connection_tiers_for`],
/// each pushing `total_requests` requests of `batch_size` hypotheses
/// through a fresh event-driven server.
pub fn measure_connection_scaling(
    io_threads: usize,
    max_clients: usize,
    total_requests: usize,
    batch_size: usize,
    think_time: std::time::Duration,
) -> ConnectionScalingReport {
    let tiers_to_run = connection_tiers_for(max_clients);
    let start = Instant::now();
    let tiers: Vec<ConnectionTierReport> = tiers_to_run
        .iter()
        .map(|&clients| {
            measure_connection_tier(io_threads, clients, total_requests, batch_size, think_time)
        })
        .collect();

    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for tier in &tiers {
        for counter in [
            tier.clients as u64,
            tier.requests as u64,
            tier.hypotheses as u64,
        ] {
            checksum = fnv1a(checksum, &counter.to_le_bytes());
        }
    }
    ConnectionScalingReport {
        bench_id: "BENCH_6".to_owned(),
        io_threads,
        batch_size,
        think_time_ms: think_time.as_millis() as u64,
        max_clients: (max_clients != usize::MAX).then_some(max_clients),
        total_requests: tiers.iter().map(|t| t.requests).sum(),
        total_hypotheses: tiers.iter().map(|t| t.hypotheses).sum(),
        summary_checksum: format!("{checksum:#018x}"),
        wall_time_secs: start.elapsed().as_secs_f64(),
        tiers,
    }
}

/// Run the connection-scaling bench at its standard scale (4096 requests ×
/// 4 hypotheses per tier, 2ms closed-loop think time, tiers bounded by
/// `WFSPEAK_CONNECTIONS_MAX` when set), print the scaling curve and write
/// the report to `path`. Shared by `repro bench-connections` and the
/// `connection_scaling` bench binary so the two artifacts cannot drift.
pub fn run_connection_bench(path: &str, io_threads: usize) {
    let report = measure_connection_scaling(
        io_threads,
        connections_max(),
        4096,
        4,
        std::time::Duration::from_millis(2),
    );
    println!(
        "Connection scaling: {} tiers, {} requests ({} hypotheses) in {:.2}s \
         with {} io thread(s) (checksum {})",
        report.tiers.len(),
        report.total_requests,
        report.total_hypotheses,
        report.wall_time_secs,
        report.io_threads,
        report.summary_checksum,
    );
    for tier in &report.tiers {
        println!(
            "  {:>5} clients: {:>6} reqs in {:>7.3}s = {:>8.1} req/s, {:>9.1} hyp/s \
             (p50 {}us, p95 {}us, p99 {}us)",
            tier.clients,
            tier.requests,
            tier.wall_time_secs,
            tier.requests_per_sec,
            tier.hypotheses_per_sec,
            tier.latency_p50_us,
            tier.latency_p95_us,
            tier.latency_p99_us,
        );
    }
    match std::fs::write(path, report.to_json() + "\n") {
        Ok(()) => println!("Wrote {path}\n"),
        Err(e) => eprintln!("Could not write {path}: {e}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_benchmarks_with_expected_trial_counts() {
        assert_eq!(paper_benchmark().config().trials, 5);
        assert_eq!(bench_benchmark().config().trials, 1);
    }

    #[test]
    fn service_throughput_report_is_consistent() {
        // Small scale so the test stays fast; the real bench uses more.
        let report = measure_service_throughput(2, 12, 4);
        assert_eq!(report.requests, 24);
        assert_eq!(report.scored_hypotheses, 24 * 4);
        // 11 addresses resolve to 7 distinct reference texts (translation
        // targets share the annotation references), and the cache is keyed
        // by text; every later lookup hits.
        assert_eq!(report.cache_misses, 7);
        assert_eq!(report.cache_hits as usize, report.requests - 7);
        assert!(report.cache_hit_rate > 0.5);
        assert!(report.wall_time_secs > 0.0);
        assert!(report.hypotheses_per_sec > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_2\""));
        assert!(json.contains("hypotheses_per_sec"));
    }

    #[test]
    fn connection_scaling_report_is_consistent() {
        // Tiny sweep: a 2-client cap falls below every sweep point, so the
        // bench runs a single 2-client tier.
        let report = measure_connection_scaling(1, 2, 8, 2, std::time::Duration::ZERO);
        assert_eq!(report.bench_id, "BENCH_6");
        assert_eq!(report.io_threads, 1);
        assert_eq!(report.max_clients, Some(2));
        assert_eq!(report.tiers.len(), 1);
        let tier = &report.tiers[0];
        assert_eq!(tier.clients, 2);
        assert_eq!(tier.requests, 8);
        assert_eq!(tier.hypotheses, 16);
        assert_eq!(report.total_requests, 8);
        assert_eq!(report.total_hypotheses, 16);
        // Latency percentiles come from the power-of-two histogram: with
        // samples recorded they are nonzero bucket bounds and monotone.
        assert!(tier.latency_p50_us >= 1);
        assert!(tier.latency_p50_us <= tier.latency_p95_us);
        assert!(tier.latency_p95_us <= tier.latency_p99_us);
        assert!(tier.wall_time_secs > 0.0 && tier.requests_per_sec > 0.0);
        // The checksum folds only workload counters, so a re-run of the
        // same configuration matches bit for bit.
        let rerun = measure_connection_scaling(1, 2, 8, 2, std::time::Duration::ZERO);
        assert_eq!(report.summary_checksum, rerun.summary_checksum);
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_6\""));
        assert!(json.contains("latency_p99_us"));
        assert!(json.contains("summary_checksum"));
    }

    #[test]
    fn connection_tier_selection_honours_the_cap() {
        // Full sweep when unbounded; cut-and-append when capped between
        // sweep points; smallest tier only when capped below it.
        assert_eq!(connection_tiers_for(usize::MAX), vec![4, 256, 1024]);
        assert_eq!(connection_tiers_for(1024), vec![4, 256, 1024]);
        assert_eq!(connection_tiers_for(512), vec![4, 256, 512]);
        assert_eq!(connection_tiers_for(64), vec![4, 64]);
        assert_eq!(connection_tiers_for(4), vec![4]);
        assert_eq!(connection_tiers_for(2), vec![2]);
    }

    #[test]
    fn evaluation_throughput_report_is_consistent() {
        let report = measure_evaluation_throughput(2);
        assert_eq!(report.passes, 2);
        // 3 config systems + 4 annotation systems + 4 translation pairs,
        // each × 4 models, per pass.
        assert_eq!(report.grid_cells, (3 + 4 + 4) * 4 * 2);
        assert_eq!(report.evaluations, report.grid_cells * report.trials);
        // 11 grid rows per pass resolve to 7 distinct reference texts
        // (translation targets share the annotation references); the first
        // pass prepares each once, everything later hits.
        assert_eq!(report.cache_misses, 7);
        assert_eq!(report.cache_hits, 4 + 11);
        assert!(report.cache_hit_rate > 0.5);
        assert!(report.evaluations_per_sec > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_3\""));
        assert!(json.contains("evaluations_per_sec"));
    }

    #[test]
    fn execution_throughput_report_is_consistent() {
        let report = measure_execution_throughput(2);
        assert_eq!(report.passes, 2);
        // 5 execution systems × 4 models, per pass.
        assert_eq!(report.grid_cells, 5 * 4 * 2);
        assert_eq!(report.executions, report.grid_cells * report.trials);
        assert!(report.completed > 0, "exact-tier artifacts must complete");
        assert!(report.unparsed > 0, "wrong-tier artifacts must fail parse");
        assert!(report.completed + report.unparsed <= report.executions);
        assert!(report.mean_runnability > 0.0 && report.mean_runnability < 100.0);
        assert!(report.mean_fidelity > 0.0 && report.mean_fidelity < 100.0);
        assert!(report.executions_per_sec > 0.0);
        // The checksums are deterministic for a fixed seed.
        let again = measure_execution_throughput(2);
        assert_eq!(report.completed, again.completed);
        assert_eq!(report.unparsed, again.unparsed);
        assert_eq!(
            report.mean_runnability.to_bits(),
            again.mean_runnability.to_bits()
        );
        assert_eq!(
            report.mean_fidelity.to_bits(),
            again.mean_fidelity.to_bits()
        );
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_4\""));
        assert!(json.contains("executions_per_sec"));
    }

    #[test]
    fn parse_throughput_report_is_consistent() {
        let report = measure_parse_throughput(2);
        assert_eq!(report.passes, 2);
        // 3 configuration systems × 4 models × 5 trials × 3 prompt
        // variants: the corpus the acceptance criterion pins.
        assert_eq!(report.artifacts, 180);
        assert!(report.total_bytes > 0);
        // Exact-tier Wilkins/ADIOS2 output parses; Henson scripts and
        // degraded tiers populate the failure categories.
        assert!(report.parsed_ok > 0, "well-formed artifacts must parse");
        assert!(
            !report.failure_categories.is_empty(),
            "degraded artifacts must populate failure categories"
        );
        let failed: usize = report.failure_categories.iter().map(|f| f.count).sum();
        assert_eq!(report.parsed_ok + failed, report.artifacts);
        assert!(report.baseline_parses_per_sec > 0.0);
        assert!(report.owned_parses_per_sec > 0.0);
        assert!(report.zero_copy_parses_per_sec > 0.0);
        // The outcome checksums are deterministic for a fixed seed.
        let again = measure_parse_throughput(2);
        assert_eq!(report.parsed_ok, again.parsed_ok);
        assert_eq!(
            report
                .failure_categories
                .iter()
                .map(|f| (f.category.clone(), f.count))
                .collect::<Vec<_>>(),
            again
                .failure_categories
                .iter()
                .map(|f| (f.category.clone(), f.count))
                .collect::<Vec<_>>()
        );
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_7\""));
        assert!(json.contains("speedup_zero_copy_vs_baseline"));
        assert!(json.contains("failure_categories"));
    }

    #[test]
    fn grid_throughput_report_is_consistent() {
        let report = measure_grid_throughput();
        // 3 config systems + 4 annotation systems + 4 translation pairs,
        // each × 4 models.
        assert_eq!(report.grid_cells, (3 + 4 + 4) * 4);
        assert_eq!(report.scored_hypotheses, report.grid_cells * report.trials);
        assert_eq!(report.metric_evaluations, report.scored_hypotheses * 2);
        assert!(report.prepared_references >= 3);
        assert!(report.wall_time_secs > 0.0);
        assert!(report.cells_per_sec > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_1\""));
        assert!(json.contains("cells_per_sec"));
    }

    #[test]
    fn runtime_scaling_report_is_deterministic_at_the_smoke_tier() {
        let report = measure_runtime_scaling(100, 42);
        // 2 sizes (10, 100) × 4 acyclic shapes.
        assert_eq!(report.tiers.len(), 8);
        assert_eq!(report.max_tasks, Some(100));
        assert!(
            report.deterministic,
            "summaries must match across capacities"
        );
        assert!(report.total_tasks > 0 && report.total_messages > 0);
        assert!(report.wall_time_secs > 0.0 && report.tasks_per_sec > 0.0);
        for tier in &report.tiers {
            assert!(tier.tasks <= 100);
            assert!(tier.published > 0 && tier.received > 0);
            assert!(tier.messages_per_sec > 0.0);
        }
        // The checksum is a pure fold over trace summaries, so a rerun with
        // the same seed reproduces it bit-for-bit.
        let again = measure_runtime_scaling(100, 42);
        assert_eq!(report.checksum, again.checksum);
        assert!(report.checksum.starts_with("0x"));
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_5\""));
        assert!(json.contains("messages_per_sec"));
    }
}
