//! Shared helpers for the criterion benches and the `repro` binary.

use std::time::Instant;

use serde::Serialize;
use wfspeak_core::{Benchmark, BenchmarkConfig, ExperimentKind, PromptVariant};

/// The paper's full benchmark configuration (5 trials).
pub fn paper_benchmark() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig::default())
}

/// A reduced configuration for criterion iterations (1 trial) so a bench
/// sample stays fast while still exercising the full pipeline.
pub fn bench_benchmark() -> Benchmark {
    Benchmark::with_simulated_models(BenchmarkConfig {
        trials: 1,
        ..BenchmarkConfig::default()
    })
}

/// Machine-readable grid-throughput report emitted as `BENCH_<n>.json` so
/// future changes have a performance trajectory to compare against.
#[derive(Debug, Clone, Serialize)]
pub struct GridBenchReport {
    /// Report schema / sequence tag (`BENCH_1` for this PR).
    pub bench_id: String,
    /// Trials per cell used for the measurement.
    pub trials: usize,
    /// Scored `(row × model)` cells across the three table experiments.
    pub grid_cells: usize,
    /// Scored hypotheses (`grid_cells × trials`).
    pub scored_hypotheses: usize,
    /// Metric evaluations (`scored_hypotheses × 2`: BLEU and ChrF).
    pub metric_evaluations: usize,
    /// Distinct references prepared once and shared across the grid.
    pub prepared_references: usize,
    /// Wall-clock seconds for the full three-experiment grid.
    pub wall_time_secs: f64,
    /// Grid cells scored per second.
    pub cells_per_sec: f64,
    /// Metric evaluations per second.
    pub metric_evals_per_sec: f64,
}

/// Run the three table experiments end-to-end (prompt assembly → simulated
/// models → extraction → scoring → aggregation) on a fresh benchmark and
/// measure grid throughput.
pub fn measure_grid_throughput() -> GridBenchReport {
    let benchmark = paper_benchmark();
    let trials = benchmark.config().trials;
    let grid_cells: usize = ExperimentKind::ALL
        .iter()
        .map(|&kind| benchmark.grid_cells(kind))
        .sum();

    let start = Instant::now();
    for kind in ExperimentKind::ALL {
        let result = benchmark.run_experiment(kind, PromptVariant::Original);
        std::hint::black_box(&result);
    }
    let wall = start.elapsed().as_secs_f64();

    let scored_hypotheses = grid_cells * trials;
    let metric_evaluations = scored_hypotheses * 2;
    GridBenchReport {
        bench_id: "BENCH_1".to_owned(),
        trials,
        grid_cells,
        scored_hypotheses,
        metric_evaluations,
        prepared_references: benchmark.reference_cache().len(),
        wall_time_secs: wall,
        cells_per_sec: grid_cells as f64 / wall,
        metric_evals_per_sec: metric_evaluations as f64 / wall,
    }
}

impl GridBenchReport {
    /// Pretty JSON for the `BENCH_1.json` artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_benchmarks_with_expected_trial_counts() {
        assert_eq!(paper_benchmark().config().trials, 5);
        assert_eq!(bench_benchmark().config().trials, 1);
    }

    #[test]
    fn grid_throughput_report_is_consistent() {
        let report = measure_grid_throughput();
        // 3 config systems + 4 annotation systems + 4 translation pairs,
        // each × 4 models.
        assert_eq!(report.grid_cells, (3 + 4 + 4) * 4);
        assert_eq!(report.scored_hypotheses, report.grid_cells * report.trials);
        assert_eq!(report.metric_evaluations, report.scored_hypotheses * 2);
        assert!(report.prepared_references >= 3);
        assert!(report.wall_time_secs > 0.0);
        assert!(report.cells_per_sec > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"bench_id\": \"BENCH_1\""));
        assert!(json.contains("cells_per_sec"));
    }
}
